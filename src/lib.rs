pub fn placeholder() {}
