//! # mpl-fail — deterministic failpoints
//!
//! The paper's safety claims are about *adversarial interleavings* — yet a
//! runtime with no way to provoke them on demand can only test the schedules
//! the OS happens to produce. This crate gives every hot seam of the runtime
//! a **named failpoint**: a site that, when armed, deterministically injects
//! a fault — a panic, a recoverable error, a delay, or a scheduler yield —
//! on a schedule derived from a seed.
//!
//! ## Overhead discipline
//!
//! Same rule as `mpl-obs`: a disarmed site costs **one relaxed atomic load
//! and a predicted-not-taken branch**. No string hashing, no registry
//! lookup, no clock. Sites are always compiled in; arming is a runtime
//! decision ([`install`], [`RuntimeConfig::with_failpoints`] upstream, or
//! the `MPL_FAILPOINTS` environment variable).
//!
//! ## Determinism
//!
//! Whether hit number *h* at a site fires is a **pure function** of
//! `(seed, site name, h)` — per-site hit counters are atomic, so the
//! decision does not depend on thread count or interleaving, only on how
//! many times the site has been reached. `"fire on the Nth hit"`
//! ([`FailWhen::Nth`]) and `"1-in-k with a seeded RNG"`
//! ([`FailWhen::OneIn`], SplitMix64 over `seed ^ site ^ h`) are both stable
//! across runs with the same hit sequence; a property test upstream pins
//! this down.
//!
//! `mpl-fail` is a leaf crate — it depends on no other workspace crate, so
//! heap, gc, sched and core can all host sites.
//!
//! ## Site naming
//!
//! Sites are named `subsystem/seam` after the phase boundary they sit on:
//! `lgc/shield`, `cgc/mark`, `cgc/sweep`, `alloc/words`,
//! `barrier/read_slow`, `sched/steal`, … Concurrency-bearing seams get
//! their own sites so chaos schedules can target exactly one unit of
//! parallel work: `cgc/packet` fires inside a single trace/sweep work
//! packet on whichever scheduler worker picked it up (exercising packet
//! crash-isolation and retry), and `cgc/modbuf-flush` fires where a
//! mutator's SATB shard buffer drains into the collector (exercising the
//! snapshot handshake's flush ordering). Grep for `hit_hard(` / `hit(`
//! for the authoritative list.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Maximum number of failpoints one [`FailPlan`] can carry. The runtime has
/// a dozen sites; 16 leaves headroom while keeping the plan `Copy`.
pub const MAX_FAILPOINTS: usize = 16;

/// Cap on the recorded fire log (oldest-first; fires beyond the cap are
/// counted but not recorded).
const FIRE_LOG_CAP: usize = 1 << 16;

/// What an armed site does when its schedule says "fire".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site. Unwinds through the normal
    /// fork/join panic-propagation path.
    Panic,
    /// Return an [`Injected`] error to the call site. Only meaningful at
    /// sites with a recoverable error path (e.g. allocation); sites without
    /// one escalate it to a panic via [`hit_hard`].
    Error,
    /// Sleep for the given number of nanoseconds — stretches the window of
    /// whatever race the site sits in.
    Delay(u64),
    /// `std::thread::yield_now()` — perturbs the schedule without cost.
    Yield,
}

/// When an armed site fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailWhen {
    /// Fire on every hit.
    Always,
    /// Fire exactly once, on the Nth hit (1-based).
    Nth(u64),
    /// Fire on roughly one in `k` hits, decided by SplitMix64 over
    /// `(plan seed, site name, hit number)` — deterministic for a given
    /// hit sequence.
    OneIn(u64),
}

/// One armed site: name, action, schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Failpoint {
    /// Site name as written at the call site (e.g. `"lgc/shield"`).
    pub site: &'static str,
    /// Injected fault.
    pub action: FailAction,
    /// Schedule.
    pub when: FailWhen,
}

/// A `Copy` bundle of failpoints plus the seed their schedules derive from.
/// Carried by value inside `RuntimeConfig`; installed process-globally by
/// [`install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPlan {
    /// Seed feeding every [`FailWhen::OneIn`] decision in this plan.
    pub seed: u64,
    points: [Option<Failpoint>; MAX_FAILPOINTS],
    len: usize,
}

impl Default for FailPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

impl FailPlan {
    /// An empty plan with the given seed.
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            points: [None; MAX_FAILPOINTS],
            len: 0,
        }
    }

    /// Add a failpoint (builder-style). Panics if the plan is full.
    #[must_use]
    pub fn with(mut self, site: &'static str, action: FailAction, when: FailWhen) -> Self {
        assert!(
            self.len < MAX_FAILPOINTS,
            "FailPlan holds at most {MAX_FAILPOINTS} points"
        );
        self.points[self.len] = Some(Failpoint { site, action, when });
        self.len += 1;
        self
    }

    /// Number of failpoints in the plan.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan arms no sites.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The armed failpoints, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Failpoint> {
        self.points[..self.len].iter().flatten()
    }
}

/// The error payload an [`FailAction::Error`] fire hands to the call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injected {
    /// The site that fired.
    pub site: &'static str,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failpoint '{}' fired (injected error)", self.site)
    }
}

impl std::error::Error for Injected {}

/// One recorded fire, for the deterministic-schedule property tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FireRecord {
    /// Site name.
    pub site: String,
    /// 1-based hit number at that site when it fired.
    pub hit: u64,
    /// Action taken.
    pub action: FailAction,
}

// ---------------------------------------------------------------------------
// Process-global registry.
// ---------------------------------------------------------------------------

struct Slot {
    owner: u64,
    site: String,
    action: FailAction,
    when: FailWhen,
    seed: u64,
    hits: AtomicU64,
    fires: AtomicU64,
}

/// Fast-path flag: `true` while at least one site is armed. Disarmed sites
/// check only this (one relaxed load).
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_OWNER: AtomicU64 = AtomicU64::new(1);
static FIRES: AtomicU64 = AtomicU64::new(0);
static REGISTRY: RwLock<Vec<Slot>> = RwLock::new(Vec::new());
static FIRE_LOG: Mutex<Vec<FireRecord>> = Mutex::new(Vec::new());

/// Whether any failpoint is currently armed. This is the only check on the
/// disarmed path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total fires since process start (all sites, all plans). Monotonic;
/// surfaced as `failpoint_fires` in `StatsSnapshot` upstream.
pub fn fires() -> u64 {
    FIRES.load(Ordering::Relaxed)
}

/// Arm a plan's failpoints. Returns an owner token for [`uninstall`].
/// Multiple plans can be armed at once (sites are matched by name against
/// every armed slot, in installation order).
pub fn install(plan: &FailPlan) -> u64 {
    let owner = NEXT_OWNER.fetch_add(1, Ordering::Relaxed);
    let mut reg = REGISTRY.write().unwrap();
    for fp in plan.iter() {
        reg.push(Slot {
            owner,
            site: fp.site.to_string(),
            action: fp.action,
            when: fp.when,
            seed: plan.seed,
            hits: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        });
    }
    ENABLED.store(!reg.is_empty(), Ordering::Relaxed);
    owner
}

/// Disarm every failpoint installed under `owner`.
pub fn uninstall(owner: u64) {
    let mut reg = REGISTRY.write().unwrap();
    reg.retain(|s| s.owner != owner);
    ENABLED.store(!reg.is_empty(), Ordering::Relaxed);
}

/// Drain the recorded fire log (site, hit number, action — in fire order;
/// capped at [`FIRE_LOG_CAP`] records between drains).
pub fn take_fire_log() -> Vec<FireRecord> {
    std::mem::take(&mut *FIRE_LOG.lock().unwrap())
}

/// Per-site fire counts for every armed slot, in installation order.
pub fn site_fires() -> Vec<(String, u64)> {
    REGISTRY
        .read()
        .unwrap()
        .iter()
        .map(|s| (s.site.clone(), s.fires.load(Ordering::Relaxed)))
        .collect()
}

/// Apply the `MPL_FAILPOINTS` environment opt-in once per process. The spec
/// grammar is `site=action[:when]` entries separated by `;`, with
/// `action ∈ panic | error | yield | delay(NS)` and
/// `when ∈ always | nth(N) | 1in(K)` (default `always`). The schedule seed
/// comes from `MPL_FAILPOINT_SEED` (default 0). Malformed specs are
/// reported on stderr and skipped — fault injection must never take down a
/// process that didn't ask for it.
pub fn init_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let Ok(spec) = std::env::var("MPL_FAILPOINTS") else {
            return;
        };
        if spec.is_empty() {
            return;
        }
        let seed = std::env::var("MPL_FAILPOINT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        match parse_spec(&spec) {
            Ok(points) => {
                let owner = NEXT_OWNER.fetch_add(1, Ordering::Relaxed);
                let mut reg = REGISTRY.write().unwrap();
                for (site, action, when) in points {
                    reg.push(Slot {
                        owner,
                        site,
                        action,
                        when,
                        seed,
                        hits: AtomicU64::new(0),
                        fires: AtomicU64::new(0),
                    });
                }
                ENABLED.store(!reg.is_empty(), Ordering::Relaxed);
            }
            Err(e) => eprintln!("mpl-fail: ignoring MPL_FAILPOINTS: {e}"),
        }
    });
}

/// Parse an `MPL_FAILPOINTS`-grammar spec into (site, action, schedule)
/// triples. Public so harnesses can validate specs they are about to export.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, FailAction, FailWhen)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("'{entry}': expected site=action"))?;
        let (action_s, when_s) = match rest.split_once(':') {
            Some((a, w)) => (a, Some(w)),
            None => (rest, None),
        };
        let action = parse_action(action_s.trim())?;
        let when = match when_s {
            None => FailWhen::Always,
            Some(w) => parse_when(w.trim())?,
        };
        out.push((site.trim().to_string(), action, when));
    }
    Ok(out)
}

fn parse_paren(s: &str, prefix: &str) -> Option<u64> {
    s.strip_prefix(prefix)?
        .strip_prefix('(')?
        .strip_suffix(')')?
        .parse()
        .ok()
}

fn parse_action(s: &str) -> Result<FailAction, String> {
    match s {
        "panic" => Ok(FailAction::Panic),
        "error" => Ok(FailAction::Error),
        "yield" => Ok(FailAction::Yield),
        _ => parse_paren(s, "delay")
            .map(FailAction::Delay)
            .ok_or_else(|| format!("'{s}': expected panic|error|yield|delay(NS)")),
    }
}

fn parse_when(s: &str) -> Result<FailWhen, String> {
    match s {
        "always" => Ok(FailWhen::Always),
        _ => parse_paren(s, "nth")
            .map(FailWhen::Nth)
            .or_else(|| parse_paren(s, "1in").map(FailWhen::OneIn))
            .ok_or_else(|| format!("'{s}': expected always|nth(N)|1in(K)")),
    }
}

// ---------------------------------------------------------------------------
// The decision function.
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Pure fire decision: does hit `h` (1-based) at `site` fire under
/// (`seed`, `when`)? Exposed for the determinism property tests.
pub fn decides(seed: u64, site: &str, when: FailWhen, h: u64) -> bool {
    match when {
        FailWhen::Always => true,
        FailWhen::Nth(n) => h == n,
        FailWhen::OneIn(k) => k != 0 && splitmix64(seed ^ fnv1a(site) ^ h).is_multiple_of(k),
    }
}

#[cold]
fn hit_slow(site: &'static str) -> Result<(), Injected> {
    let mut fired = None;
    {
        let reg = REGISTRY.read().unwrap();
        for slot in reg.iter().filter(|s| s.site == site) {
            let h = slot.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if decides(slot.seed, site, slot.when, h) {
                slot.fires.fetch_add(1, Ordering::Relaxed);
                FIRES.fetch_add(1, Ordering::Relaxed);
                fired = Some((h, slot.action));
                break;
            }
        }
    }
    let Some((h, action)) = fired else {
        return Ok(());
    };
    {
        let mut log = FIRE_LOG.lock().unwrap();
        if log.len() < FIRE_LOG_CAP {
            log.push(FireRecord {
                site: site.to_string(),
                hit: h,
                action,
            });
        }
    }
    match action {
        FailAction::Panic => panic!("failpoint '{site}' fired (injected panic)"),
        FailAction::Error => Err(Injected { site }),
        FailAction::Delay(ns) => {
            std::thread::sleep(Duration::from_nanos(ns));
            Ok(())
        }
        FailAction::Yield => {
            std::thread::yield_now();
            Ok(())
        }
    }
}

/// A failpoint at a site with a recoverable error path. Disarmed cost: one
/// relaxed load. Armed: may panic, sleep, yield, or return [`Injected`]
/// for the caller to surface as its native error.
#[inline(always)]
pub fn hit(site: &'static str) -> Result<(), Injected> {
    if !enabled() {
        return Ok(());
    }
    hit_slow(site)
}

/// A failpoint at a site with no error path: `error` escalates to a panic
/// so a misdirected spec still produces a visible fault instead of being
/// silently swallowed.
#[inline(always)]
pub fn hit_hard(site: &'static str) {
    if !enabled() {
        return;
    }
    if let Err(e) = hit_slow(site) {
        panic!("{e} at a site with no error path");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry is process-global and tests run in parallel: serialize.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_do_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        assert!(hit("tests/nowhere").is_ok());
        hit_hard("tests/nowhere");
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = FailPlan::new(7).with("tests/nth", FailAction::Error, FailWhen::Nth(3));
        let owner = install(&plan);
        let results: Vec<bool> = (0..6).map(|_| hit("tests/nth").is_err()).collect();
        uninstall(owner);
        assert_eq!(results, [false, false, true, false, false, false]);
    }

    #[test]
    fn one_in_k_matches_the_pure_decision_function() {
        let _g = TEST_LOCK.lock().unwrap();
        let _ = take_fire_log();
        let plan = FailPlan::new(42).with("tests/onein", FailAction::Error, FailWhen::OneIn(3));
        let owner = install(&plan);
        let observed: Vec<bool> = (0..64).map(|_| hit("tests/onein").is_err()).collect();
        uninstall(owner);
        let expected: Vec<bool> = (1..=64)
            .map(|h| decides(42, "tests/onein", FailWhen::OneIn(3), h))
            .collect();
        assert_eq!(observed, expected);
        assert!(observed.iter().any(|&b| b), "1-in-3 over 64 hits must fire");
        let log = take_fire_log();
        assert_eq!(log.len(), observed.iter().filter(|&&b| b).count());
        assert!(log.iter().all(|r| r.site == "tests/onein"));
    }

    #[test]
    fn delay_and_yield_do_not_error() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = FailPlan::new(0)
            .with("tests/delay", FailAction::Delay(1), FailWhen::Always)
            .with("tests/yield", FailAction::Yield, FailWhen::Always);
        let owner = install(&plan);
        assert!(hit("tests/delay").is_ok());
        hit_hard("tests/yield");
        uninstall(owner);
        assert!(!enabled());
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = FailPlan::new(0).with("tests/panic", FailAction::Panic, FailWhen::Always);
        let owner = install(&plan);
        let out = std::panic::catch_unwind(|| hit_hard("tests/panic"));
        uninstall(owner);
        let msg = *out.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("tests/panic"), "{msg}");
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = "lgc/shield=delay(1000):1in(7); sched/steal=yield; heap/alloc=error:nth(2)";
        let parsed = parse_spec(spec).unwrap();
        assert_eq!(
            parsed,
            vec![
                (
                    "lgc/shield".to_string(),
                    FailAction::Delay(1000),
                    FailWhen::OneIn(7)
                ),
                (
                    "sched/steal".to_string(),
                    FailAction::Yield,
                    FailWhen::Always
                ),
                (
                    "heap/alloc".to_string(),
                    FailAction::Error,
                    FailWhen::Nth(2)
                ),
            ]
        );
        assert!(parse_spec("oops").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=panic:sometimes").is_err());
    }

    #[test]
    fn plan_is_copy_and_bounded() {
        let plan = FailPlan::new(1).with("a", FailAction::Yield, FailWhen::Always);
        let copy = plan; // Copy, not move
        assert_eq!(plan, copy);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }
}
