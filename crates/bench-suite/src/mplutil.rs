//! Shared helpers for writing benchmarks against the managed runtime:
//! parallel bulk loads and reductions. Writes go into ancestor-allocated
//! raw arrays — down-path effects, which the hierarchy treats as local
//! (no barrier cost, no entanglement).

use mpl_runtime::{Handle, Mutator, Value};

const FILL_GRAIN: usize = 8192;

/// Fills `arr[lo..hi)` from `data` in parallel.
pub fn fill_raw_par(m: &mut Mutator<'_>, arr: &Handle, data: &[u64], lo: usize, hi: usize) {
    if hi - lo <= FILL_GRAIN {
        m.work((hi - lo) as u64);
        let a = m.get(arr);
        for (k, &d) in data[lo..hi].iter().enumerate() {
            m.raw_set(a, lo + k, d);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    m.fork(
        |m| {
            fill_raw_par(m, arr, data, lo, mid);
            Value::Unit
        },
        |m| {
            fill_raw_par(m, arr, data, mid, hi);
            Value::Unit
        },
    );
}

/// Allocates a raw array and fills it from `data` in parallel; returns a
/// rooted handle.
pub fn alloc_filled_raw(m: &mut Mutator<'_>, data: &[u64]) -> Handle {
    let arr = m.alloc_raw(data.len());
    let h = m.root(arr);
    fill_raw_par(m, &h, data, 0, data.len());
    h
}

/// Parallel sum of `f(i)` over `lo..hi` with the given grain.
pub fn sum_par(
    m: &mut Mutator<'_>,
    lo: usize,
    hi: usize,
    grain: usize,
    f: &(dyn Fn(&mut Mutator<'_>, usize) -> i64 + Sync),
) -> i64 {
    if hi - lo <= grain {
        m.work((hi - lo) as u64);
        let mut acc = 0;
        for i in lo..hi {
            acc += f(m, i);
        }
        return acc;
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = m.fork(
        |m| Value::Int(sum_par(m, lo, mid, grain, f)),
        |m| Value::Int(sum_par(m, mid, hi, grain, f)),
    );
    a.expect_int() + b.expect_int()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn fill_and_sum_roundtrip() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let v = rt.run(|m| {
            let data: Vec<u64> = (0..50_000).collect();
            let h = alloc_filled_raw(m, &data);
            let total = sum_par(m, 0, data.len(), 4096, &|m, i| {
                let a = m.get(&h);
                m.raw_get(a, i) as i64
            });
            Value::Int(total)
        });
        assert_eq!(v.expect_int(), (0..50_000i64).sum::<i64>());
        assert_eq!(rt.stats().pins, 0, "ancestor writes are not entanglement");
    }
}
