//! `conc_stack` — a Treiber stack shared by concurrent producer tasks.
//! Every push reads the current head (usually a sibling's node: an
//! entangled read) and CASes a fresh cell on top.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const GRAIN: usize = 2048;

/// The benchmark.
pub struct Stack;

/// Public name used in the registry.
pub use Stack as ConcStack;

fn push_mpl(m: &mut Mutator<'_>, head: Value, v: i64) {
    loop {
        let cur = m.read_ref(head); // entangled when a sibling pushed last
        let mark = m.mark();
        let hh = m.root(head);
        let hc = m.root(cur);
        let node = m.alloc_tuple(&[Value::Int(v), m.get(&hc)]);
        let (head2, cur2) = (m.get(&hh), m.get(&hc));
        let won = m.ref_cas(head2, cur2, node).is_ok();
        m.release(mark);
        if won {
            return;
        }
    }
}

fn produce_mpl(m: &mut Mutator<'_>, head: Value, lo: i64, hi: i64) {
    if (hi - lo) as usize <= GRAIN {
        m.work((hi - lo) as u64 * 2);
        let mark = m.mark();
        let hh = m.root(head);
        for v in lo..hi {
            let head = m.get(&hh);
            push_mpl(m, head, v);
        }
        m.release(mark);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let hh = m.root(head);
    m.fork(
        |m| {
            let head = m.get(&hh);
            produce_mpl(m, head, lo, mid);
            Value::Unit
        },
        |m| {
            let head = m.get(&hh);
            produce_mpl(m, head, mid, hi);
            Value::Unit
        },
    );
    m.release(mark);
}

impl Benchmark for Stack {
    fn name(&self) -> &'static str {
        "conc_stack"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        50_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let head = m.alloc_ref(Value::Unit);
        let hh = m.root(head);
        let head = m.get(&hh);
        produce_mpl(m, head, 0, n as i64);
        // Drain at the root and sum.
        let mut sum = 0i64;
        let mut count = 0usize;
        let mut cur = m.read_ref(m.get(&hh));
        while let Value::Obj(_) = cur {
            sum += m.tuple_get(cur, 0).expect_int();
            count += 1;
            cur = m.tuple_get(cur, 1);
        }
        assert_eq!(count, n, "every push must be observed");
        sum
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let head = rt.alloc(&[SeqValue::Unit]);
        let hh = rt.root(head);
        for v in 0..n as i64 {
            let head = rt.get(hh);
            let cur = rt.get_field(head, 0);
            let node = rt.alloc(&[SeqValue::Int(v), cur]);
            let head = rt.get(hh);
            rt.set_field(head, 0, node);
            rt.work(2);
        }
        let mut sum = 0i64;
        let head = rt.get(hh);
        let mut cur = rt.get_field(head, 0);
        while let SeqValue::Obj(_) = cur {
            sum += rt.get_field(cur, 0).expect_int();
            cur = rt.get_field(cur, 1);
        }
        sum
    }

    fn run_native(&self, n: usize) -> i64 {
        (0..n as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree_and_entangle() {
        let b = Stack;
        let n = 6000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        let s = rt.stats();
        assert!(s.entangled_reads > 0, "stack pushes entangle: {s:?}");
        assert_eq!(s.pinned_bytes, 0);
    }

    #[test]
    fn threaded_run_is_correct() {
        let b = Stack;
        let n = 3000;
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(3));
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        assert_eq!(mpl, b.run_native(n));
    }
}
