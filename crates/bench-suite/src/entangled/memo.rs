//! `memo` — parallel Fibonacci with a *shared concurrent memo table*
//! (the MemoDyn pattern the paper cites): tasks race to publish boxed
//! results, and readers consume results computed by concurrent siblings —
//! entanglement that prior MPL would reject outright.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const CUTOFF: usize = 6;

/// The benchmark.
pub struct Memo;

fn fib_plain(n: usize) -> i64 {
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

fn memo_fib_mpl(m: &mut Mutator<'_>, table: Value, n: usize) -> i64 {
    if n < 2 {
        return n as i64;
    }
    // Check the shared table (entangled read when a concurrent sibling
    // published the entry).
    let hit = m.arr_get(table, n);
    if let Value::Obj(_) = hit {
        return m.tuple_get(hit, 0).expect_int();
    }
    let v = if n < CUTOFF {
        m.work(fib_plain(n) as u64 + 1);
        fib_plain(n)
    } else {
        let mark = m.mark();
        let ht = m.root(table);
        let (a, b) = m.fork(
            |m| {
                let table = m.get(&ht);
                Value::Int(memo_fib_mpl(m, table, n - 1))
            },
            |m| {
                let table = m.get(&ht);
                Value::Int(memo_fib_mpl(m, table, n - 2))
            },
        );
        m.release(mark);
        a.expect_int() + b.expect_int()
    };
    // Publish (first writer wins; the value is unique anyway).
    let mark = m.mark();
    let ht = m.root(table);
    let boxed = m.alloc_tuple(&[Value::Int(v)]);
    let table2 = m.get(&ht);
    let _ = m.arr_cas(table2, n, Value::Unit, boxed);
    m.release(mark);
    v
}

impl Benchmark for Memo {
    fn name(&self) -> &'static str {
        "memo"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        30
    }

    fn small_n(&self) -> usize {
        14
    }

    fn scaled_n(&self, pct: usize) -> usize {
        let shave = (100usize.saturating_sub(pct)) / 20 + usize::from(pct < 100);
        self.default_n().saturating_sub(shave).max(self.small_n())
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let table = m.alloc_array(n + 1, Value::Unit);
        memo_fib_mpl(m, table, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        // Same memoized recursion, sequential.
        fn go(rt: &mut SeqRuntime, table: SeqValue, n: usize) -> i64 {
            if n < 2 {
                return n as i64;
            }
            let hit = rt.get_field(table, n);
            if let SeqValue::Obj(_) = hit {
                return rt.get_field(hit, 0).expect_int();
            }
            let v = if n < CUTOFF {
                rt.work(fib_plain(n) as u64 + 1);
                fib_plain(n)
            } else {
                let mark = rt.mark();
                let ht = rt.root(table);
                let a = go(rt, table, n - 1);
                let t2 = rt.get(ht);
                let b = go(rt, t2, n - 2);
                rt.release(mark);
                a + b
            };
            let mark = rt.mark();
            let ht = rt.root(table);
            let boxed = rt.alloc(&[SeqValue::Int(v)]);
            let t2 = rt.get(ht);
            rt.set_field(t2, n, boxed);
            rt.release(mark);
            v
        }
        let table = rt.alloc_n(n + 1, SeqValue::Unit);
        go(rt, table, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        fib_plain(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree_and_entangle() {
        let b = Memo;
        let n = 20;
        let native = b.run_native(n);
        assert_eq!(native, 6765);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        let s = rt.stats();
        assert!(
            s.entangled_reads > 0,
            "memo hits from siblings entangle: {s:?}"
        );
    }

    #[test]
    fn memoization_actually_prunes() {
        // With a shared table the number of forks is linear in n, not
        // exponential: depth-first execution memoizes the left spine.
        let b = Memo;
        let rt = Runtime::new(RuntimeConfig::managed().with_dag());
        rt.run(|m| Value::Int(b.run_mpl(m, 30)));
        let dag = rt.take_dag().unwrap();
        assert!(
            dag.len() < 1000,
            "sharing must prune the tree: {} strands",
            dag.len()
        );
    }
}
