//! `bfs` — level-synchronous parallel breadth-first search. Tasks claim
//! vertices by CAS-publishing freshly allocated distance records into a
//! shared array; losers read the winner's record — entanglement on every
//! contended vertex (the paper's motivating graph-algorithm pattern).
//! Part of the comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Handle, Mutator, Value};

use crate::util::{self, CsrGraph};
use crate::Benchmark;

const GRAIN: usize = 512;
const DEGREE: usize = 4;

/// The benchmark.
pub struct Bfs;

fn graph(n: usize) -> CsrGraph {
    util::random_graph(n, DEGREE, 81)
}

// ---- mpl -----------------------------------------------------------------

struct MplCtx {
    offsets: Handle,
    targets: Handle,
    claims: Handle,
}

/// Parallel bulk load of a raw array from a slice (writes into an
/// ancestor-allocated array are down-path effects: local, no barrier).
fn fill_raw_par(m: &mut Mutator<'_>, arr: &Handle, data: &[u32], lo: usize, hi: usize) {
    if hi - lo <= 4 * GRAIN {
        m.work((hi - lo) as u64);
        let a = m.get(arr);
        for (k, &d) in data[lo..hi].iter().enumerate() {
            m.raw_set(a, lo + k, d as u64);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    m.fork(
        |m| {
            fill_raw_par(m, arr, data, lo, mid);
            Value::Unit
        },
        |m| {
            fill_raw_par(m, arr, data, mid, hi);
            Value::Unit
        },
    );
}

/// Parallel sum of claimed distances (runs after all claims joined, so
/// every record is local).
fn sum_dists_par(m: &mut Mutator<'_>, claims: &Handle, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        let mut total = 0i64;
        for v in lo..hi {
            let c = m.get(claims);
            if let Value::Obj(_) = m.arr_get(c, v) {
                let c = m.get(claims);
                let rec = m.arr_get(c, v);
                total += m.tuple_get(rec, 0).expect_int();
            }
        }
        return total;
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = m.fork(
        |m| Value::Int(sum_dists_par(m, claims, lo, mid)),
        |m| Value::Int(sum_dists_par(m, claims, mid, hi)),
    );
    a.expect_int() + b.expect_int()
}

/// Processes frontier vertices `slice`; returns `(next-frontier ids, collision sum)`.
fn level_mpl(m: &mut Mutator<'_>, cx: &MplCtx, slice: &[u32], dist: i64) -> (Vec<u32>, i64) {
    if slice.len() <= GRAIN {
        let mut next = Vec::new();
        let mut csum = 0i64;
        for &u in slice {
            let offsets = m.get(&cx.offsets);
            let lo = m.raw_get(offsets, u as usize) as usize;
            let hi = m.raw_get(offsets, u as usize + 1) as usize;
            for e in lo..hi {
                let targets = m.get(&cx.targets);
                let v = m.raw_get(targets, e) as usize;
                // Check-then-claim: only allocate a record when the slot
                // looks empty (the sequential algorithm allocates per
                // claim, not per edge; the CAS still arbitrates races).
                let claims = m.get(&cx.claims);
                match m.arr_get(claims, v) {
                    Value::Unit => {
                        let rec = m.alloc_tuple(&[Value::Int(dist + 1)]);
                        let claims = m.get(&cx.claims);
                        match m.arr_cas(claims, v, Value::Unit, rec) {
                            Ok(()) => next.push(v as u32),
                            Err(actual) => {
                                csum += m.tuple_get(actual, 0).expect_int();
                            }
                        }
                    }
                    taken => {
                        // The loser reads the (possibly concurrent)
                        // winner's record: the entangled read.
                        csum += m.tuple_get(taken, 0).expect_int();
                    }
                }
            }
            m.work((hi - lo) as u64 + 1);
        }
        return (next, csum);
    }
    let (lo, hi) = slice.split_at(slice.len() / 2);
    // The frontier vectors travel through Rust (task-local state); the
    // shared heap state travels through the rooted handles in `cx`.
    let out = std::sync::Mutex::new((Vec::new(), Vec::new(), 0i64, 0i64));
    m.fork(
        |m| {
            let (next, csum) = level_mpl(m, cx, lo, dist);
            let mut o = out.lock().unwrap();
            o.0 = next;
            o.2 = csum;
            Value::Unit
        },
        |m| {
            let (next, csum) = level_mpl(m, cx, hi, dist);
            let mut o = out.lock().unwrap();
            o.1 = next;
            o.3 = csum;
            Value::Unit
        },
    );
    let (mut a, b, ca, cb) = out.into_inner().unwrap();
    a.extend(b);
    (a, ca + cb)
}

// ---- seq / native ------------------------------------------------------------

fn bfs_native(n: usize) -> i64 {
    let g = graph(n);
    let mut dist = vec![-1i64; n];
    dist[0] = 0;
    let mut frontier = vec![0u32];
    let mut level = 0i64;
    let mut csum = 0i64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for e in g.offsets[u as usize] as usize..g.offsets[u as usize + 1] as usize {
                let v = g.targets[e] as usize;
                if dist[v] < 0 {
                    dist[v] = level + 1;
                    next.push(v as u32);
                } else {
                    csum += dist[v];
                }
            }
        }
        frontier = next;
        level += 1;
    }
    dist.iter().filter(|&&d| d >= 0).sum::<i64>() + csum
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        30_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let g = graph(n);
        let offsets = m.alloc_raw(n + 1);
        let h_off = m.root(offsets);
        fill_raw_par(m, &h_off, &g.offsets, 0, g.offsets.len());
        let targets = m.alloc_raw(g.targets.len());
        let h_tgt = m.root(targets);
        fill_raw_par(m, &h_tgt, &g.targets, 0, g.targets.len());
        let claims = m.alloc_array(n, Value::Unit);
        let h_clm = m.root(claims);
        // Claim the source.
        let rec0 = m.alloc_tuple(&[Value::Int(0)]);
        let claims_now = m.get(&h_clm);
        m.arr_set(claims_now, 0, rec0);

        let cx = MplCtx {
            offsets: h_off,
            targets: h_tgt,
            claims: h_clm,
        };
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        let mut csum = 0i64;
        while !frontier.is_empty() {
            let (next, c) = level_mpl(m, &cx, &frontier, level);
            csum += c;
            frontier = next;
            level += 1;
        }
        // Sum distances in parallel (all claims are local after joins).
        let total = sum_dists_par(m, &cx.claims, 0, n);
        total + csum
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let g = graph(n);
        let claims = rt.alloc_n(n, SeqValue::Unit);
        let hc = rt.root(claims);
        let rec0 = rt.alloc(&[SeqValue::Int(0)]);
        let c = rt.get(hc);
        rt.set_field(c, 0, rec0);
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        let mut csum = 0i64;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                let lo = g.offsets[u as usize] as usize;
                let hi = g.offsets[u as usize + 1] as usize;
                for e in lo..hi {
                    let v = g.targets[e] as usize;
                    let claims = rt.get(hc);
                    match rt.get_field(claims, v) {
                        SeqValue::Unit => {
                            let rec = rt.alloc(&[SeqValue::Int(level + 1)]);
                            let claims = rt.get(hc);
                            rt.set_field(claims, v, rec);
                            next.push(v as u32);
                        }
                        rec => csum += rt.get_field(rec, 0).expect_int(),
                    }
                }
                rt.work((hi - lo) as u64 + 1);
            }
            frontier = next;
            level += 1;
        }
        let mut total = 0i64;
        for v in 0..n {
            let claims = rt.get(hc);
            if let SeqValue::Obj(_) = rt.get_field(claims, v) {
                let claims = rt.get(hc);
                let rec = rt.get_field(claims, v);
                total += rt.get_field(rec, 0).expect_int();
            }
        }
        total + csum
    }

    fn run_native(&self, n: usize) -> i64 {
        bfs_native(n)
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let g = graph(n);
        let claims = m.alloc_n(n, GValue::Unit);
        let _hold = m.root(claims); // survives the stop-the-world collections
        let rec0 = m.alloc(&[GValue::Int(0)]);
        m.set_field(claims, 0, rec0);
        let mut frontier = vec![0u32];
        let mut level = 0i64;
        let mut csum = 0i64;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                let lo = g.offsets[u as usize] as usize;
                let hi = g.offsets[u as usize + 1] as usize;
                for e in lo..hi {
                    let v = g.targets[e] as usize;
                    match m.get_field(claims, v) {
                        GValue::Unit => {
                            let rec = m.alloc(&[GValue::Int(level + 1)]);
                            if m.cas_field(claims, v, GValue::Unit, rec) {
                                next.push(v as u32);
                            } else {
                                let r = m.get_field(claims, v);
                                csum += m.get_field(r, 0).expect_int();
                            }
                        }
                        taken => csum += m.get_field(taken, 0).expect_int(),
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        let mut total = 0i64;
        for v in 0..n {
            if let GValue::Obj(_) = m.get_field(claims, v) {
                let rec = m.get_field(claims, v);
                total += m.get_field(rec, 0).expect_int();
            }
        }
        Some(total + csum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree_and_entangle() {
        let b = Bfs;
        let n = 3000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let grt = GlobalRuntime::new(1 << 22, 2);
        let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(glob.expect_int(), native);
        let s = rt.stats();
        assert!(s.entangled_reads > 0, "contended claims entangle: {s:?}");
        assert_eq!(s.pinned_bytes, 0);
    }

    #[test]
    fn all_nodes_reachable() {
        // The generator includes the chain i -> i+1, so everything is
        // reachable and distances are positive beyond the source.
        let n = 500;
        let total = bfs_native(n);
        assert!(total > n as i64 / 2);
    }
}
