//! `accounts` — concurrent account updates: balances are immutable boxed
//! records functionally replaced with CAS, so concurrent tasks constantly
//! read each other's freshly allocated records. The total is conserved,
//! making the checksum deterministic despite racing updates.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const GRAIN: usize = 2048;
const ACCOUNTS: usize = 64;

/// The benchmark.
pub struct Accounts;

fn amount(i: usize) -> i64 {
    ((i * 37) % 100) as i64 + 1
}

fn account(i: usize) -> usize {
    (i * 0x9E37) % ACCOUNTS
}

// ---- mpl -----------------------------------------------------------------

fn deposit_mpl(m: &mut Mutator<'_>, table: Value, acct: usize, amt: i64) {
    loop {
        let cur = m.arr_get(table, acct); // sibling's record: entangled
        let bal = m.tuple_get(cur, 0).expect_int();
        let mark = m.mark();
        let ht = m.root(table);
        let hc = m.root(cur);
        let fresh = m.alloc_tuple(&[Value::Int(bal + amt)]);
        let (table2, cur2) = (m.get(&ht), m.get(&hc));
        let won = m.arr_cas(table2, acct, cur2, fresh).is_ok();
        m.release(mark);
        if won {
            return;
        }
    }
}

fn go_mpl(m: &mut Mutator<'_>, table: Value, lo: usize, hi: usize) {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64 * 2);
        let mark = m.mark();
        let ht = m.root(table);
        for i in lo..hi {
            let table = m.get(&ht);
            deposit_mpl(m, table, account(i), amount(i));
        }
        m.release(mark);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let ht = m.root(table);
    m.fork(
        |m| {
            let table = m.get(&ht);
            go_mpl(m, table, lo, mid);
            Value::Unit
        },
        |m| {
            let table = m.get(&ht);
            go_mpl(m, table, mid, hi);
            Value::Unit
        },
    );
    m.release(mark);
}

impl Benchmark for Accounts {
    fn name(&self) -> &'static str {
        "accounts"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        50_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let table = m.alloc_array(ACCOUNTS, Value::Unit);
        let ht = m.root(table);
        for a in 0..ACCOUNTS {
            let zero = m.alloc_tuple(&[Value::Int(0)]);
            let table = m.get(&ht);
            m.arr_set(table, a, zero);
        }
        let table = m.get(&ht);
        go_mpl(m, table, 0, n);
        let mut total = 0i64;
        for a in 0..ACCOUNTS {
            let table = m.get(&ht);
            let rec = m.arr_get(table, a);
            total += m.tuple_get(rec, 0).expect_int();
        }
        total
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let table = rt.alloc_n(ACCOUNTS, SeqValue::Unit);
        let ht = rt.root(table);
        for a in 0..ACCOUNTS {
            let zero = rt.alloc(&[SeqValue::Int(0)]);
            let table = rt.get(ht);
            rt.set_field(table, a, zero);
        }
        for i in 0..n {
            let table = rt.get(ht);
            let cur = rt.get_field(table, account(i));
            let bal = rt.get_field(cur, 0).expect_int();
            let fresh = rt.alloc(&[SeqValue::Int(bal + amount(i))]);
            let table = rt.get(ht);
            rt.set_field(table, account(i), fresh);
            rt.work(2);
        }
        let mut total = 0i64;
        for a in 0..ACCOUNTS {
            let table = rt.get(ht);
            let rec = rt.get_field(table, a);
            total += rt.get_field(rec, 0).expect_int();
        }
        total
    }

    fn run_native(&self, n: usize) -> i64 {
        (0..n).map(amount).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn conservation_holds_everywhere() {
        let b = Accounts;
        let n = 6000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        let s = rt.stats();
        assert!(s.entangled_reads > 0, "deposits entangle: {s:?}");
        assert!(s.unpins >= s.pins - 64, "pins resolve by the end");
    }

    #[test]
    fn conservation_under_threads() {
        let b = Accounts;
        let n = 4000;
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(4));
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        assert_eq!(mpl, b.run_native(n), "CAS retries preserve the total");
    }
}
