//! `unionfind` — parallel graph connectivity with a concurrent union-find.
//!
//! Tasks process disjoint ranges of the edge list, performing CAS-based
//! unions on a shared parent array. A union installs a freshly allocated
//! *link cell* (a mutable ref holding the new parent index); sibling
//! tasks' finds then read through cells allocated by concurrent tasks —
//! the defining entangled access pattern. The component count is
//! schedule-independent even though the union trees are not.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Handle, Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 2048;
const DEGREE: usize = 2;

/// The benchmark.
pub struct UnionFind;

/// Edge list for `n` nodes: the random graph's arcs treated as undirected
/// edges, minus self-loops. Connectivity is over these edges only.
fn edges(n: usize) -> Vec<(u32, u32)> {
    let g = util::random_graph(n, DEGREE, 47);
    let mut out = Vec::with_capacity(g.targets.len());
    for u in 0..n {
        for k in g.offsets[u] as usize..g.offsets[u + 1] as usize {
            let v = g.targets[k];
            if v as usize != u {
                out.push((u as u32, v));
            }
        }
    }
    out
}

// ---- mpl -----------------------------------------------------------------
//
// parents[i] is either Int(i) (a root), Int(j) (an old-style direct edge,
// only used for initialization), or Obj(cell) where cell is a ref holding
// Int(parent). Unions CAS a link cell over a root entry; finds chase the
// chain, reading link cells that concurrent siblings allocated.

fn find_mpl(m: &mut Mutator<'_>, parents: Value, mut i: usize) -> usize {
    loop {
        let e = m.arr_get(parents, i);
        let next = match e {
            Value::Int(j) => j as usize,
            v @ Value::Obj(_) => m.read_ref(v).expect_int() as usize, // entangling read
            _ => unreachable!("parent entries are ints or link cells"),
        };
        if next == i {
            return i;
        }
        i = next;
    }
}

/// CAS-based union; returns true if the edge merged two components.
fn union_mpl(m: &mut Mutator<'_>, parents: Value, a: usize, b: usize) -> bool {
    loop {
        let ra = find_mpl(m, parents, a);
        let rb = find_mpl(m, parents, b);
        if ra == rb {
            return false;
        }
        // Union by index (deterministic direction): larger root points at
        // the smaller.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        let expected = m.arr_get(parents, hi);
        // Only a *root* entry may be overwritten; anything else means a
        // concurrent union got there first — retry from fresh finds.
        let is_root = match expected {
            Value::Int(j) => j as usize == hi,
            v @ Value::Obj(_) => m.read_ref(v).expect_int() as usize == hi,
            _ => unreachable!(),
        };
        if !is_root {
            continue;
        }
        let link = m.alloc_ref(Value::Int(lo as i64));
        if m.arr_cas(parents, hi, expected, link).is_ok() {
            return true;
        }
    }
}

fn go_mpl(m: &mut Mutator<'_>, parents: &Handle, es: &[(u32, u32)], lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64 * 2);
        let p = m.get(parents);
        let mut merges = 0;
        for &(a, b) in &es[lo..hi] {
            if union_mpl(m, p, a as usize, b as usize) {
                merges += 1;
            }
        }
        return merges;
    }
    let mid = lo + (hi - lo) / 2;
    let (l, r) = m.fork(
        |m| Value::Int(go_mpl(m, parents, es, lo, mid)),
        |m| Value::Int(go_mpl(m, parents, es, mid, hi)),
    );
    l.expect_int() + r.expect_int()
}

// ---- seq -----------------------------------------------------------------

fn find_seq(rt: &mut SeqRuntime, parents: SeqValue, mut i: usize) -> usize {
    loop {
        let e = rt.get_field(parents, i);
        let next = match e {
            SeqValue::Int(j) => j as usize,
            obj => rt.get_field(obj, 0).expect_int() as usize,
        };
        if next == i {
            return i;
        }
        i = next;
    }
}

fn union_seq(rt: &mut SeqRuntime, parents: SeqValue, a: usize, b: usize) -> bool {
    let ra = find_seq(rt, parents, a);
    let rb = find_seq(rt, parents, b);
    if ra == rb {
        return false;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    let link = rt.alloc(&[SeqValue::Int(lo as i64)]);
    rt.set_field(parents, hi, link);
    true
}

// ---- shared oracle ---------------------------------------------------------

fn components_native(n: usize, es: &[(u32, u32)]) -> i64 {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(p: &mut [u32], mut i: u32) -> u32 {
        while p[i as usize] != i {
            p[i as usize] = p[p[i as usize] as usize]; // path halving
            i = p[i as usize];
        }
        i
    }
    let mut components = n as i64;
    for &(a, b) in es {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb) as usize] = ra.min(rb);
            components -= 1;
        }
    }
    components
}

impl Benchmark for UnionFind {
    fn name(&self) -> &'static str {
        "unionfind"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        50_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let es = edges(n);
        let parents = m.alloc_array(n, Value::Unit);
        let hp = m.root(parents);
        {
            let p = m.get(&hp);
            for i in 0..n {
                m.arr_set(p, i, Value::Int(i as i64));
            }
        }
        let merges = go_mpl(m, &hp, &es, 0, es.len());
        // Components = n - successful merges; also recount roots directly
        // for a second, structural answer.
        let p = m.get(&hp);
        let mut roots = 0i64;
        for i in 0..n {
            if find_mpl(m, p, i) == i {
                roots += 1;
            }
        }
        assert_eq!(roots, n as i64 - merges, "merge count vs root count");
        roots
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let es = edges(n);
        let parents = rt.alloc_n(n, SeqValue::Unit);
        let hp = rt.root(parents);
        for i in 0..n {
            rt.set_field(rt.get(hp), i, SeqValue::Int(i as i64));
        }
        let mut merges = 0i64;
        for &(a, b) in &es {
            let p = rt.get(hp);
            if union_seq(rt, p, a as usize, b as usize) {
                merges += 1;
            }
        }
        n as i64 - merges
    }

    fn run_native(&self, n: usize) -> i64 {
        components_native(n, &edges(n))
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let es = edges(n);
        let parents = m.alloc_n(n, GValue::Unit);
        let _hold = m.root(parents);
        for i in 0..n {
            m.set_field(parents, i, GValue::Int(i as i64));
        }
        fn find(m: &mut GlobalMutator, parents: GValue, mut i: usize) -> usize {
            loop {
                let next = match m.get_field(parents, i) {
                    GValue::Int(j) => j as usize,
                    link => m.get_field(link, 0).expect_int() as usize,
                };
                if next == i {
                    return i;
                }
                i = next;
            }
        }
        let mut merges = 0i64;
        for &(a, b) in &es {
            loop {
                let ra = find(m, parents, a as usize);
                let rb = find(m, parents, b as usize);
                if ra == rb {
                    break;
                }
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                let expected = m.get_field(parents, hi);
                let is_root = match expected {
                    GValue::Int(j) => j as usize == hi,
                    link => m.get_field(link, 0).expect_int() as usize == hi,
                };
                if !is_root {
                    continue;
                }
                let link = m.alloc(&[GValue::Int(lo as i64)]);
                if m.cas_field(parents, hi, expected, link) {
                    merges += 1;
                    break;
                }
            }
        }
        Some(n as i64 - merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn tiny_graph_components() {
        // 6 nodes, edges {0-1, 1-2, 3-4}: components {0,1,2}, {3,4}, {5}.
        let es = [(0u32, 1u32), (1, 2), (3, 4)];
        assert_eq!(components_native(6, &es), 3);
    }

    #[test]
    fn checksums_agree_and_entangle() {
        let b = UnionFind;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        // The random graph has the chain i -> i+1, so everything merges
        // into one component — and finds must cross task boundaries.
        assert_eq!(native, 1);
        assert!(rt.stats().entangled_reads > 0, "finds read sibling links");
        assert_eq!(rt.stats().pinned_bytes, 0, "pins resolve at joins");
        rt.assert_heap_sound();
    }

    #[test]
    fn threaded_run_matches() {
        let b = UnionFind;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(3));
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        assert_eq!(mpl, native, "components are schedule-independent");
        rt.assert_heap_sound();
    }
}
