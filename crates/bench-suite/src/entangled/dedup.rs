//! `dedup` — parallel deduplication through a concurrent hash set with
//! CAS-linked bucket chains. Sibling tasks insert nodes and *read each
//! other's freshly allocated nodes* while walking chains: the archetypal
//! entangled workload. Part of the comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 2048;

fn buckets_for(n: usize) -> usize {
    (n / 4).next_power_of_two().max(64)
}

fn hash(key: u64, nbuckets: usize) -> usize {
    (key.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as usize & (nbuckets - 1)
}

/// The benchmark.
pub struct Dedup;

// ---- mpl -----------------------------------------------------------------

/// Inserts `key`; returns 1 if newly inserted.
fn insert_mpl(m: &mut Mutator<'_>, table: Value, nbuckets: usize, key: u64) -> i64 {
    let b = hash(key, nbuckets);
    loop {
        let head = m.arr_get(table, b);
        // Walk the chain; nodes may belong to concurrent siblings
        // (entangled reads through the bucket head).
        let mut cur = head;
        while let Value::Obj(_) = cur {
            if m.tuple_get(cur, 0).expect_int() as u64 == key {
                return 0;
            }
            cur = m.tuple_get(cur, 1);
        }
        let mark = m.mark();
        let ht = m.root(table);
        let hh = m.root(head);
        let head_now = m_get(m, &hh);
        let node = m.alloc_tuple(&[Value::Int(key as i64), head_now]);
        let (table2, head2) = (m_get(m, &ht), m_get(m, &hh));
        let won = m.arr_cas(table2, b, head2, node).is_ok();
        m.release(mark);
        if won {
            return 1;
        }
        // Lost the race: re-read and retry.
    }
}

fn m_get(m: &mut Mutator<'_>, h: &mpl_runtime::Handle) -> Value {
    m.get(h)
}

fn go_mpl(m: &mut Mutator<'_>, table: Value, nbuckets: usize, items: &[u64]) -> i64 {
    if items.len() <= GRAIN {
        m.work(items.len() as u64 * 2);
        let mut unique = 0;
        let mark = m.mark();
        let ht = m.root(table);
        for &key in items {
            let table = m_get(m, &ht);
            unique += insert_mpl(m, table, nbuckets, key);
        }
        m.release(mark);
        return unique;
    }
    let (lo, hi) = items.split_at(items.len() / 2);
    let mark = m.mark();
    let ht = m.root(table);
    let (a, b) = m.fork(
        |m| {
            let table = m_get(m, &ht);
            Value::Int(go_mpl(m, table, nbuckets, lo))
        },
        |m| {
            let table = m_get(m, &ht);
            Value::Int(go_mpl(m, table, nbuckets, hi))
        },
    );
    m.release(mark);
    a.expect_int() + b.expect_int()
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, n: usize) -> i64 {
    let items = util::dedup_stream(n, 71);
    let nbuckets = buckets_for(n);
    let table = rt.alloc_n(nbuckets, SeqValue::Unit);
    let ht = rt.root(table);
    let mut unique = 0;
    for &key in &items {
        let table = rt.get(ht);
        let b = hash(key, nbuckets);
        let head = rt.get_field(table, b);
        let mut cur = head;
        let mut found = false;
        while let SeqValue::Obj(_) = cur {
            if rt.get_field(cur, 0).expect_int() as u64 == key {
                found = true;
                break;
            }
            cur = rt.get_field(cur, 1);
        }
        if !found {
            let node = rt.alloc(&[SeqValue::Int(key as i64), head]);
            let table = rt.get(ht);
            rt.set_field(table, b, node);
            unique += 1;
        }
        rt.work(2);
    }
    unique
}

// ---- global ------------------------------------------------------------------

fn insert_global(m: &mut GlobalMutator, table: GValue, nbuckets: usize, key: u64) -> i64 {
    let b = hash(key, nbuckets);
    loop {
        let head = m.get_field(table, b);
        let mut cur = head;
        while let GValue::Obj(_) = cur {
            if m.get_field(cur, 0).expect_int() as u64 == key {
                return 0;
            }
            cur = m.get_field(cur, 1);
        }
        let mark = m.mark();
        let _ht = m.root(table);
        let _hh = m.root(head);
        let node = m.alloc(&[GValue::Int(key as i64), head]);
        let won = m.cas_field(table, b, head, node);
        m.release(mark);
        if won {
            return 1;
        }
    }
}

fn go_global(m: &mut GlobalMutator, table: GValue, nbuckets: usize, items: &[u64]) -> i64 {
    if items.len() <= GRAIN {
        let mut unique = 0;
        let mark = m.mark();
        let _ht = m.root(table);
        for &key in items {
            unique += insert_global(m, table, nbuckets, key);
        }
        m.release(mark);
        return unique;
    }
    let (lo, hi) = items.split_at(items.len() / 2);
    let mark = m.mark();
    let _ht = m.root(table);
    let (a, b) = m.fork(
        move |m| GValue::Int(go_global(m, table, nbuckets, lo)),
        move |m| GValue::Int(go_global(m, table, nbuckets, hi)),
    );
    m.release(mark);
    a.expect_int() + b.expect_int()
}

impl Benchmark for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        100_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let items = util::dedup_stream(n, 71);
        let nbuckets = buckets_for(n);
        let table = m.alloc_array(nbuckets, Value::Unit);
        go_mpl(m, table, nbuckets, &items)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        go_seq(rt, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let items = util::dedup_stream(n, 71);
        let set: std::collections::HashSet<u64> = items.into_iter().collect();
        set.len() as i64
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let items = util::dedup_stream(n, 71);
        let nbuckets = buckets_for(n);
        let table = m.alloc_n(nbuckets, GValue::Unit);
        Some(go_global(m, table, nbuckets, &items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree_and_entangle() {
        let b = Dedup;
        let n = 8000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let grt = GlobalRuntime::new(1 << 22, 2);
        let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(glob.expect_int(), native);
        let s = rt.stats();
        assert!(s.entangled_reads > 0, "dedup must entangle: {s:?}");
        assert!(s.pins > 0);
        assert_eq!(s.pinned_bytes, 0, "everything unpinned by the end");
    }

    #[test]
    fn detect_only_aborts_on_dedup() {
        let b = Dedup;
        let rt = Runtime::new(RuntimeConfig::detect_only());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|m| Value::Int(b.run_mpl(m, 8000)))
        }));
        assert!(r.is_err(), "prior-MPL semantics abort on entanglement");
    }
}
