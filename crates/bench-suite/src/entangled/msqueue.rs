//! `msqueue` — a Michael–Scott-style linked queue (the classic lock-free
//! queue the paper's related work builds on): producers CAS nodes onto the
//! tail while a consumer swings the head. Consumers constantly read nodes
//! allocated by concurrent producers — sustained entanglement.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const GRAIN: usize = 2048;

/// The benchmark.
pub struct MsQueue;

// A node is a mutable 2-array: [value, next].

fn enqueue_mpl(m: &mut Mutator<'_>, tail: Value, v: i64) {
    let mark = m.mark();
    let ht = m.root(tail);
    let node = m.alloc_array_from(&[Value::Int(v), Value::Unit]);
    let hn = m.root(node);
    loop {
        let tail = m.get(&ht);
        let t = m.read_ref(tail);
        let next = m.arr_get(t, 1);
        match next {
            Value::Unit => {
                let node = m.get(&hn);
                if m.arr_cas(t, 1, Value::Unit, node).is_ok() {
                    // Swing the tail (best effort).
                    let tail = m.get(&ht);
                    let node = m.get(&hn);
                    let _ = m.ref_cas(tail, t, node);
                    break;
                }
            }
            stale => {
                // Help a lagging enqueuer.
                let tail = m.get(&ht);
                let _ = m.ref_cas(tail, t, stale);
            }
        }
    }
    m.release(mark);
}

/// Dequeues one value, or `None` when the queue is currently empty.
fn dequeue_mpl(m: &mut Mutator<'_>, head: Value, tail: Value) -> Option<i64> {
    let mark = m.mark();
    let hh = m.root(head);
    let ht = m.root(tail);
    let out;
    loop {
        let head = m.get(&hh);
        let h = m.read_ref(head);
        let next = m.arr_get(h, 1); // the dummy's successor
        match next {
            Value::Unit => {
                out = None;
                break;
            }
            node => {
                let tail = m.get(&ht);
                let t = m.read_ref(tail);
                if t == h {
                    // Tail lags behind; help.
                    let tail = m.get(&ht);
                    let _ = m.ref_cas(tail, t, node);
                }
                let v = m.arr_get(node, 0).expect_int();
                let head = m.get(&hh);
                if m.ref_cas(head, h, node).is_ok() {
                    out = Some(v);
                    break;
                }
            }
        }
    }
    m.release(mark);
    out
}

fn produce_mpl(m: &mut Mutator<'_>, tail: Value, lo: i64, hi: i64) {
    if (hi - lo) as usize <= GRAIN {
        m.work((hi - lo) as u64 * 3);
        let mark = m.mark();
        let ht = m.root(tail);
        for v in lo..hi {
            let tail = m.get(&ht);
            enqueue_mpl(m, tail, v);
        }
        m.release(mark);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let ht = m.root(tail);
    m.fork(
        |m| {
            let tail = m.get(&ht);
            produce_mpl(m, tail, lo, mid);
            Value::Unit
        },
        |m| {
            let tail = m.get(&ht);
            produce_mpl(m, tail, mid, hi);
            Value::Unit
        },
    );
    m.release(mark);
}

impl Benchmark for MsQueue {
    fn name(&self) -> &'static str {
        "msqueue"
    }

    fn entangled(&self) -> bool {
        true
    }

    fn default_n(&self) -> usize {
        50_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        // Dummy node + head/tail refs.
        let dummy = m.alloc_array_from(&[Value::Int(-1), Value::Unit]);
        let hd = m.root(dummy);
        let head = m.alloc_ref(m.get(&hd));
        let hh = m.root(head);
        let tail = m.alloc_ref(m.get(&hd));
        let ht = m.root(tail);

        // Producers (a fork tree) run concurrently with a consumer task.
        let consumed = std::sync::Mutex::new(0i64);
        let n_i = n as i64;
        m.fork(
            |m| {
                let tail = m.get(&ht);
                produce_mpl(m, tail, 0, n_i);
                Value::Unit
            },
            |m| {
                // Consume until all n items are seen (spins while empty —
                // under the depth-first executor producers finish first).
                let mut sum = 0i64;
                let mut got = 0usize;
                while got < n {
                    let (head, tail) = (m.get(&hh), m.get(&ht));
                    match dequeue_mpl(m, head, tail) {
                        Some(v) => {
                            sum += v;
                            got += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
                *consumed.lock().unwrap() = sum;
                Value::Unit
            },
        );
        let sum = *consumed.lock().unwrap();
        sum
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        // Sequential enqueue-all / dequeue-all through the same node
        // structure.
        let dummy = rt.alloc(&[SeqValue::Int(-1), SeqValue::Unit]);
        let hd = rt.root(dummy);
        let state = rt.alloc(&[dummy, dummy]); // [head, tail]
        let hs = rt.root(state);
        let _ = hd;
        for v in 0..n as i64 {
            let state = rt.get(hs);
            let t = rt.get_field(state, 1);
            let node = rt.alloc(&[SeqValue::Int(v), SeqValue::Unit]);
            let state = rt.get(hs);
            rt.set_field(t, 1, node);
            rt.set_field(state, 1, node);
            rt.work(3);
        }
        let mut sum = 0i64;
        loop {
            let state = rt.get(hs);
            let h = rt.get_field(state, 0);
            let next = rt.get_field(h, 1);
            match next {
                SeqValue::Unit => break,
                node => {
                    sum += rt.get_field(node, 0).expect_int();
                    let state = rt.get(hs);
                    rt.set_field(state, 0, node);
                }
            }
        }
        sum
    }

    fn run_native(&self, n: usize) -> i64 {
        use std::collections::VecDeque;
        let mut q = VecDeque::new();
        for v in 0..n as i64 {
            q.push_back(v);
        }
        let mut sum = 0;
        while let Some(v) = q.pop_front() {
            sum += v;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree_and_entangle() {
        let b = MsQueue;
        let n = 6000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        let s = rt.stats();
        assert!(s.entangled_reads > 0, "queue traffic entangles: {s:?}");
        assert_eq!(s.pinned_bytes, 0);
    }

    #[test]
    fn fifo_order_sequentially() {
        // Under the depth-first executor the consumer sees producer order
        // within each producer leaf; the sum is order-independent anyway,
        // but the first element must be 0 (FIFO from the first leaf).
        let rt = Runtime::new(RuntimeConfig::managed());
        let first = rt.run(|m| {
            let dummy = m.alloc_array_from(&[Value::Int(-1), Value::Unit]);
            let hd = m.root(dummy);
            let head = m.alloc_ref(m.get(&hd));
            let hh = m.root(head);
            let tail = m.alloc_ref(m.get(&hd));
            let ht = m.root(tail);
            for v in 0..10 {
                let tail = m.get(&ht);
                enqueue_mpl(m, tail, v);
            }
            let (head, tail) = (m.get(&hh), m.get(&ht));
            Value::Int(dequeue_mpl(m, head, tail).unwrap())
        });
        assert_eq!(first.expect_int(), 0);
    }
}
