//! # mpl-bench-suite — the Parallel-ML-style benchmark suite
//!
//! Twenty benchmarks in the mold of the paper's evaluation (PBBS-derived
//! Parallel ML programs): thirteen **disentangled** (pure or
//! locally-effectful fork-join) and seven **entangled** (in-place effects
//! shared across concurrent tasks: concurrent hash tables, lock-free
//! stacks/queues, BFS parent-claiming, concurrent memoization, account
//! updates, concurrent union-find).
//!
//! Every benchmark implements [`Benchmark`]:
//!
//! * `run_mpl` — against the entanglement-managed runtime's [`Mutator`];
//! * `run_seq` — the same algorithm, single-threaded, on the barrier-free
//!   sequential baseline (`T_s` in the overhead tables);
//! * `run_native` — plain Rust (the C++/Go stand-in and the checksum
//!   oracle);
//! * `run_global` — on the shared-heap stop-the-world runtime, for the
//!   cross-runtime comparison benchmarks.
//!
//! All workloads are seeded and deterministic; each `run_*` returns a
//! checksum that must agree across every implementation (verified by each
//! module's tests and the integration suite).
//!
//! # Example
//!
//! ```
//! use mpl_runtime::{Runtime, RuntimeConfig, Value};
//!
//! let fib = mpl_bench_suite::by_name("fib").unwrap();
//! let n = fib.small_n();
//! let rt = Runtime::new(RuntimeConfig::managed());
//! let managed = rt.run(|m| Value::Int(fib.run_mpl(m, n)));
//! assert_eq!(managed, Value::Int(fib.run_native(n)), "checksums agree");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mplutil;
pub mod util;

pub mod disentangled {
    //! Disentangled benchmarks: no cross-task memory effects.
    pub mod dmm;
    pub mod fib;
    pub mod grep;
    pub mod histogram;
    pub mod integrate;
    pub mod mcss;
    pub mod msort;
    pub mod nbody;
    pub mod nqueens;
    pub mod primes;
    pub mod quickhull;
    pub mod spmv;
    pub mod tokens;
}

pub mod entangled {
    //! Entangled benchmarks: concurrent tasks share mutable objects.
    pub mod accounts;
    pub mod bfs;
    pub mod conc_stack;
    pub mod dedup;
    pub mod memo;
    pub mod msqueue;
    pub mod unionfind;
}

use mpl_baselines::{GlobalMutator, SeqRuntime};
use mpl_runtime::Mutator;

/// A suite benchmark, runnable on every runtime with a common checksum.
pub trait Benchmark: Sync {
    /// Short name (table row label).
    fn name(&self) -> &'static str;

    /// True if the benchmark entangles (uses cross-task memory effects).
    fn entangled(&self) -> bool;

    /// Default problem size for the experiment tables.
    fn default_n(&self) -> usize;

    /// A smaller size for quick verification runs.
    fn small_n(&self) -> usize {
        (self.default_n() / 16).max(4)
    }

    /// Scales the default size to `pct` percent of full scale. Linear by
    /// default; benchmarks whose cost is exponential in `n` (fib, memo,
    /// nqueens) override this with a logarithmic adjustment.
    fn scaled_n(&self, pct: usize) -> usize {
        (self.default_n() * pct / 100).max(self.small_n().min(self.default_n()))
    }

    /// Runs on the entanglement-managed runtime; returns the checksum.
    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64;

    /// Runs on the sequential baseline; returns the checksum.
    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64;

    /// Plain-Rust implementation (oracle + native comparison).
    fn run_native(&self, n: usize) -> i64;

    /// Runs on the global-heap runtime, if supported (comparison set).
    fn run_global(&self, _m: &mut GlobalMutator, _n: usize) -> Option<i64> {
        None
    }
}

/// All benchmarks, disentangled first.
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(disentangled::fib::Fib),
        Box::new(disentangled::msort::Msort),
        Box::new(disentangled::primes::Primes),
        Box::new(disentangled::tokens::Tokens),
        Box::new(disentangled::histogram::Histogram),
        Box::new(disentangled::quickhull::Quickhull),
        Box::new(disentangled::nqueens::Nqueens),
        Box::new(disentangled::mcss::Mcss),
        Box::new(disentangled::dmm::Dmm),
        Box::new(disentangled::integrate::Integrate),
        Box::new(disentangled::grep::Grep),
        Box::new(disentangled::spmv::Spmv),
        Box::new(disentangled::nbody::Nbody),
        Box::new(entangled::bfs::Bfs),
        Box::new(entangled::dedup::Dedup),
        Box::new(entangled::conc_stack::ConcStack),
        Box::new(entangled::accounts::Accounts),
        Box::new(entangled::memo::Memo),
        Box::new(entangled::msqueue::MsQueue),
        Box::new(entangled::unionfind::UnionFind),
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let benches = all();
        assert_eq!(benches.len(), 20);
        let names: std::collections::HashSet<_> = benches.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 20, "names must be unique");
        assert_eq!(benches.iter().filter(|b| b.entangled()).count(), 7);
        assert!(by_name("fib").is_some());
        assert!(by_name("nope").is_none());
    }
}
