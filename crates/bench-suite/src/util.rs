//! Shared workload-generation helpers: deterministic seeded data so every
//! runtime sees byte-identical inputs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The fixed experiment seed (all generators derive from it).
pub const SEED: u64 = 0x9e3779b97f4a7c15;

/// A deterministic RNG for workload generation.
pub fn rng(stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(SEED ^ stream)
}

/// `n` pseudo-random 63-bit non-negative integers.
pub fn random_ints(n: usize, stream: u64) -> Vec<i64> {
    let mut r = rng(stream);
    (0..n).map(|_| r.gen_range(0..i64::MAX / 4)).collect()
}

/// `n` small signed integers in `[-50, 50]` (for MCSS-style workloads).
pub fn random_small_ints(n: usize, stream: u64) -> Vec<i64> {
    let mut r = rng(stream);
    (0..n).map(|_| r.gen_range(-50..=50)).collect()
}

/// `n` pseudo-random points with integer coordinates in a disc of radius
/// `radius`.
pub fn random_points(n: usize, radius: i64, stream: u64) -> Vec<(i64, i64)> {
    let mut r = rng(stream);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = r.gen_range(-radius..=radius);
        let y = r.gen_range(-radius..=radius);
        if x * x + y * y <= radius * radius {
            out.push((x, y));
        }
    }
    out
}

/// Pseudo-text: lowercase words of length 1–8 separated by single spaces.
pub fn random_text(n_bytes: usize, stream: u64) -> String {
    let mut r = rng(stream);
    let mut s = String::with_capacity(n_bytes);
    while s.len() < n_bytes {
        let len = r.gen_range(1..=8);
        for _ in 0..len {
            s.push((b'a' + r.gen_range(0..26u8)) as char);
        }
        s.push(' ');
    }
    s.truncate(n_bytes);
    s
}

/// A random directed graph in CSR form: every node gets exactly `degree`
/// out-edges (possibly with duplicates), plus edge `i -> i+1` to keep it
/// connected from node 0.
pub struct CsrGraph {
    /// Offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Edge targets.
    pub targets: Vec<u32>,
}

/// Generates the experiment graph.
pub fn random_graph(n: usize, degree: usize, stream: u64) -> CsrGraph {
    let mut r = rng(stream);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(n * (degree + 1));
    offsets.push(0u32);
    for i in 0..n {
        if i + 1 < n {
            targets.push((i + 1) as u32);
        }
        for _ in 0..degree {
            targets.push(r.gen_range(0..n as u64) as u32);
        }
        offsets.push(targets.len() as u32);
    }
    CsrGraph { offsets, targets }
}

/// Stream of items with duplicates for dedup workloads: values drawn from
/// a universe of `n / 2` keys, so roughly half the stream is duplicate.
pub fn dedup_stream(n: usize, stream: u64) -> Vec<u64> {
    let mut r = rng(stream);
    let universe = (n / 2).max(1) as u64;
    (0..n).map(|_| r.gen_range(0..universe)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_ints(10, 1), random_ints(10, 1));
        assert_ne!(random_ints(10, 1), random_ints(10, 2));
        assert_eq!(random_text(64, 3), random_text(64, 3));
        let g1 = random_graph(50, 3, 4);
        let g2 = random_graph(50, 3, 4);
        assert_eq!(g1.offsets, g2.offsets);
        assert_eq!(g1.targets, g2.targets);
    }

    #[test]
    fn graph_is_wellformed() {
        let n = 100;
        let g = random_graph(n, 4, 7);
        assert_eq!(g.offsets.len(), n + 1);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.targets.len());
        for &t in &g.targets {
            assert!((t as usize) < n);
        }
    }

    #[test]
    fn points_in_disc() {
        for (x, y) in random_points(100, 1000, 5) {
            assert!(x * x + y * y <= 1000 * 1000);
        }
    }

    #[test]
    fn dedup_stream_has_duplicates() {
        let s = dedup_stream(1000, 9);
        let uniq: std::collections::HashSet<_> = s.iter().collect();
        assert!(uniq.len() < s.len());
    }
}
