//! `grep` — count the occurrences of a fixed pattern in a text by
//! divide-and-conquer: each half is scanned independently and matches
//! straddling the split point are counted in a small boundary window.
//! The text lives in a raw (unboxed) array; disentangled.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 8192;
const PATTERN: &[u8] = b"ab";

/// The benchmark.
pub struct Grep;

fn count_in(text: &[u8]) -> i64 {
    if text.len() < PATTERN.len() {
        return 0;
    }
    let mut c = 0;
    for w in text.windows(PATTERN.len()) {
        if w == PATTERN {
            c += 1;
        }
    }
    c
}

// ---- mpl -----------------------------------------------------------------

fn read_window(m: &mut Mutator<'_>, arr: Value, lo: usize, hi: usize) -> Vec<u8> {
    (lo..hi).map(|i| m.raw_get(arr, i) as u8).collect()
}

fn go_mpl(m: &mut Mutator<'_>, arr: Value, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        let text = read_window(m, arr, lo, hi);
        return count_in(&text);
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let keep = m.root(arr);
    let (lv, rv) = m.fork(
        |m| {
            let arr = m.get(&keep);
            Value::Int(go_mpl(m, arr, lo, mid))
        },
        |m| {
            let arr = m.get(&keep);
            Value::Int(go_mpl(m, arr, mid, hi))
        },
    );
    // Matches that straddle the split: a window of pattern-length - 1
    // bytes on each side of `mid`.
    let wlo = mid.saturating_sub(PATTERN.len() - 1).max(lo);
    let whi = (mid + PATTERN.len() - 1).min(hi);
    let arr = m.get(&keep);
    let boundary = {
        let w = read_window(m, arr, wlo, whi);
        // Only count matches that actually cross mid (start before it).
        let mut c = 0;
        for (k, win) in w.windows(PATTERN.len()).enumerate() {
            if win == PATTERN && wlo + k < mid && wlo + k + PATTERN.len() > mid {
                c += 1;
            }
        }
        c
    };
    m.release(mark);
    lv.expect_int() + rv.expect_int() + boundary
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, arr: SeqValue, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        rt.work((hi - lo) as u64);
        let text: Vec<u8> = (lo..hi).map(|i| rt.raw_get(arr, i) as u8).collect();
        return count_in(&text);
    }
    let mid = lo + (hi - lo) / 2;
    let l = go_seq(rt, arr, lo, mid);
    let r = go_seq(rt, arr, mid, hi);
    let wlo = mid.saturating_sub(PATTERN.len() - 1).max(lo);
    let whi = (mid + PATTERN.len() - 1).min(hi);
    let w: Vec<u8> = (wlo..whi).map(|i| rt.raw_get(arr, i) as u8).collect();
    let mut boundary = 0;
    for (k, win) in w.windows(PATTERN.len()).enumerate() {
        if win == PATTERN && wlo + k < mid && wlo + k + PATTERN.len() > mid {
            boundary += 1;
        }
    }
    l + r + boundary
}

impl Benchmark for Grep {
    fn name(&self) -> &'static str {
        "grep"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        400_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let text = util::random_text(n, 23);
        let words: Vec<u64> = text.bytes().map(u64::from).collect();
        let ha = crate::mplutil::alloc_filled_raw(m, &words);
        let arr = m.get(&ha);
        go_mpl(m, arr, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let text = util::random_text(n, 23);
        let arr = rt.alloc_raw(n);
        let h = rt.root(arr);
        for (i, b) in text.bytes().enumerate() {
            rt.raw_set(arr, i, u64::from(b));
        }
        let arr = rt.get(h);
        go_seq(rt, arr, 0, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        count_in(util::random_text(n, 23).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn boundary_matches_are_counted_once() {
        // A text that is nothing but pattern repetitions: every split
        // point potentially straddles a match.
        let text: Vec<u8> = PATTERN.iter().copied().cycle().take(64).collect();
        // "abab..." matches "ab" at every even offset.
        assert_eq!(count_in(&text), 32);
    }

    #[test]
    fn checksums_agree() {
        let b = Grep;
        let n = b.small_n();
        let native = b.run_native(n);
        assert!(native > 0, "the workload must actually match something");
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0, "disentangled");
    }
}
