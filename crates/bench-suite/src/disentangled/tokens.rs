//! `tokens` — count tokens (maximal runs of non-space bytes) in a text,
//! parallelized over byte ranges with boundary-aware counting. The text
//! lives in a heap string (raw array). Part of the comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 8192;

/// The benchmark.
pub struct Tokens;

/// A byte is a token start iff it is non-space and its predecessor (or
/// the string start) is a space.
fn count_starts(text: &[u8], lo: usize, hi: usize) -> i64 {
    (lo..hi)
        .filter(|&i| text[i] != b' ' && (i == 0 || text[i - 1] == b' '))
        .count() as i64
}

/// Reads byte `i` from a string object laid out as
/// `[len, packed-words...]`.
fn byte_at_mpl(m: &mut Mutator<'_>, s: Value, i: usize) -> u8 {
    let w = m.raw_get(s, 1 + i / 8);
    (w >> (8 * (i % 8))) as u8
}

fn go_mpl(m: &mut Mutator<'_>, s: Value, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        let mut count = 0;
        for i in lo..hi {
            let c = byte_at_mpl(m, s, i);
            let prev = if i == 0 {
                b' '
            } else {
                byte_at_mpl(m, s, i - 1)
            };
            if c != b' ' && prev == b' ' {
                count += 1;
            }
        }
        return count;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let hs = m.root(s);
    let (a, b) = m.fork(
        |m| {
            let s = m.get(&hs);
            Value::Int(go_mpl(m, s, lo, mid))
        },
        |m| {
            let s = m.get(&hs);
            Value::Int(go_mpl(m, s, mid, hi))
        },
    );
    m.release(mark);
    a.expect_int() + b.expect_int()
}

fn byte_at_seq(rt: &mut SeqRuntime, s: SeqValue, i: usize) -> u8 {
    let w = rt.raw_get(s, 1 + i / 8);
    (w >> (8 * (i % 8))) as u8
}

fn go_seq(rt: &mut SeqRuntime, s: SeqValue, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        rt.work((hi - lo) as u64);
        let mut count = 0;
        for i in lo..hi {
            let c = byte_at_seq(rt, s, i);
            let prev = if i == 0 {
                b' '
            } else {
                byte_at_seq(rt, s, i - 1)
            };
            if c != b' ' && prev == b' ' {
                count += 1;
            }
        }
        return count;
    }
    let mid = lo + (hi - lo) / 2;
    go_seq(rt, s, lo, mid) + go_seq(rt, s, mid, hi)
}

fn pack_str_global(m: &mut GlobalMutator, text: &str) -> GValue {
    let bytes = text.as_bytes();
    let s = m.alloc_raw(1 + bytes.len().div_ceil(8));
    m.raw_set(s, 0, bytes.len() as u64);
    for (w, chunk) in bytes.chunks(8).enumerate() {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        m.raw_set(s, 1 + w, u64::from_le_bytes(buf));
    }
    s
}

fn go_global(m: &mut GlobalMutator, s: GValue, lo: usize, hi: usize) -> i64 {
    let byte_at = |m: &mut GlobalMutator, i: usize| -> u8 {
        (m.raw_get(s, 1 + i / 8) >> (8 * (i % 8))) as u8
    };
    if hi - lo <= GRAIN {
        let mut count = 0;
        for i in lo..hi {
            let c = byte_at(m, i);
            let prev = if i == 0 { b' ' } else { byte_at(m, i - 1) };
            if c != b' ' && prev == b' ' {
                count += 1;
            }
        }
        return count;
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = m.fork(
        move |m| GValue::Int(go_global(m, s, lo, mid)),
        move |m| GValue::Int(go_global(m, s, mid, hi)),
    );
    a.expect_int() + b.expect_int()
}

impl Benchmark for Tokens {
    fn name(&self) -> &'static str {
        "tokens"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        400_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let text = util::random_text(n, 31);
        let bytes = text.as_bytes();
        let mut words: Vec<u64> = vec![bytes.len() as u64];
        words.extend(bytes.chunks(8).map(|chunk| {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(buf)
        }));
        let h = crate::mplutil::alloc_filled_raw(m, &words);
        let s = m.get(&h);
        go_mpl(m, s, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let text = util::random_text(n, 31);
        let bytes = text.as_bytes();
        let s = rt.alloc_raw(1 + bytes.len().div_ceil(8));
        rt.raw_set(s, 0, bytes.len() as u64);
        for (w, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            rt.raw_set(s, 1 + w, u64::from_le_bytes(buf));
        }
        go_seq(rt, s, 0, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let text = util::random_text(n, 31);
        count_starts(text.as_bytes(), 0, n)
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let text = util::random_text(n, 31);
        let s = pack_str_global(m, &text);
        Some(go_global(m, s, 0, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn boundary_counting_is_exact() {
        let text = b"ab  cd e   fg";
        assert_eq!(count_starts(text, 0, text.len()), 4);
        // Split anywhere: halves sum to the whole.
        for split in 0..text.len() {
            assert_eq!(
                count_starts(text, 0, split) + count_starts(text, split, text.len()),
                4
            );
        }
    }

    #[test]
    fn checksums_agree() {
        let b = Tokens;
        let n = 20_000;
        let native = b.run_native(n);
        assert!(native > 1000, "plausible token count: {native}");
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let grt = GlobalRuntime::new(1 << 22, 2);
        let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(glob.expect_int(), native);
        assert_eq!(rt.stats().pins, 0);
    }
}
