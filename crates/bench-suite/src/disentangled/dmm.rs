//! `dmm` — dense integer matrix multiplication, parallel over output row
//! blocks. Children write into an output array allocated by an ancestor:
//! ancestor writes are *local* in the hierarchy (down the path), so the
//! benchmark stays disentangled despite the shared output.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const ROW_GRAIN: usize = 8;
const MODULUS: i64 = 1 << 40;

/// The benchmark.
pub struct Dmm;

fn inputs(n: usize) -> (Vec<i64>, Vec<i64>) {
    let a: Vec<i64> = util::random_ints(n * n, 51)
        .iter()
        .map(|x| x % 997)
        .collect();
    let b: Vec<i64> = util::random_ints(n * n, 52)
        .iter()
        .map(|x| x % 997)
        .collect();
    (a, b)
}

fn checksum(c: impl Fn(usize, usize) -> i64, n: usize) -> i64 {
    let mut acc = 0i64;
    for i in 0..n {
        for j in 0..n {
            acc = (acc + c(i, j) * ((i + j) % 7 + 1) as i64) % MODULUS;
        }
    }
    acc
}

// ---- mpl -----------------------------------------------------------------

fn rows_mpl(m: &mut Mutator<'_>, a: Value, b: Value, c: Value, n: usize, lo: usize, hi: usize) {
    if hi - lo <= ROW_GRAIN {
        m.work(((hi - lo) * n * n) as u64);
        for i in lo..hi {
            for j in 0..n {
                let mut acc = 0i64;
                for k in 0..n {
                    let x = m.raw_get(a, i * n + k) as i64;
                    let y = m.raw_get(b, k * n + j) as i64;
                    acc += x * y;
                }
                m.raw_set(c, i * n + j, acc as u64);
            }
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let (ha, hb, hc) = (m.root(a), m.root(b), m.root(c));
    m.fork(
        |m| {
            let (a, b, c) = (m.get(&ha), m.get(&hb), m.get(&hc));
            rows_mpl(m, a, b, c, n, lo, mid);
            Value::Unit
        },
        |m| {
            let (a, b, c) = (m.get(&ha), m.get(&hb), m.get(&hc));
            rows_mpl(m, a, b, c, n, mid, hi);
            Value::Unit
        },
    );
    m.release(mark);
}

// ---- seq -----------------------------------------------------------------

fn rows_seq(rt: &mut SeqRuntime, a: SeqValue, b: SeqValue, c: SeqValue, n: usize) {
    rt.work((n * n * n) as u64);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                let x = rt.raw_get(a, i * n + k) as i64;
                let y = rt.raw_get(b, k * n + j) as i64;
                acc += x * y;
            }
            rt.raw_set(c, i * n + j, acc as u64);
        }
    }
}

fn fill_raw_mpl(m: &mut Mutator<'_>, data: &[i64]) -> Value {
    let arr = m.alloc_raw(data.len());
    for (i, &x) in data.iter().enumerate() {
        m.raw_set(arr, i, x as u64);
    }
    arr
}

impl Benchmark for Dmm {
    fn name(&self) -> &'static str {
        "dmm"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        96
    }

    fn small_n(&self) -> usize {
        24
    }

    fn scaled_n(&self, pct: usize) -> usize {
        // Cost is cubic in n: scale the side length by the cube root.
        let f = (pct as f64 / 100.0).cbrt();
        ((self.default_n() as f64 * f) as usize).max(self.small_n())
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let (a, b) = inputs(n);
        let av = fill_raw_mpl(m, &a);
        let ha = m.root(av);
        let bv = fill_raw_mpl(m, &b);
        let hb = m.root(bv);
        let cv = m.alloc_raw(n * n);
        let hc = m.root(cv);
        let (av, bv, cv) = (m.get(&ha), m.get(&hb), m.get(&hc));
        rows_mpl(m, av, bv, cv, n, 0, n);
        let cv = m.get(&hc);
        let mut vals = vec![0i64; n * n];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = m.raw_get(cv, i) as i64;
        }
        checksum(|i, j| vals[i * n + j], n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let (a, b) = inputs(n);
        let av = rt.alloc_raw(n * n);
        let ha = rt.root(av);
        for (i, &x) in a.iter().enumerate() {
            rt.raw_set(av, i, x as u64);
        }
        let bv = rt.alloc_raw(n * n);
        let hb = rt.root(bv);
        for (i, &x) in b.iter().enumerate() {
            rt.raw_set(bv, i, x as u64);
        }
        let cv = rt.alloc_raw(n * n);
        let hc = rt.root(cv);
        let (av, bv, cv) = (rt.get(ha), rt.get(hb), rt.get(hc));
        rows_seq(rt, av, bv, cv, n);
        let cv = rt.get(hc);
        let mut vals = vec![0i64; n * n];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = rt.raw_get(cv, i) as i64;
        }
        checksum(|i, j| vals[i * n + j], n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let (a, b) = inputs(n);
        let mut c = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0i64;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        checksum(|i, j| c[i * n + j], n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Dmm;
        let n = 24;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(
            rt.stats().pins,
            0,
            "writes into the ancestor output array are local, not entangled"
        );
    }
}
