//! `spmv` — sparse matrix–vector product over a CSR matrix. Rows are
//! processed by divide-and-conquer; each leaf reads the shared (raw,
//! read-only) CSR arrays and writes its rows of `y` — purely local
//! effects on disjoint index ranges. Disentangled.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Handle, Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 2048;
const DEGREE: usize = 8;

/// The benchmark.
pub struct Spmv;

/// Deterministic matrix value for entry (row, col).
fn val(row: usize, col: usize) -> i64 {
    ((row * 7 + col * 3) % 13) as i64 - 6
}

/// Deterministic input-vector entry.
fn x_of(col: usize) -> i64 {
    (col % 11) as i64 - 5
}

// ---- mpl -----------------------------------------------------------------

struct Arrays<'a> {
    offsets: &'a Handle,
    targets: &'a Handle,
    y: &'a Handle,
}

fn go_mpl(m: &mut Mutator<'_>, a: &Arrays<'_>, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        let offsets = m.get(a.offsets);
        let targets = m.get(a.targets);
        let y = m.get(a.y);
        let mut sum = 0i64;
        for row in lo..hi {
            let start = m.raw_get(offsets, row) as usize;
            let end = m.raw_get(offsets, row + 1) as usize;
            m.work((end - start) as u64);
            let mut acc = 0i64;
            for k in start..end {
                let col = m.raw_get(targets, k) as usize;
                acc = acc.wrapping_add(val(row, col).wrapping_mul(x_of(col)));
            }
            m.raw_set(y, row, acc as u64);
            sum = sum.wrapping_add(acc);
        }
        return sum;
    }
    let mid = lo + (hi - lo) / 2;
    let (lv, rv) = m.fork(
        |m| Value::Int(go_mpl(m, a, lo, mid)),
        |m| Value::Int(go_mpl(m, a, mid, hi)),
    );
    lv.expect_int().wrapping_add(rv.expect_int())
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, offsets: SeqValue, targets: SeqValue, y: SeqValue, n: usize) -> i64 {
    let mut sum = 0i64;
    for row in 0..n {
        let start = rt.raw_get(offsets, row) as usize;
        let end = rt.raw_get(offsets, row + 1) as usize;
        rt.work((end - start) as u64);
        let mut acc = 0i64;
        for k in start..end {
            let col = rt.raw_get(targets, k) as usize;
            acc = acc.wrapping_add(val(row, col).wrapping_mul(x_of(col)));
        }
        rt.raw_set(y, row, acc as u64);
        sum = sum.wrapping_add(acc);
    }
    sum
}

impl Benchmark for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        100_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let g = util::random_graph(n, DEGREE, 31);
        let offs: Vec<u64> = g.offsets.iter().map(|&o| u64::from(o)).collect();
        let tgts: Vec<u64> = g.targets.iter().map(|&t| u64::from(t)).collect();
        let ho = crate::mplutil::alloc_filled_raw(m, &offs);
        let ht = crate::mplutil::alloc_filled_raw(m, &tgts);
        let y = m.alloc_raw(n);
        let hy = m.root(y);
        let arrays = Arrays {
            offsets: &ho,
            targets: &ht,
            y: &hy,
        };
        go_mpl(m, &arrays, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let g = util::random_graph(n, DEGREE, 31);
        let offsets = rt.alloc_raw(n + 1);
        let ho = rt.root(offsets);
        let targets = rt.alloc_raw(g.targets.len());
        let ht = rt.root(targets);
        let y = rt.alloc_raw(n);
        let hy = rt.root(y);
        for (i, &o) in g.offsets.iter().enumerate() {
            rt.raw_set(rt.get(ho), i, u64::from(o));
        }
        for (i, &t) in g.targets.iter().enumerate() {
            rt.raw_set(rt.get(ht), i, u64::from(t));
        }
        go_seq(rt, rt.get(ho), rt.get(ht), rt.get(hy), n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let g = util::random_graph(n, DEGREE, 31);
        let mut sum = 0i64;
        for row in 0..n {
            let start = g.offsets[row] as usize;
            let end = g.offsets[row + 1] as usize;
            let mut acc = 0i64;
            for k in start..end {
                let col = g.targets[k] as usize;
                acc = acc.wrapping_add(val(row, col).wrapping_mul(x_of(col)));
            }
            sum = sum.wrapping_add(acc);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Spmv;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0, "disentangled");
    }

    #[test]
    fn output_vector_rows_are_written() {
        // The y rows must contain the same values the checksum folded in.
        let b = Spmv;
        let n = 64;
        let rt = Runtime::new(RuntimeConfig::managed());
        let total = rt.run(|m| {
            let g = util::random_graph(n, DEGREE, 31);
            let offs: Vec<u64> = g.offsets.iter().map(|&o| u64::from(o)).collect();
            let tgts: Vec<u64> = g.targets.iter().map(|&t| u64::from(t)).collect();
            let ho = crate::mplutil::alloc_filled_raw(m, &offs);
            let ht = crate::mplutil::alloc_filled_raw(m, &tgts);
            let y = m.alloc_raw(n);
            let hy = m.root(y);
            let arrays = Arrays {
                offsets: &ho,
                targets: &ht,
                y: &hy,
            };
            let sum = go_mpl(m, &arrays, 0, n);
            let y = m.get(&hy);
            let mut recomputed = 0i64;
            for row in 0..n {
                recomputed = recomputed.wrapping_add(m.raw_get(y, row) as i64);
            }
            assert_eq!(recomputed, sum);
            Value::Int(sum)
        });
        assert_eq!(total, Value::Int(b.run_native(n)));
    }
}
