//! `integrate` — trapezoidal integration of `f(x) = x²` over `[0, n)` in
//! fixed-point arithmetic, parallelized by recursive range splitting.
//! Purely functional.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const GRAIN: usize = 2048;
const MODULUS: i64 = 1 << 40;

/// The benchmark.
pub struct Integrate;

fn f(x: i64) -> i64 {
    (x % 100_003) * (x % 100_003)
}

fn leaf(lo: usize, hi: usize) -> i64 {
    let mut acc = 0i64;
    for i in lo..hi {
        let x = i as i64;
        acc = (acc + (f(x) + f(x + 1)) / 2) % MODULUS;
    }
    acc
}

fn go_mpl(m: &mut Mutator<'_>, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        return leaf(lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = m.fork(
        move |m| Value::Int(go_mpl(m, lo, mid)),
        move |m| Value::Int(go_mpl(m, mid, hi)),
    );
    (a.expect_int() + b.expect_int()) % MODULUS
}

fn go_seq(rt: &mut SeqRuntime, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        rt.work((hi - lo) as u64);
        return leaf(lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = rt.fork(
        move |rt| SeqValue::Int(go_seq(rt, lo, mid)),
        move |rt| SeqValue::Int(go_seq(rt, mid, hi)),
    );
    (a.expect_int() + b.expect_int()) % MODULUS
}

impl Benchmark for Integrate {
    fn name(&self) -> &'static str {
        "integrate"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        1 << 18
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        go_mpl(m, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        go_seq(rt, 0, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        // Same splitting structure so the modular sums associate
        // identically.
        fn go(lo: usize, hi: usize) -> i64 {
            if hi - lo <= GRAIN {
                return leaf(lo, hi);
            }
            let mid = lo + (hi - lo) / 2;
            (go(lo, mid) + go(mid, hi)) % MODULUS
        }
        go(0, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Integrate;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().entangled_reads, 0);
    }
}
