//! `histogram` — byte-value histogram with task-local sub-histograms
//! merged functionally at joins: the canonical "local effects only"
//! pattern that hierarchical heaps make free.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 8192;
const BUCKETS: usize = 256;

/// The benchmark.
pub struct Histogram;

fn values(n: usize) -> Vec<u8> {
    util::random_ints(n, 41)
        .into_iter()
        .map(|x| x as u8)
        .collect()
}

fn checksum_hist(counts: impl Iterator<Item = i64>) -> i64 {
    counts
        .enumerate()
        .map(|(v, c)| c * (v as i64 + 1))
        .sum::<i64>()
}

// ---- mpl -----------------------------------------------------------------

fn go_mpl(m: &mut Mutator<'_>, data: Value, lo: usize, hi: usize) -> Value {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        let mark = m.mark();
        let hd = m.root(data);
        let hist = m.alloc_raw(BUCKETS);
        let data = m.get(&hd);
        for i in lo..hi {
            let w = m.raw_get(data, i / 8);
            let v = ((w >> (8 * (i % 8))) & 0xFF) as usize;
            let c = m.raw_get(hist, v);
            m.raw_set(hist, v, c + 1);
        }
        m.release(mark);
        return hist;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let hd = m.root(data);
    let (l, r) = m.fork(
        |m| {
            let data = m.get(&hd);
            go_mpl(m, data, lo, mid)
        },
        |m| {
            let data = m.get(&hd);
            go_mpl(m, data, mid, hi)
        },
    );
    // Functional merge into a fresh histogram.
    let hl = m.root(l);
    let hr = m.root(r);
    let out = m.alloc_raw(BUCKETS);
    let (l, r) = (m.get(&hl), m.get(&hr));
    for v in 0..BUCKETS {
        let a = m.raw_get(l, v);
        let b = m.raw_get(r, v);
        m.raw_set(out, v, a + b);
    }
    m.release(mark);
    out
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, data: SeqValue, lo: usize, hi: usize) -> SeqValue {
    if hi - lo <= GRAIN {
        rt.work((hi - lo) as u64);
        let mark = rt.mark();
        let hd = rt.root(data);
        let hist = rt.alloc_raw(BUCKETS);
        let data = rt.get(hd);
        for i in lo..hi {
            let w = rt.raw_get(data, i / 8);
            let v = ((w >> (8 * (i % 8))) & 0xFF) as usize;
            let c = rt.raw_get(hist, v);
            rt.raw_set(hist, v, c + 1);
        }
        rt.release(mark);
        return hist;
    }
    let mid = lo + (hi - lo) / 2;
    let mark = rt.mark();
    let hd = rt.root(data);
    let l = go_seq(rt, data, lo, mid);
    let hl = rt.root(l);
    let data2 = rt.get(hd);
    let r = go_seq(rt, data2, mid, hi);
    let hr = rt.root(r);
    let out = rt.alloc_raw(BUCKETS);
    let (l, r) = (rt.get(hl), rt.get(hr));
    for v in 0..BUCKETS {
        let a = rt.raw_get(l, v);
        let b = rt.raw_get(r, v);
        rt.raw_set(out, v, a + b);
    }
    rt.release(mark);
    out
}

fn pack_bytes_mpl(m: &mut Mutator<'_>, bytes: &[u8]) -> Value {
    let words: Vec<u64> = bytes
        .chunks(8)
        .map(|chunk| {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(buf)
        })
        .collect();
    let h = crate::mplutil::alloc_filled_raw(m, &words);
    m.get(&h)
}

impl Benchmark for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        400_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let bytes = values(n);
        let data = pack_bytes_mpl(m, &bytes);
        let hist = go_mpl(m, data, 0, n);
        checksum_hist((0..BUCKETS).map(|v| m.raw_get(hist, v) as i64))
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let bytes = values(n);
        let data = rt.alloc_raw(bytes.len().div_ceil(8));
        for (w, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            rt.raw_set(data, w, u64::from_le_bytes(buf));
        }
        let hist = go_seq(rt, data, 0, n);
        checksum_hist((0..BUCKETS).map(|v| rt.raw_get(hist, v) as i64))
    }

    fn run_native(&self, n: usize) -> i64 {
        let mut counts = [0i64; BUCKETS];
        for v in values(n) {
            counts[v as usize] += 1;
        }
        checksum_hist(counts.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Histogram;
        let n = 30_000;
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0);
    }

    #[test]
    fn total_count_matches_n() {
        // Sum of all buckets equals the input size.
        let n = 10_000;
        let rt = Runtime::new(RuntimeConfig::managed());
        let total = rt.run(|m| {
            let bytes = values(n);
            let data = pack_bytes_mpl(m, &bytes);
            let hist = go_mpl(m, data, 0, n);
            let mut t = 0i64;
            for v in 0..BUCKETS {
                t += m.raw_get(hist, v) as i64;
            }
            Value::Int(t)
        });
        assert_eq!(total.expect_int(), n as i64);
    }
}
