//! `quickhull` — 2D convex hull by recursive farthest-point splitting.
//! Point subsets are materialized as fresh index arrays in each task's own
//! heap. Disentangled.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 1024;
const RADIUS: i64 = 1 << 20;

/// The benchmark.
pub struct Quickhull;

fn cross(o: (i64, i64), a: (i64, i64), b: (i64, i64)) -> i64 {
    (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
}

/// Reference hull size (Andrew's monotone chain), the oracle used by the
/// tests to cross-check the quickhull implementation.
#[cfg_attr(not(test), allow(dead_code))]
fn native_hull_size(points: &[(i64, i64)]) -> i64 {
    let mut pts: Vec<(i64, i64)> = points.to_vec();
    pts.sort_unstable();
    pts.dedup();
    if pts.len() < 3 {
        return pts.len() as i64;
    }
    let mut lower: Vec<(i64, i64)> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<(i64, i64)> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0 {
            upper.pop();
        }
        upper.push(p);
    }
    (lower.len() + upper.len() - 2) as i64
}

/// Plain quickhull over index slices (shared logic for the oracle
/// cross-check in tests).
fn native_quickhull(points: &[(i64, i64)]) -> i64 {
    fn rec(points: &[(i64, i64)], idx: &[usize], a: usize, b: usize) -> i64 {
        // Points strictly left of a->b.
        let mut best: Option<usize> = None;
        let mut best_d = 0;
        let mut left = Vec::new();
        for &i in idx {
            let d = cross(points[a], points[b], points[i]);
            if d > 0 {
                left.push(i);
                if d > best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
        }
        match best {
            None => 1, // segment a-b contributes vertex a
            Some(c) => rec(points, &left, a, c) + rec(points, &left, c, b),
        }
    }
    if points.len() < 2 {
        return points.len() as i64;
    }
    let amin = (0..points.len()).min_by_key(|&i| points[i]).unwrap();
    let amax = (0..points.len()).max_by_key(|&i| points[i]).unwrap();
    let all: Vec<usize> = (0..points.len()).collect();
    rec(points, &all, amin, amax) + rec(points, &all, amax, amin)
}

// ---- mpl -----------------------------------------------------------------
//
// Points live in two raw arrays xs/ys; subsets are raw index arrays
// allocated per recursion node.

/// Parallel filter pass: collect the indices strictly left of `pa -> pb`
/// in `idx[lo..hi)` plus the farthest one.
#[allow(clippy::too_many_arguments)]
fn scan_mpl(
    m: &mut Mutator<'_>,
    hx: &mpl_runtime::Handle,
    hy: &mpl_runtime::Handle,
    hi_idx: &mpl_runtime::Handle,
    lo: usize,
    hi: usize,
    pa: (i64, i64),
    pb: (i64, i64),
) -> (Vec<usize>, i64, Option<usize>) {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64);
        let mut left_ids = Vec::new();
        let mut best: Option<usize> = None;
        let mut best_d = 0;
        for k in lo..hi {
            let idx = m.get(hi_idx);
            let i = m.raw_get(idx, k) as usize;
            let (xs, ys) = (m.get(hx), m.get(hy));
            let pi = (m.raw_get(xs, i) as i64, m.raw_get(ys, i) as i64);
            let d = cross(pa, pb, pi);
            if d > 0 {
                left_ids.push(i);
                if d > best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
        }
        return (left_ids, best_d, best);
    }
    let mid = lo + (hi - lo) / 2;
    let out = std::sync::Mutex::new(((Vec::new(), 0i64, None), (Vec::new(), 0i64, None)));
    m.fork(
        |m| {
            let r = scan_mpl(m, hx, hy, hi_idx, lo, mid, pa, pb);
            out.lock().unwrap().0 = r;
            Value::Unit
        },
        |m| {
            let r = scan_mpl(m, hx, hy, hi_idx, mid, hi, pa, pb);
            out.lock().unwrap().1 = r;
            Value::Unit
        },
    );
    let ((mut lids, ld, lbest), (rids, rd, rbest)) = out.into_inner().unwrap();
    lids.extend(rids);
    if rd > ld {
        (lids, rd, rbest)
    } else {
        (lids, ld, lbest)
    }
}

/// Parallel fill of a subset array from collected indices (writes into an
/// ancestor-allocated array: local down-path effects).
fn fill_sub_mpl(
    m: &mut Mutator<'_>,
    hs: &mpl_runtime::Handle,
    ids: &[usize],
    lo: usize,
    hi: usize,
) {
    if hi - lo <= 4 * GRAIN {
        m.work((hi - lo) as u64);
        let sub = m.get(hs);
        for (k, &id) in ids[lo..hi].iter().enumerate() {
            m.raw_set(sub, lo + k, id as u64);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    m.fork(
        |m| {
            fill_sub_mpl(m, hs, ids, lo, mid);
            Value::Unit
        },
        |m| {
            fill_sub_mpl(m, hs, ids, mid, hi);
            Value::Unit
        },
    );
}

fn hull_mpl(m: &mut Mutator<'_>, xs: Value, ys: Value, idx: Value, a: usize, b: usize) -> i64 {
    let len = m.len(idx);
    let pa = point_mpl(m, xs, ys, a);
    let pb = point_mpl(m, xs, ys, b);
    let mark_scan = m.mark();
    let (shx, shy, shi) = (m.root(xs), m.root(ys), m.root(idx));
    let (left_ids, _best_d, best) = scan_mpl(m, &shx, &shy, &shi, 0, len, pa, pb);
    let (xs, ys) = (m.get(&shx), m.get(&shy));
    m.release(mark_scan);
    let Some(c) = best else { return 1 };
    // Materialize the subset in this task's heap (parallel fill).
    let mark = m.mark();
    let (hx, hy) = (m.root(xs), m.root(ys));
    let sub = m.alloc_raw(left_ids.len());
    let hs = m.root(sub);
    fill_sub_mpl(m, &hs, &left_ids, 0, left_ids.len());
    let total = if left_ids.len() <= GRAIN {
        let (xs, ys, sub) = (m.get(&hx), m.get(&hy), m.get(&hs));
        let l = hull_mpl(m, xs, ys, sub, a, c);
        let (xs, ys, sub) = (m.get(&hx), m.get(&hy), m.get(&hs));
        let r = hull_mpl(m, xs, ys, sub, c, b);
        l + r
    } else {
        let (l, r) = m.fork(
            |m| {
                let (xs, ys, sub) = (m.get(&hx), m.get(&hy), m.get(&hs));
                Value::Int(hull_mpl(m, xs, ys, sub, a, c))
            },
            |m| {
                let (xs, ys, sub) = (m.get(&hx), m.get(&hy), m.get(&hs));
                Value::Int(hull_mpl(m, xs, ys, sub, c, b))
            },
        );
        l.expect_int() + r.expect_int()
    };
    m.release(mark);
    total
}

fn point_mpl(m: &mut Mutator<'_>, xs: Value, ys: Value, i: usize) -> (i64, i64) {
    (m.raw_get(xs, i) as i64, m.raw_get(ys, i) as i64)
}

// ---- seq -----------------------------------------------------------------

fn hull_seq(
    rt: &mut SeqRuntime,
    xs: SeqValue,
    ys: SeqValue,
    idx: SeqValue,
    a: usize,
    b: usize,
) -> i64 {
    let len = rt.len(idx);
    let pa = (rt.raw_get(xs, a) as i64, rt.raw_get(ys, a) as i64);
    let pb = (rt.raw_get(xs, b) as i64, rt.raw_get(ys, b) as i64);
    let mut left_ids = Vec::new();
    let mut best: Option<usize> = None;
    let mut best_d = 0;
    for k in 0..len {
        let i = rt.raw_get(idx, k) as usize;
        let pi = (rt.raw_get(xs, i) as i64, rt.raw_get(ys, i) as i64);
        let d = cross(pa, pb, pi);
        if d > 0 {
            left_ids.push(i);
            if d > best_d {
                best_d = d;
                best = Some(i);
            }
        }
    }
    rt.work(len as u64);
    let Some(c) = best else { return 1 };
    let mark = rt.mark();
    let (hx, hy) = (rt.root(xs), rt.root(ys));
    let sub = rt.alloc_raw(left_ids.len());
    let hs = rt.root(sub);
    for (k, &i) in left_ids.iter().enumerate() {
        rt.raw_set(sub, k, i as u64);
    }
    let (xs1, ys1, sub1) = (rt.get(hx), rt.get(hy), rt.get(hs));
    let l = hull_seq(rt, xs1, ys1, sub1, a, c);
    let (xs2, ys2, sub2) = (rt.get(hx), rt.get(hy), rt.get(hs));
    let r = hull_seq(rt, xs2, ys2, sub2, c, b);
    rt.release(mark);
    l + r
}

impl Benchmark for Quickhull {
    fn name(&self) -> &'static str {
        "quickhull"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        50_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let points = util::random_points(n, RADIUS, 61);
        let xdata: Vec<u64> = points.iter().map(|&(x, _)| x as u64).collect();
        let ydata: Vec<u64> = points.iter().map(|&(_, y)| y as u64).collect();
        let idata: Vec<u64> = (0..n as u64).collect();
        let hx = crate::mplutil::alloc_filled_raw(m, &xdata);
        let hy = crate::mplutil::alloc_filled_raw(m, &ydata);
        let hi = crate::mplutil::alloc_filled_raw(m, &idata);
        let amin = (0..n).min_by_key(|&i| points[i]).unwrap();
        let amax = (0..n).max_by_key(|&i| points[i]).unwrap();
        let (xs, ys, idx) = (m.get(&hx), m.get(&hy), m.get(&hi));
        let upper = hull_mpl(m, xs, ys, idx, amin, amax);
        let (xs, ys, idx) = (m.get(&hx), m.get(&hy), m.get(&hi));
        let lower = hull_mpl(m, xs, ys, idx, amax, amin);
        upper + lower
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let points = util::random_points(n, RADIUS, 61);
        let xs = rt.alloc_raw(n);
        let hx = rt.root(xs);
        let ys = rt.alloc_raw(n);
        let hy = rt.root(ys);
        let (xs, ys) = (rt.get(hx), rt.get(hy));
        for (i, &(x, y)) in points.iter().enumerate() {
            rt.raw_set(xs, i, x as u64);
            rt.raw_set(ys, i, y as u64);
        }
        let amin = (0..n).min_by_key(|&i| points[i]).unwrap();
        let amax = (0..n).max_by_key(|&i| points[i]).unwrap();
        let idx = rt.alloc_raw(n);
        let hidx = rt.root(idx);
        for i in 0..n {
            rt.raw_set(idx, i, i as u64);
        }
        let (xs, ys, idx) = (rt.get(hx), rt.get(hy), rt.get(hidx));
        let upper = hull_seq(rt, xs, ys, idx, amin, amax);
        let (xs, ys, idx) = (rt.get(hx), rt.get(hy), rt.get(hidx));
        let lower = hull_seq(rt, xs, ys, idx, amax, amin);
        upper + lower
    }

    fn run_native(&self, n: usize) -> i64 {
        let points = util::random_points(n, RADIUS, 61);
        native_quickhull(&points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn quickhull_matches_monotone_chain() {
        let points = util::random_points(2000, RADIUS, 61);
        assert_eq!(native_quickhull(&points), native_hull_size(&points));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(native_quickhull(&[]), 0);
        assert_eq!(native_quickhull(&[(1, 1)]), 1);
    }

    #[test]
    fn checksums_agree() {
        let b = Quickhull;
        let n = 4000;
        let native = b.run_native(n);
        assert!(native >= 3);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0);
    }
}
