//! `msort` — parallel mergesort over raw arrays with a parallel merge
//! (binary-search splitting), giving the classic `O(n)` work /
//! `O(log³ n)` span profile. Each recursion level allocates fresh output
//! arrays in the task's own heap (the hierarchical allocator's bread and
//! butter); merge workers write into the parent-allocated output, which
//! is a *local* down-path effect, not entanglement. Part of the
//! comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 1024;
const MODULUS: i64 = 1 << 40;

/// The benchmark.
pub struct Msort;

fn checksum(sorted: impl Iterator<Item = i64>) -> i64 {
    let mut acc = 0i64;
    for (i, x) in sorted.enumerate() {
        acc = (acc + (x % MODULUS) * ((i % 64) as i64 + 1)) % MODULUS;
    }
    acc
}

// ---- mpl -----------------------------------------------------------------

fn sort_mpl(m: &mut Mutator<'_>, arr: Value, lo: usize, hi: usize) -> Value {
    let len = hi - lo;
    if len <= GRAIN {
        let mut data: Vec<i64> = (lo..hi).map(|i| m.raw_get(arr, i) as i64).collect();
        data.sort_unstable();
        m.work((len as u64).saturating_mul(12));
        let out = m.alloc_raw(len);
        for (i, &x) in data.iter().enumerate() {
            m.raw_set(out, i, x as u64);
        }
        return out;
    }
    let mid = lo + len / 2;
    let mark = m.mark();
    let keep = m.root(arr);
    let (lv, rv) = m.fork(
        |m| {
            let arr = m.get(&keep);
            sort_mpl(m, arr, lo, mid)
        },
        |m| {
            let arr = m.get(&keep);
            sort_mpl(m, arr, mid, hi)
        },
    );
    // Parallel merge of the two sorted halves into a fresh array.
    let hl = m.root(lv);
    let hr = m.root(rv);
    let out = m.alloc_raw(len);
    let ho = m.root(out);
    let (lv, rv, out) = (m.get(&hl), m.get(&hr), m.get(&ho));
    let (ll, rl) = (m.len(lv), m.len(rv));
    pmerge_mpl(m, lv, 0, ll, rv, 0, rl, out, 0);
    let out = m.get(&ho);
    m.release(mark);
    out
}

/// Binary search: first index in `arr[lo..hi)` whose value is `>= key`.
fn lower_bound_mpl(
    m: &mut Mutator<'_>,
    arr: Value,
    mut lo: usize,
    mut hi: usize,
    key: i64,
) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (m.raw_get(arr, mid) as i64) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Merges `a[a0..a1)` and `b[b0..b1)` into `out[o0..)`, forking on the
/// larger side's median.
#[allow(clippy::too_many_arguments)]
fn pmerge_mpl(
    m: &mut Mutator<'_>,
    a: Value,
    a0: usize,
    a1: usize,
    b: Value,
    b0: usize,
    b1: usize,
    out: Value,
    o0: usize,
) {
    let total = (a1 - a0) + (b1 - b0);
    if total <= GRAIN {
        m.work(total as u64 * 2);
        let (mut i, mut j, mut k) = (a0, b0, o0);
        while i < a1 && j < b1 {
            let x = m.raw_get(a, i) as i64;
            let y = m.raw_get(b, j) as i64;
            if x <= y {
                m.raw_set(out, k, x as u64);
                i += 1;
            } else {
                m.raw_set(out, k, y as u64);
                j += 1;
            }
            k += 1;
        }
        while i < a1 {
            let x = m.raw_get(a, i);
            m.raw_set(out, k, x);
            i += 1;
            k += 1;
        }
        while j < b1 {
            let y = m.raw_get(b, j);
            m.raw_set(out, k, y);
            j += 1;
            k += 1;
        }
        return;
    }
    // Split on the larger side's median; binary-search the other side.
    let (am, bm) = if a1 - a0 >= b1 - b0 {
        let am = a0 + (a1 - a0) / 2;
        let key = m.raw_get(a, am) as i64;
        (am, lower_bound_mpl(m, b, b0, b1, key))
    } else {
        let bm = b0 + (b1 - b0) / 2;
        let key = m.raw_get(b, bm) as i64;
        (lower_bound_mpl(m, a, a0, a1, key), bm)
    };
    m.work(((a1 - a0).max(b1 - b0) as u64).ilog2() as u64 + 1);
    let osplit = o0 + (am - a0) + (bm - b0);
    let mark = m.mark();
    let (ha, hb, ho) = (m.root(a), m.root(b), m.root(out));
    m.fork(
        |m| {
            let (a, b, out) = (m.get(&ha), m.get(&hb), m.get(&ho));
            pmerge_mpl(m, a, a0, am, b, b0, bm, out, o0);
            Value::Unit
        },
        |m| {
            let (a, b, out) = (m.get(&ha), m.get(&hb), m.get(&ho));
            pmerge_mpl(m, a, am, a1, b, bm, b1, out, osplit);
            Value::Unit
        },
    );
    m.release(mark);
}

// ---- seq ------------------------------------------------------------------

fn sort_seq(rt: &mut SeqRuntime, arr: SeqValue, lo: usize, hi: usize) -> SeqValue {
    let len = hi - lo;
    if len <= GRAIN {
        let mut data: Vec<i64> = (lo..hi).map(|i| rt.raw_get(arr, i) as i64).collect();
        data.sort_unstable();
        rt.work((len as u64).saturating_mul(12));
        let mark = rt.mark();
        let _keep = rt.root(arr);
        let out = rt.alloc_raw(len);
        rt.release(mark);
        for (i, &x) in data.iter().enumerate() {
            rt.raw_set(out, i, x as u64);
        }
        return out;
    }
    let mid = lo + len / 2;
    let mark = rt.mark();
    let ha = rt.root(arr);
    let lv = sort_seq(rt, arr, lo, mid);
    let hl = rt.root(lv);
    let arr2 = rt.get(ha);
    let rv = sort_seq(rt, arr2, mid, hi);
    let hr = rt.root(rv);
    let out = rt.alloc_raw(len);
    let (lv, rv) = (rt.get(hl), rt.get(hr));
    let (ll, rl) = (rt.len(lv), rt.len(rv));
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < ll && j < rl {
        let a = rt.raw_get(lv, i) as i64;
        let b = rt.raw_get(rv, j) as i64;
        if a <= b {
            rt.raw_set(out, k, a as u64);
            i += 1;
        } else {
            rt.raw_set(out, k, b as u64);
            j += 1;
        }
        k += 1;
    }
    while i < ll {
        let a = rt.raw_get(lv, i);
        rt.raw_set(out, k, a);
        i += 1;
        k += 1;
    }
    while j < rl {
        let b = rt.raw_get(rv, j);
        rt.raw_set(out, k, b);
        j += 1;
        k += 1;
    }
    rt.release(mark);
    out
}

// ---- global ------------------------------------------------------------------

fn sort_global(m: &mut GlobalMutator, arr: GValue, lo: usize, hi: usize) -> GValue {
    let len = hi - lo;
    if len <= GRAIN {
        let mut data: Vec<i64> = (lo..hi).map(|i| m.raw_get(arr, i) as i64).collect();
        data.sort_unstable();
        let out = m.alloc_raw(len);
        for (i, &x) in data.iter().enumerate() {
            m.raw_set(out, i, x as u64);
        }
        return out;
    }
    let mid = lo + len / 2;
    let mark = m.mark();
    let keep = m.root(arr);
    let (kl, kr) = (keep.clone(), keep);
    let (lv, rv) = m.fork(
        move |m| {
            let arr = m.get(&kl);
            sort_global(m, arr, lo, mid)
        },
        move |m| {
            let arr = m.get(&kr);
            sort_global(m, arr, mid, hi)
        },
    );
    let hl = m.root(lv);
    let hr = m.root(rv);
    let out = m.alloc_raw(len);
    let (lv, rv) = (m.get(&hl), m.get(&hr));
    let (ll, rl) = (m.len(lv), m.len(rv));
    let (mut i, mut j, mut k) = (0, 0, 0);
    while k < len {
        let take_left = j >= rl || (i < ll && m.raw_get(lv, i) as i64 <= m.raw_get(rv, j) as i64);
        if take_left {
            let a = m.raw_get(lv, i);
            m.raw_set(out, k, a);
            i += 1;
        } else {
            let b = m.raw_get(rv, j);
            m.raw_set(out, k, b);
            j += 1;
        }
        k += 1;
    }
    m.release(mark);
    out
}

impl Benchmark for Msort {
    fn name(&self) -> &'static str {
        "msort"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        100_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let data = util::random_ints(n, 21);
        let words: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        let ha = crate::mplutil::alloc_filled_raw(m, &words);
        let arr = m.get(&ha);
        let sorted = sort_mpl(m, arr, 0, n);
        checksum((0..n).map(|i| m.raw_get(sorted, i) as i64))
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let data = util::random_ints(n, 21);
        let arr = rt.alloc_raw(n);
        let h = rt.root(arr);
        for (i, &x) in data.iter().enumerate() {
            rt.raw_set(arr, i, x as u64);
        }
        let arr = rt.get(h);
        let sorted = sort_seq(rt, arr, 0, n);
        checksum((0..n).map(|i| rt.raw_get(sorted, i) as i64))
    }

    fn run_native(&self, n: usize) -> i64 {
        let mut data = util::random_ints(n, 21);
        data.sort_unstable();
        checksum(data.into_iter())
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let data = util::random_ints(n, 21);
        let arr = m.alloc_raw(n);
        for (i, &x) in data.iter().enumerate() {
            m.raw_set(arr, i, x as u64);
        }
        let sorted = sort_global(m, arr, 0, n);
        Some(checksum((0..n).map(|i| m.raw_get(sorted, i) as i64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Msort;
        let n = 5000; // spans several grains
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let grt = GlobalRuntime::new(1 << 22, 2);
        let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(glob.expect_int(), native);
        assert_eq!(rt.stats().pins, 0, "msort is disentangled");
    }

    #[test]
    fn sorts_under_gc_pressure() {
        let b = Msort;
        let cfg = RuntimeConfig {
            policy: mpl_runtime::GcPolicy {
                lgc_trigger_bytes: 16 * 1024,
                cgc_trigger_pinned_bytes: usize::MAX,
                immediate_block_free: true,
            },
            ..RuntimeConfig::managed()
        };
        let rt = Runtime::new(cfg);
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, 5000))).expect_int();
        assert_eq!(mpl, b.run_native(5000));
        assert!(rt.stats().lgc_runs > 0, "GC must have run");
    }
}
