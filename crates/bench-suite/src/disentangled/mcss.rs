//! `mcss` — maximum contiguous subsequence sum by divide-and-conquer.
//! Each node returns a 4-tuple (total, best-prefix, best-suffix, best)
//! allocated in the heap; the input lives in a raw array. Disentangled.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 4096;
const NEG_INF: i64 = i64::MIN / 4;

/// The benchmark.
pub struct Mcss;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Summary {
    total: i64,
    prefix: i64,
    suffix: i64,
    best: i64,
}

fn leaf(data: &[i64]) -> Summary {
    let mut total = 0;
    let mut prefix = NEG_INF;
    let mut suffix = NEG_INF;
    let mut best = NEG_INF;
    let mut run = 0;
    let mut cur = NEG_INF;
    for &x in data {
        total += x;
        run += x;
        prefix = prefix.max(run);
        cur = if cur < 0 { x } else { cur + x };
        best = best.max(cur);
    }
    let mut back = 0;
    for &x in data.iter().rev() {
        back += x;
        suffix = suffix.max(back);
    }
    Summary {
        total,
        prefix,
        suffix,
        best,
    }
}

fn combine(l: Summary, r: Summary) -> Summary {
    Summary {
        total: l.total + r.total,
        prefix: l.prefix.max(l.total + r.prefix),
        suffix: r.suffix.max(r.total + l.suffix),
        best: l.best.max(r.best).max(l.suffix + r.prefix),
    }
}

// ---- mpl -----------------------------------------------------------------

fn summary_to_tuple(m: &mut Mutator<'_>, s: Summary) -> Value {
    m.alloc_tuple(&[
        Value::Int(s.total),
        Value::Int(s.prefix),
        Value::Int(s.suffix),
        Value::Int(s.best),
    ])
}

fn tuple_to_summary(m: &mut Mutator<'_>, v: Value) -> Summary {
    Summary {
        total: m.tuple_get(v, 0).expect_int(),
        prefix: m.tuple_get(v, 1).expect_int(),
        suffix: m.tuple_get(v, 2).expect_int(),
        best: m.tuple_get(v, 3).expect_int(),
    }
}

fn go_mpl(m: &mut Mutator<'_>, arr: Value, lo: usize, hi: usize) -> Value {
    if hi - lo <= GRAIN {
        m.work((hi - lo) as u64 * 2);
        let mut data = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            data.push(m.raw_get(arr, i) as i64);
        }
        let s = leaf(&data);
        return summary_to_tuple(m, s);
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let keep = m.root(arr);
    let (lv, rv) = m.fork(
        |m| {
            let arr = m.get(&keep);
            go_mpl(m, arr, lo, mid)
        },
        |m| {
            let arr = m.get(&keep);
            go_mpl(m, arr, mid, hi)
        },
    );
    let ls = tuple_to_summary(m, lv);
    let rs = tuple_to_summary(m, rv);
    m.release(mark);
    summary_to_tuple(m, combine(ls, rs))
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, arr: SeqValue, lo: usize, hi: usize) -> Summary {
    if hi - lo <= GRAIN {
        rt.work((hi - lo) as u64 * 2);
        let mut data = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            data.push(rt.raw_get(arr, i) as i64);
        }
        return leaf(&data);
    }
    let mid = lo + (hi - lo) / 2;
    let l = go_seq(rt, arr, lo, mid);
    let r = go_seq(rt, arr, mid, hi);
    // Allocate the summary tuple for parity with the parallel version.
    let _ = rt.alloc(&[
        SeqValue::Int(l.total),
        SeqValue::Int(l.prefix),
        SeqValue::Int(l.suffix),
        SeqValue::Int(l.best),
    ]);
    combine(l, r)
}

impl Benchmark for Mcss {
    fn name(&self) -> &'static str {
        "mcss"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        200_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let data = util::random_small_ints(n, 11);
        let words: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        let ha = crate::mplutil::alloc_filled_raw(m, &words);
        let arr = m.get(&ha);
        let s = go_mpl(m, arr, 0, n);
        m.tuple_get(s, 3).expect_int()
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let data = util::random_small_ints(n, 11);
        let arr = rt.alloc_raw(n);
        let h = rt.root(arr);
        for (i, &x) in data.iter().enumerate() {
            rt.raw_set(arr, i, x as u64);
        }
        let arr = rt.get(h);
        go_seq(rt, arr, 0, n).best
    }

    fn run_native(&self, n: usize) -> i64 {
        let data = util::random_small_ints(n, 11);
        leaf(&data).best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn combine_is_kadane_consistent() {
        let data = util::random_small_ints(1000, 42);
        let (l, r) = data.split_at(500);
        assert_eq!(combine(leaf(l), leaf(r)), leaf(&data));
    }

    #[test]
    fn checksums_agree() {
        let b = Mcss;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0);
    }
}
