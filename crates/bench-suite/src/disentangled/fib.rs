//! `fib` — the classic fork-join microbenchmark: maximal task overhead,
//! minimal memory traffic. Purely functional, trivially disentangled.

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

/// Sequential cutoff below which recursion runs inline.
const CUTOFF: usize = 15;

/// The benchmark.
pub struct Fib;

fn fib_iter(n: usize) -> i64 {
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

/// The leaf does the *actual* exponential recursion (as the sequential
/// program would), so the parallel/sequential comparison is
/// work-for-work.
fn fib_rec(n: usize) -> i64 {
    if n < 2 {
        n as i64
    } else {
        fib_rec(n - 1) + fib_rec(n - 2)
    }
}

/// Work charged for an inlined subtree: one unit per recursive call.
fn leaf_work(n: usize) -> u64 {
    (2 * fib_iter(n) + 1) as u64
}

fn go_mpl(m: &mut Mutator<'_>, n: usize) -> i64 {
    if n < CUTOFF {
        m.work(leaf_work(n));
        return fib_rec(n);
    }
    let (a, b) = m.fork(
        move |m| Value::Int(go_mpl(m, n - 1)),
        move |m| Value::Int(go_mpl(m, n - 2)),
    );
    a.expect_int() + b.expect_int()
}

fn go_seq(rt: &mut SeqRuntime, n: usize) -> i64 {
    if n < CUTOFF {
        rt.work(leaf_work(n));
        return fib_rec(n);
    }
    let (a, b) = rt.fork(
        move |rt| SeqValue::Int(go_seq(rt, n - 1)),
        move |rt| SeqValue::Int(go_seq(rt, n - 2)),
    );
    a.expect_int() + b.expect_int()
}

impl Benchmark for Fib {
    fn name(&self) -> &'static str {
        "fib"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        28
    }

    fn small_n(&self) -> usize {
        16
    }

    fn scaled_n(&self, pct: usize) -> usize {
        // Cost is exponential: shave ~1 from n per 20% reduction.
        let shave = (100usize.saturating_sub(pct)) / 20 + usize::from(pct < 100);
        self.default_n().saturating_sub(shave).max(self.small_n())
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        go_mpl(m, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        go_seq(rt, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        fib_iter(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Fib;
        let n = b.small_n();
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let s = b.run_seq(&mut seq, n);
        assert_eq!(native, 987);
        assert_eq!(mpl, native);
        assert_eq!(s, native);
        assert_eq!(rt.stats().pins, 0, "fib is disentangled");
    }
}
