//! `nbody` — one all-pairs force step over `n` bodies in fixed-point
//! integer arithmetic. Quadratic compute over shared read-only position
//! arrays; each task sums the forces on its own range of bodies.
//! Compute-dominated and disentangled (the other end of the suite's
//! allocation-intensity spectrum from `msort`/`dedup`).

use mpl_baselines::{SeqRuntime, SeqValue};
use mpl_runtime::{Handle, Mutator, Value};

use crate::util;
use crate::Benchmark;

const GRAIN: usize = 64;

/// The benchmark.
pub struct Nbody;

/// Deterministic body positions on a grid-with-jitter (fixed-point).
fn positions(n: usize) -> (Vec<i64>, Vec<i64>) {
    let jitter = util::random_small_ints(2 * n, 53);
    let side = (n as f64).sqrt().ceil() as i64;
    let mut px = Vec::with_capacity(n);
    let mut py = Vec::with_capacity(n);
    for i in 0..n as i64 {
        px.push((i % side) * 1000 + jitter[2 * i as usize]);
        py.push((i / side) * 1000 + jitter[2 * i as usize + 1]);
    }
    (px, py)
}

/// Integer force of body `j` on body `i` (quantized inverse-square).
fn force(px: &[i64], py: &[i64], i: usize, j: usize) -> (i64, i64) {
    let dx = px[j] - px[i];
    let dy = py[j] - py[i];
    let d2 = dx * dx + dy * dy + 1;
    // Scale up before dividing so small distances still contribute.
    (dx * 1_000_000 / d2, dy * 1_000_000 / d2)
}

fn accel_checksum(px: &[i64], py: &[i64], lo: usize, hi: usize) -> i64 {
    let n = px.len();
    let mut sum = 0i64;
    for i in lo..hi {
        let (mut ax, mut ay) = (0i64, 0i64);
        for j in 0..n {
            if j != i {
                let (fx, fy) = force(px, py, i, j);
                ax += fx;
                ay += fy;
            }
        }
        sum = sum.wrapping_add(ax.abs() + ay.abs());
    }
    sum
}

// ---- mpl -----------------------------------------------------------------

fn go_mpl(m: &mut Mutator<'_>, hx: &Handle, hy: &Handle, n: usize, lo: usize, hi: usize) -> i64 {
    if hi - lo <= GRAIN {
        m.work(((hi - lo) * n) as u64);
        let px = m.get(hx);
        let py = m.get(hy);
        let mut sum = 0i64;
        for i in lo..hi {
            let (xi, yi) = (m.raw_get(px, i) as i64, m.raw_get(py, i) as i64);
            let (mut ax, mut ay) = (0i64, 0i64);
            for j in 0..n {
                if j != i {
                    let dx = m.raw_get(px, j) as i64 - xi;
                    let dy = m.raw_get(py, j) as i64 - yi;
                    let d2 = dx * dx + dy * dy + 1;
                    ax += dx * 1_000_000 / d2;
                    ay += dy * 1_000_000 / d2;
                }
            }
            sum = sum.wrapping_add(ax.abs() + ay.abs());
        }
        return sum;
    }
    let mid = lo + (hi - lo) / 2;
    let (l, r) = m.fork(
        |m| Value::Int(go_mpl(m, hx, hy, n, lo, mid)),
        |m| Value::Int(go_mpl(m, hx, hy, n, mid, hi)),
    );
    l.expect_int().wrapping_add(r.expect_int())
}

// ---- seq -----------------------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, px: SeqValue, py: SeqValue, n: usize) -> i64 {
    let mut sum = 0i64;
    for i in 0..n {
        rt.work(n as u64);
        let (xi, yi) = (rt.raw_get(px, i) as i64, rt.raw_get(py, i) as i64);
        let (mut ax, mut ay) = (0i64, 0i64);
        for j in 0..n {
            if j != i {
                let dx = rt.raw_get(px, j) as i64 - xi;
                let dy = rt.raw_get(py, j) as i64 - yi;
                let d2 = dx * dx + dy * dy + 1;
                ax += dx * 1_000_000 / d2;
                ay += dy * 1_000_000 / d2;
            }
        }
        sum = sum.wrapping_add(ax.abs() + ay.abs());
    }
    sum
}

impl Benchmark for Nbody {
    fn name(&self) -> &'static str {
        "nbody"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        1500
    }

    /// Quadratic cost: scale by the square root of the percentage.
    fn scaled_n(&self, pct: usize) -> usize {
        let scaled = (self.default_n() as f64 * (pct as f64 / 100.0).sqrt()) as usize;
        scaled.max(self.small_n().min(self.default_n()))
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let (px, py) = positions(n);
        let xw: Vec<u64> = px.iter().map(|&v| v as u64).collect();
        let yw: Vec<u64> = py.iter().map(|&v| v as u64).collect();
        let hx = crate::mplutil::alloc_filled_raw(m, &xw);
        let hy = crate::mplutil::alloc_filled_raw(m, &yw);
        go_mpl(m, &hx, &hy, n, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let (pxv, pyv) = positions(n);
        let px = rt.alloc_raw(n);
        let hx = rt.root(px);
        let py = rt.alloc_raw(n);
        let hy = rt.root(py);
        for i in 0..n {
            rt.raw_set(rt.get(hx), i, pxv[i] as u64);
            rt.raw_set(rt.get(hy), i, pyv[i] as u64);
        }
        go_seq(rt, rt.get(hx), rt.get(hy), n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let (px, py) = positions(n);
        accel_checksum(&px, &py, 0, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn forces_are_antisymmetric() {
        let (px, py) = positions(16);
        for i in 0..16 {
            for j in 0..16 {
                if i != j {
                    let (fx, fy) = force(&px, &py, i, j);
                    let (gx, gy) = force(&px, &py, j, i);
                    // Integer division truncates toward zero, so the
                    // magnitudes may differ by at most one quantum.
                    assert!((fx + gx).abs() <= 1, "x antisymmetry");
                    assert!((fy + gy).abs() <= 1, "y antisymmetry");
                }
            }
        }
    }

    #[test]
    fn checksums_agree() {
        let b = Nbody;
        let n = b.small_n();
        let native = b.run_native(n);
        assert!(native > 0);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(rt.stats().pins, 0, "disentangled");
    }
}
