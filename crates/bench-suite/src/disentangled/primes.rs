//! `primes` — count primes below `n` with a segmented sieve: base primes
//! up to `√n` are computed sequentially, then segments are sieved in
//! parallel, each into a task-local bitset. Part of the comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

const SEGMENT: usize = 1 << 13;

/// The benchmark.
pub struct Primes;

fn base_primes(limit: usize) -> Vec<usize> {
    let mut sieve = vec![true; limit + 1];
    let mut out = Vec::new();
    for p in 2..=limit {
        if sieve[p] {
            out.push(p);
            let mut q = p * p;
            while q <= limit {
                sieve[q] = false;
                q += p;
            }
        }
    }
    out
}

/// Counts primes in `[lo, hi)` given the base primes, using a plain
/// bitset; shared by all implementations (the heap versions replicate it
/// with heap-resident bitsets).
fn sieve_segment(base: &[usize], lo: usize, hi: usize) -> i64 {
    let len = hi - lo;
    let mut composite = vec![false; len];
    for &p in base {
        if p * p >= hi {
            break;
        }
        let start = (lo.div_ceil(p) * p).max(p * p);
        let mut q = start;
        while q < hi {
            composite[q - lo] = true;
            q += p;
        }
    }
    (lo..hi).filter(|&i| i >= 2 && !composite[i - lo]).count() as i64
}

// ---- mpl -----------------------------------------------------------------

fn segment_mpl(m: &mut Mutator<'_>, base: Value, lo: usize, hi: usize) -> i64 {
    // Heap-resident bitset, one bit per candidate.
    let len = hi - lo;
    let mark = m.mark();
    let hb = m.root(base);
    let bits = m.alloc_raw(len.div_ceil(64));
    let base = m.get(&hb);
    let nbase = m.len(base);
    for bi in 0..nbase {
        let p = m.raw_get(base, bi) as usize;
        if p * p >= hi {
            break;
        }
        let start = (lo.div_ceil(p) * p).max(p * p);
        let mut q = start;
        while q < hi {
            let idx = q - lo;
            let w = m.raw_get(bits, idx / 64);
            m.raw_set(bits, idx / 64, w | (1 << (idx % 64)));
            q += p;
        }
    }
    let mut count = 0;
    for i in lo..hi {
        if i < 2 {
            continue;
        }
        let idx = i - lo;
        if m.raw_get(bits, idx / 64) & (1 << (idx % 64)) == 0 {
            count += 1;
        }
    }
    m.release(mark);
    m.work(len as u64);
    count
}

fn go_mpl(m: &mut Mutator<'_>, base: Value, lo: usize, hi: usize) -> i64 {
    if hi - lo <= SEGMENT {
        return segment_mpl(m, base, lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let mark = m.mark();
    let hb = m.root(base);
    let (a, b) = m.fork(
        |m| {
            let base = m.get(&hb);
            Value::Int(go_mpl(m, base, lo, mid))
        },
        |m| {
            let base = m.get(&hb);
            Value::Int(go_mpl(m, base, mid, hi))
        },
    );
    m.release(mark);
    a.expect_int() + b.expect_int()
}

// ---- seq / global / native ---------------------------------------------------

fn go_seq(rt: &mut SeqRuntime, base: &[usize], lo: usize, hi: usize) -> i64 {
    if hi - lo <= SEGMENT {
        // Same heap behaviour: allocate the segment bitset in the heap.
        let len = hi - lo;
        let bits = rt.alloc_raw(len.div_ceil(64));
        for &p in base {
            if p * p >= hi {
                break;
            }
            let start = (lo.div_ceil(p) * p).max(p * p);
            let mut q = start;
            while q < hi {
                let idx = q - lo;
                let w = rt.raw_get(bits, idx / 64);
                rt.raw_set(bits, idx / 64, w | (1 << (idx % 64)));
                q += p;
            }
        }
        let mut count = 0;
        for i in lo..hi {
            if i < 2 {
                continue;
            }
            let idx = i - lo;
            if rt.raw_get(bits, idx / 64) & (1 << (idx % 64)) == 0 {
                count += 1;
            }
        }
        rt.work(len as u64);
        return count;
    }
    let mid = lo + (hi - lo) / 2;
    go_seq(rt, base, lo, mid) + go_seq(rt, base, mid, hi)
}

fn go_global(m: &mut GlobalMutator, base: std::sync::Arc<Vec<usize>>, lo: usize, hi: usize) -> i64 {
    if hi - lo <= SEGMENT {
        let len = hi - lo;
        let bits = m.alloc_raw(len.div_ceil(64));
        for &p in base.iter() {
            if p * p >= hi {
                break;
            }
            let start = (lo.div_ceil(p) * p).max(p * p);
            let mut q = start;
            while q < hi {
                let idx = q - lo;
                let w = m.raw_get(bits, idx / 64);
                m.raw_set(bits, idx / 64, w | (1 << (idx % 64)));
                q += p;
            }
        }
        let mut count = 0;
        for i in lo..hi {
            if i < 2 {
                continue;
            }
            let idx = i - lo;
            if m.raw_get(bits, idx / 64) & (1 << (idx % 64)) == 0 {
                count += 1;
            }
        }
        return count;
    }
    let mid = lo + (hi - lo) / 2;
    let (b1, b2) = (std::sync::Arc::clone(&base), base);
    let (a, b) = m.fork(
        move |m| GValue::Int(go_global(m, b1, lo, mid)),
        move |m| GValue::Int(go_global(m, b2, mid, hi)),
    );
    a.expect_int() + b.expect_int()
}

impl Benchmark for Primes {
    fn name(&self) -> &'static str {
        "primes"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        300_000
    }

    fn small_n(&self) -> usize {
        30_000
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        let base = base_primes((n as f64).sqrt() as usize + 1);
        let arr = m.alloc_raw(base.len());
        for (i, &p) in base.iter().enumerate() {
            m.raw_set(arr, i, p as u64);
        }
        go_mpl(m, arr, 0, n)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        let base = base_primes((n as f64).sqrt() as usize + 1);
        go_seq(rt, &base, 0, n)
    }

    fn run_native(&self, n: usize) -> i64 {
        let base = base_primes((n as f64).sqrt() as usize + 1);
        let mut total = 0;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + SEGMENT).min(n);
            total += sieve_segment(&base, lo, hi);
            lo = hi;
        }
        total
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        let base = std::sync::Arc::new(base_primes((n as f64).sqrt() as usize + 1));
        Some(go_global(m, base, 0, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn known_prime_counts() {
        let b = Primes;
        assert_eq!(b.run_native(100), 25);
        assert_eq!(b.run_native(10_000), 1229);
    }

    #[test]
    fn checksums_agree() {
        let b = Primes;
        let n = 40_000; // several segments
        let native = b.run_native(n);
        let rt = Runtime::new(RuntimeConfig::managed());
        let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
        let mut seq = SeqRuntime::default();
        let grt = GlobalRuntime::new(1 << 22, 2);
        let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
        assert_eq!(mpl, native);
        assert_eq!(b.run_seq(&mut seq, n), native);
        assert_eq!(glob.expect_int(), native);
        assert_eq!(rt.stats().pins, 0);
    }
}
