//! `nqueens` — count all placements of `n` queens. Search-tree
//! parallelism with list-allocated board paths (GC churn without any
//! shared mutation). Part of the cross-runtime comparison set.

use mpl_baselines::{GValue, GlobalMutator, SeqRuntime, SeqValue};
use mpl_runtime::{Mutator, Value};

use crate::Benchmark;

/// Rows explored in parallel before switching to sequential search.
const PAR_ROWS: usize = 3;

/// The benchmark.
pub struct Nqueens;

#[derive(Clone, Copy)]
struct State {
    n: usize,
    row: usize,
    cols: u32,
    diag1: u32,
    diag2: u32,
}

impl State {
    fn initial(n: usize) -> State {
        State {
            n,
            row: 0,
            cols: 0,
            diag1: 0,
            diag2: 0,
        }
    }

    fn candidates(&self) -> Vec<u32> {
        let full = (1u32 << self.n) - 1;
        let mut free = full & !(self.cols | self.diag1 | self.diag2);
        let mut out = Vec::new();
        while free != 0 {
            let bit = free & free.wrapping_neg();
            out.push(bit);
            free ^= bit;
        }
        out
    }

    fn place(&self, bit: u32) -> State {
        State {
            n: self.n,
            row: self.row + 1,
            cols: self.cols | bit,
            diag1: (self.diag1 | bit) << 1,
            diag2: (self.diag2 | bit) >> 1,
        }
    }
}

// ---- mpl ----------------------------------------------------------------

fn solve_mpl(m: &mut Mutator<'_>, st: State, board: Value) -> i64 {
    if st.row == st.n {
        return 1;
    }
    let cands = st.candidates();
    if st.row < PAR_ROWS && cands.len() > 1 {
        split_mpl(m, st, board, &cands)
    } else {
        let mut total = 0;
        let mark = m.mark();
        let keep = m.root(board);
        for bit in cands {
            let b = m.get(&keep);
            let board2 = m.alloc_tuple(&[Value::Int(bit as i64), b]);
            total += solve_mpl(m, st.place(bit), board2);
        }
        m.release(mark);
        m.work(1);
        total
    }
}

fn split_mpl(m: &mut Mutator<'_>, st: State, board: Value, cands: &[u32]) -> i64 {
    if cands.len() == 1 {
        let mark = m.mark();
        let keep = m.root(board);
        let b = m.get(&keep);
        let board2 = m.alloc_tuple(&[Value::Int(cands[0] as i64), b]);
        let total = solve_mpl(m, st.place(cands[0]), board2);
        m.release(mark);
        return total;
    }
    let (lo, hi) = cands.split_at(cands.len() / 2);
    let mark = m.mark();
    let keep = m.root(board);
    let (lv, hv) = m.fork(
        |m| {
            let b = m.get(&keep);
            Value::Int(split_mpl(m, st, b, lo))
        },
        |m| {
            let b = m.get(&keep);
            Value::Int(split_mpl(m, st, b, hi))
        },
    );
    m.release(mark);
    lv.expect_int() + hv.expect_int()
}

// ---- sequential baseline --------------------------------------------------

fn solve_seq(rt: &mut SeqRuntime, st: State, board: SeqValue) -> i64 {
    if st.row == st.n {
        return 1;
    }
    let mut total = 0;
    let mark = rt.mark();
    let keep = rt.root(board);
    for bit in st.candidates() {
        let b = rt.get(keep);
        let b = if matches!(board, SeqValue::Obj(_)) {
            b
        } else {
            board
        };
        let board2 = rt.alloc(&[SeqValue::Int(bit as i64), b]);
        total += solve_seq(rt, st.place(bit), board2);
    }
    rt.release(mark);
    rt.work(1);
    total
}

// ---- global baseline --------------------------------------------------------

fn solve_global(m: &mut GlobalMutator, st: State, board: GValue) -> i64 {
    if st.row == st.n {
        return 1;
    }
    let cands = st.candidates();
    if st.row < PAR_ROWS && cands.len() > 1 {
        let keep = m.root(board);
        let (lo, hi) = cands.split_at(cands.len() / 2);
        let half = |m: &mut GlobalMutator, half: &[u32], keep: &mpl_baselines::GHandle| {
            let mut total = 0;
            for &bit in half {
                let b = m.get(keep);
                let board2 = m.alloc(&[GValue::Int(bit as i64), b]);
                total += solve_global(m, st.place(bit), board2);
            }
            total
        };
        let kl = keep.clone();
        let kr = keep;
        let (a, b) = m.fork(
            move |m| GValue::Int(half(m, lo, &kl)),
            move |m| GValue::Int(half(m, hi, &kr)),
        );
        a.expect_int() + b.expect_int()
    } else {
        let mut total = 0;
        let mark = m.mark();
        let keep = m.root(board);
        for bit in cands {
            let b = m.get(&keep);
            let board2 = m.alloc(&[GValue::Int(bit as i64), b]);
            total += solve_global(m, st.place(bit), board2);
        }
        m.release(mark);
        total
    }
}

// ---- native ------------------------------------------------------------------

fn solve_native(st: State) -> i64 {
    if st.row == st.n {
        return 1;
    }
    st.candidates()
        .into_iter()
        .map(|bit| solve_native(st.place(bit)))
        .sum()
}

impl Benchmark for Nqueens {
    fn name(&self) -> &'static str {
        "nqueens"
    }

    fn entangled(&self) -> bool {
        false
    }

    fn default_n(&self) -> usize {
        9
    }

    fn small_n(&self) -> usize {
        6
    }

    fn scaled_n(&self, pct: usize) -> usize {
        if pct >= 100 {
            self.default_n()
        } else if pct >= 40 {
            self.default_n() - 1
        } else {
            self.default_n() - 2
        }
    }

    fn run_mpl(&self, m: &mut Mutator<'_>, n: usize) -> i64 {
        solve_mpl(m, State::initial(n), Value::Unit)
    }

    fn run_seq(&self, rt: &mut SeqRuntime, n: usize) -> i64 {
        solve_seq(rt, State::initial(n), SeqValue::Unit)
    }

    fn run_native(&self, n: usize) -> i64 {
        solve_native(State::initial(n))
    }

    fn run_global(&self, m: &mut GlobalMutator, n: usize) -> Option<i64> {
        Some(solve_global(m, State::initial(n), GValue::Unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_baselines::GlobalRuntime;
    use mpl_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn checksums_agree() {
        let b = Nqueens;
        for n in [6usize, 8] {
            let native = b.run_native(n);
            let rt = Runtime::new(RuntimeConfig::managed());
            let mpl = rt.run(|m| Value::Int(b.run_mpl(m, n))).expect_int();
            let mut seq = SeqRuntime::default();
            let grt = GlobalRuntime::new(1 << 20, 2);
            let glob = grt.run(|m| GValue::Int(b.run_global(m, n).unwrap()));
            assert_eq!(mpl, native, "n={n}");
            assert_eq!(b.run_seq(&mut seq, n), native, "n={n}");
            assert_eq!(glob.expect_int(), native, "n={n}");
            assert_eq!(rt.stats().pins, 0);
        }
        assert_eq!(b.run_native(8), 92);
    }
}
