//! Collection-trigger policies.
//!
//! The paper's design keeps the two collectors on independent triggers:
//! the local collector (LGC) is driven by a task's own allocation volume —
//! it never synchronizes with other tasks — while the concurrent collector
//! (CGC) is driven by the footprint of pinned (entangled) objects, so a
//! fully disentangled program never runs it at all.
//!
//! Diagnostics are deliberately *not* part of the policy: phase-boundary
//! auditing and event tracing (the [`crate::audit`] layer) are enabled
//! per-process via `MPL_DEBUG_LGC_VALIDATE` or `RuntimeConfig::with_audit`
//! and run at the end of whatever collections these triggers schedule.

/// Tunable collection thresholds (ablation experiment E9 sweeps these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcPolicy {
    /// Run a local collection once a task has allocated this many logical
    /// bytes since its previous local collection.
    pub lgc_trigger_bytes: usize,
    /// Run a concurrent collection once the global pinned footprint
    /// exceeds this many bytes. `usize::MAX` disables the CGC.
    pub cgc_trigger_pinned_bytes: usize,
    /// Free evacuated blocks immediately (safe under the sequential
    /// executor) instead of retiring them to the graveyard for
    /// quiescence-deferred reclamation (required under real threads).
    pub immediate_block_free: bool,
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy {
            lgc_trigger_bytes: 256 * 1024,
            cgc_trigger_pinned_bytes: 1024 * 1024,
            immediate_block_free: true,
        }
    }
}

impl GcPolicy {
    /// A policy that never collects — used by overhead experiments to
    /// isolate barrier costs, and by tests that inspect raw heap state.
    pub fn disabled() -> GcPolicy {
        GcPolicy {
            lgc_trigger_bytes: usize::MAX,
            cgc_trigger_pinned_bytes: usize::MAX,
            immediate_block_free: true,
        }
    }

    /// A policy suitable for the real-thread executor: deferred block
    /// reclamation.
    pub fn threaded() -> GcPolicy {
        GcPolicy {
            immediate_block_free: false,
            ..GcPolicy::default()
        }
    }

    /// True if a task that allocated `bytes` since its last local
    /// collection should collect now.
    pub fn should_lgc(&self, bytes: usize) -> bool {
        bytes >= self.lgc_trigger_bytes
    }

    /// True if the global pinned footprint warrants a concurrent
    /// collection.
    pub fn should_cgc(&self, pinned_bytes: usize) -> bool {
        pinned_bytes >= self.cgc_trigger_pinned_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds() {
        let p = GcPolicy::default();
        assert!(!p.should_lgc(0));
        assert!(p.should_lgc(p.lgc_trigger_bytes));
        assert!(!p.should_cgc(p.cgc_trigger_pinned_bytes - 1));
        assert!(p.should_cgc(p.cgc_trigger_pinned_bytes));
    }

    #[test]
    fn disabled_never_triggers() {
        let p = GcPolicy::disabled();
        assert!(!p.should_lgc(usize::MAX - 1));
        assert!(!p.should_cgc(usize::MAX - 1));
    }

    #[test]
    fn threaded_defers_freeing() {
        assert!(!GcPolicy::threaded().immediate_block_free);
        assert!(GcPolicy::default().immediate_block_free);
    }
}
