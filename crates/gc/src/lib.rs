//! # mpl-gc — the two collectors of the entanglement-managed runtime
//!
//! Reproduces the memory-reclamation half of *"Efficient Parallel
//! Functional Programming with Effects"* (PLDI 2023):
//!
//! * [`lgc`] — the **local collector**: a moving (copying) collection of a
//!   single task's heap, run at the owner's safepoints with no
//!   synchronization. Pinned (entangled) objects and their reachable
//!   closure are shielded in place, so concurrent readers are never
//!   exposed to a moving object.
//! * [`cgc`] — the **concurrent collector**: a snapshot-at-the-beginning
//!   mark–sweep that reclaims *only* entangled-space objects. Disentangled
//!   programs never trigger it.
//! * [`policy`] — the triggers tying both to allocation volume and pinned
//!   footprint.
//! * [`graveyard`] — quiescence-deferred block reclamation for the
//!   real-thread executor.
//!
//! # Example
//!
//! The canonical life cycle of an entangled object — pinned by a sibling,
//! shielded in place by the owner's local collection, reclaimed by the
//! concurrent collector once it dies:
//!
//! ```
//! use mpl_gc::{collect_entangled, collect_local, CgcState, Graveyard};
//! use mpl_heap::{ObjKind, ObjRef, Store, StoreConfig, Value};
//!
//! let s = Store::new(StoreConfig::default());
//! let root = s.new_root_heap();
//! let (left, _right) = s.fork_heaps(root);
//!
//! // A task on the right path acquires (and pins) the left task's cell.
//! let cell = s.alloc_values(left, ObjKind::Ref, &[Value::Int(7)]);
//! s.pin(cell, 0);
//!
//! // The owner's local collection cannot move a pinned object: it is
//! // shielded in place, into the heap's non-moving entangled space.
//! let graveyard = Graveyard::new();
//! let mut roots: [ObjRef; 0] = [];
//! collect_local(&s, left, &mut roots, &graveyard, true);
//! assert!(s.handle(cell).header().in_entangled_space());
//!
//! // Once nothing references it, the concurrent mark-sweep reclaims it.
//! // Roots are supplied as a closure returning per-task packets, read
//! // *after* the snapshot handshake.
//! let out = collect_entangled(&s, &CgcState::new(), Vec::new);
//! assert_eq!(out.swept_objects, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod cgc;
pub mod graveyard;
pub mod lgc;
pub mod policy;
pub mod stall;
pub mod validate;

pub use audit::{audit_phase, check_dead_reachability, check_shield_closure, AuditCounters};
pub use cgc::{cgc_begin, cgc_step, collect_entangled, CgcOutcome, CgcState, SatbShard};
pub use graveyard::Graveyard;
pub use lgc::{collect_local, LgcOutcome};
pub use policy::GcPolicy;
pub use validate::{assert_heap_sound, dangling_fields};
