//! GC phase-boundary audits and the entanglement-event ring buffer.
//!
//! Two halves, both off by default and together costing one predicted
//! branch per event site when disabled:
//!
//! 1. **Phase audits** — [`audit_phase`] re-validates heap invariants at
//!    the end of each collector phase (LGC shield/evacuate/reclaim, CGC
//!    sweep, graveyard reap): the shield closure must be intact, no
//!    *reachable* object may carry a dead mark
//!    ([`check_dead_reachability`] — the check that catches a reclaim
//!    mis-mark at the marking site instead of cycles later at a trace),
//!    and no live field may dangle
//!    ([`validate::dangling_fields`](crate::validate::dangling_fields)).
//! 2. **Event tracing** — a lock-free, per-worker ring buffer of the
//!    structured events defined in [`mpl_heap::events`]. On any audit
//!    failure (or the collector's own corruption assertions) the rings
//!    are dumped in global sequence order, so a failing run prints the
//!    exact pin/unpin/dead-mark interleaving that led to the bug.
//!
//! Enablement is either the `MPL_DEBUG_LGC_VALIDATE` environment
//! variable (read once) or the refcounted programmatic switch
//! ([`enable`]/[`disable`]) behind `RuntimeConfig::with_audit` —
//! refcounted because the parallel test harness composes runtimes.
//! Counters ([`counters`]) are process-global and overlaid onto
//! `StatsSnapshot` by the runtime, mirroring the scheduler counters.

use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use mpl_heap::events::{self, Event, EventKind};
use mpl_heap::{ObjRef, Store};

/// Number of event rings. Worker threads registered via
/// [`register_worker`] map onto ring `index % RINGS`; unregistered
/// threads are assigned round-robin. Sharing a ring is harmless (events
/// carry global sequence numbers), it only shortens per-thread history.
const RINGS: usize = 32;
/// Events retained per ring; older events are overwritten (counted as
/// overflows).
const RING_CAP: usize = 16384;

struct Slot {
    /// Global sequence number, 0 = empty. Written last (release) so a
    /// racing dump sees either the old event or the complete new one.
    seq: AtomicU64,
    /// `kind << 32 | block`.
    a: AtomicU64,
    /// `aux << 32 | word`.
    b: AtomicU64,
}

struct Ring {
    cursor: AtomicUsize,
    slots: [Slot; RING_CAP],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
};
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_RING: Ring = Ring {
    cursor: AtomicUsize::new(0),
    slots: [EMPTY_SLOT; RING_CAP],
};
static RINGBUF: [Ring; RINGS] = [EMPTY_RING; RINGS];

static SEQ: AtomicU64 = AtomicU64::new(0);
static OVERFLOWS: AtomicU64 = AtomicU64::new(0);
static AUDITS: AtomicU64 = AtomicU64::new(0);
static OBJECTS_CHECKED: AtomicU64 = AtomicU64::new(0);
static FAILURES: AtomicU64 = AtomicU64::new(0);

/// Programmatic enablement refcount (see [`enable`]).
static FORCED: AtomicUsize = AtomicUsize::new(0);
/// Round-robin ring assignment for threads that never registered.
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static RING_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn ring_id() -> usize {
    RING_ID.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = NEXT_RING.fetch_add(1, Ordering::Relaxed) % RINGS;
            c.set(id);
        }
        id
    })
}

/// Pins the calling thread's events to ring `index % RINGS`. The
/// scheduler calls this from its worker-start hook so each worker's
/// history lives in its own ring.
pub fn register_worker(index: usize) {
    RING_ID.with(|c| c.set(index % RINGS));
}

/// Records a task-boundary marker in the calling worker's event ring.
/// The scheduler calls this from its job-finish hook; the markers let a
/// ring dump show which task interleavings surrounded a failure. A
/// no-op (one relaxed load) unless tracing is active.
pub fn note_job_boundary(index: usize) {
    events::emit(EventKind::TaskBoundary, 0, 0, index as u32);
}

/// The event sink installed into [`mpl_heap::events`].
fn record(ev: Event) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let ring = &RINGBUF[ring_id()];
    let cur = ring.cursor.fetch_add(1, Ordering::Relaxed);
    if cur >= RING_CAP {
        OVERFLOWS.fetch_add(1, Ordering::Relaxed);
    }
    let slot = &ring.slots[cur % RING_CAP];
    slot.seq.store(0, Ordering::Release);
    slot.a.store(
        (u64::from(ev.kind as u8) << 32) | u64::from(ev.block),
        Ordering::Relaxed,
    );
    slot.b.store(
        (u64::from(ev.aux) << 32) | u64::from(ev.word),
        Ordering::Relaxed,
    );
    slot.seq.store(seq, Ordering::Release);
}

fn install_tracing() {
    events::install_sink(record);
    events::set_tracing(true);
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        let on = std::env::var_os("MPL_DEBUG_LGC_VALIDATE").is_some();
        if on {
            install_tracing();
        }
        on
    })
}

/// Whether audits and event tracing are currently active.
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) > 0 || env_enabled()
}

/// Programmatically enables auditing (refcounted; every [`enable`] needs
/// a matching [`disable`]). Used by `RuntimeConfig::with_audit`.
pub fn enable() {
    install_tracing();
    FORCED.fetch_add(1, Ordering::AcqRel);
}

/// Releases one programmatic enablement. When the count reaches zero and
/// the environment flag is unset, event emission stops.
pub fn disable() {
    if FORCED.fetch_sub(1, Ordering::AcqRel) == 1 && !env_enabled() {
        events::set_tracing(false);
    }
}

/// Process-global audit counters (overlaid onto `StatsSnapshot`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditCounters {
    /// Phase-boundary audits executed.
    pub audits_run: u64,
    /// Objects visited by reachability cross-checks.
    pub objects_checked: u64,
    /// Events recorded into the rings.
    pub events_recorded: u64,
    /// Ring-buffer overwrites (history lost to wraparound).
    pub ring_overflows: u64,
    /// Audits that found at least one issue.
    pub failures: u64,
}

/// Snapshot of the process-global audit counters.
pub fn counters() -> AuditCounters {
    AuditCounters {
        audits_run: AUDITS.load(Ordering::Relaxed),
        objects_checked: OBJECTS_CHECKED.load(Ordering::Relaxed),
        events_recorded: SEQ.load(Ordering::Relaxed),
        ring_overflows: OVERFLOWS.load(Ordering::Relaxed),
        failures: FAILURES.load(Ordering::Relaxed),
    }
}

/// Dumps every recorded event to stderr in global sequence order and
/// returns how many were printed. Safe to call at any time (racing
/// writers may tear at most the slots being written right now); the
/// collectors call it before dying on a corruption assertion.
pub fn dump_events() -> usize {
    let mut all: Vec<(u64, usize, u64, u64)> = Vec::new();
    for (ri, ring) in RINGBUF.iter().enumerate() {
        for slot in &ring.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            all.push((
                seq,
                ri,
                slot.a.load(Ordering::Relaxed),
                slot.b.load(Ordering::Relaxed),
            ));
        }
    }
    if all.is_empty() {
        return 0;
    }
    all.sort_unstable();
    eprintln!(
        "=== mpl-gc event trace ({} events, {} lost to ring wraparound) ===",
        all.len(),
        OVERFLOWS.load(Ordering::Relaxed)
    );
    for (seq, ring, a, b) in &all {
        let kind = EventKind::from_bits((a >> 32) as u8);
        let block = *a as u32;
        let word = *b as u32;
        let aux = (b >> 32) as u32;
        let name = kind.map_or("?", EventKind::name);
        eprintln!("[seq {seq:08} ring {ring:02}] {name:<14} b{block}w{word} aux={aux}");
    }
    eprintln!("=== end event trace ===");
    all.len()
}

/// Checks every member of a local collection's shield closure: members
/// must be alive, tagged into the entangled space, and unmoved (the
/// whole point of the shield is that concurrent readers never see them
/// move). Returns human-readable issues; empty means the closure holds.
pub fn check_shield_closure(store: &Store, closure: &HashSet<ObjRef>) -> Vec<String> {
    let mut issues = Vec::new();
    let mut checked = 0u64;
    for &r in closure {
        checked += 1;
        let Some(block) = store.blocks().try_get(r.block()) else {
            issues.push(format!("shield: member {r} sits in a freed block"));
            continue;
        };
        let Some(obj) = block.try_get(r.word()) else {
            issues.push(format!("shield: member {r} names an empty word"));
            continue;
        };
        let h = obj.header();
        if h.is_dead() {
            issues.push(format!("shield: member {r} is dead-marked"));
        } else if h.is_forwarded() {
            issues.push(format!("shield: member {r} was moved"));
        } else if !h.in_entangled_space() {
            issues.push(format!("shield: member {r} lost its entangled-space tag"));
        }
    }
    OBJECTS_CHECKED.fetch_add(checked, Ordering::Relaxed);
    issues
}

/// The reachability-vs-dead-mark cross-check: traverses the object graph
/// from every pinned object in the store, **crossing heap boundaries**,
/// and reports any dead-marked object still reachable through current
/// fields. This is exactly the invariant the local collector's reclaim
/// phase must preserve, checked at the marking site — a mis-mark is
/// reported by the audit at the end of that collection, not two cycles
/// later when a trace happens to walk into the corpse.
///
/// Runs concurrently with mutators: an edge to a dead object is
/// re-confirmed against the parent's *current* field before being
/// reported, so a mutation racing the scan cannot produce a false
/// positive.
pub fn check_dead_reachability(store: &Store) -> Vec<String> {
    let mut issues = Vec::new();
    let mut visited: HashSet<ObjRef> = HashSet::new();
    // First-discovered parent edge of each visited node, for path
    // reconstruction in failure reports.
    let mut came_from: std::collections::HashMap<ObjRef, (ObjRef, usize)> =
        std::collections::HashMap::new();
    // (parent, field index, target) — parent None for pinned roots.
    let mut stack: Vec<(Option<(ObjRef, usize)>, ObjRef)> = Vec::new();
    for block in store.blocks().live_blocks() {
        if block.pinned_count() == 0 {
            continue;
        }
        for (off, obj) in block.objects() {
            let h = obj.header();
            if h.is_pinned() && !h.is_dead() && !h.is_forwarded() {
                stack.push((None, ObjRef::new(block.id(), off)));
            }
        }
    }
    while let Some((from, r)) = stack.pop() {
        if !visited.insert(r) {
            continue;
        }
        if let Some(edge) = from {
            came_from.insert(r, edge);
        }
        let Some(block) = store.blocks().try_get(r.block()) else {
            continue; // freed concurrently; dangling_fields owns that check
        };
        let Some(obj) = block.try_get(r.word()) else {
            continue;
        };
        let header = obj.header();
        if header.is_dead() {
            // Re-confirm against the parent's current field: a mutator may
            // have overwritten the edge after we read it, making the old
            // target legitimately collectable.
            if let Some((src, field)) = from {
                if !edge_still_present(store, src, field, r) {
                    continue;
                }
            }
            issues.push(format!(
                "dead-reachable: {r} is dead-marked but reachable from a pinned object \
                 (kind {:?}, entspace {}, block owner {}, via {})\n  path: {}",
                header.kind(),
                header.in_entangled_space(),
                block.owner(),
                match from {
                    Some((src, field)) => format!("{src} field {field}"),
                    None => "pin root".to_string(),
                },
                describe_path(store, &came_from, from, r),
            ));
            continue; // don't traverse a corpse
        }
        if header.is_forwarded() {
            if let Some(next) = obj.forward_ref() {
                stack.push((from, next));
            }
            continue;
        }
        OBJECTS_CHECKED.fetch_add(1, Ordering::Relaxed);
        if !header.kind().is_traced() {
            continue;
        }
        for (i, w) in obj.field_words().enumerate() {
            if let Some(t) = w.pointer() {
                if !visited.contains(&t) {
                    stack.push((Some((r, i)), t));
                }
            }
        }
    }
    issues
}

/// Renders the discovery path from a pinned root to `last` for a failure
/// report: each hop with its block owner and header flags, root first.
fn describe_path(
    store: &Store,
    came_from: &std::collections::HashMap<ObjRef, (ObjRef, usize)>,
    last_edge: Option<(ObjRef, usize)>,
    last: ObjRef,
) -> String {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = last;
    let mut edge = last_edge;
    for _ in 0..64 {
        let flags = match store
            .blocks()
            .try_get(cur.block())
            .and_then(|b| b.try_get(cur.word()).map(|o| (b.owner(), o.header())))
        {
            Some((owner, h)) => format!(
                "owner {owner}{}{}{}{}",
                if h.is_pinned() {
                    format!(" pinned@{}", h.pin_level())
                } else {
                    String::new()
                },
                if h.in_entangled_space() { " ent" } else { "" },
                if h.is_dead() { " DEAD" } else { "" },
                if h.is_forwarded() { " fwd" } else { "" },
            ),
            None => "gone".to_string(),
        };
        match edge {
            Some((src, field)) => {
                hops.push(format!("{cur} ({flags}) <- {src}.{field}"));
                cur = src;
                edge = came_from.get(&src).copied();
            }
            None => {
                hops.push(format!("{cur} ({flags}) [root]"));
                break;
            }
        }
    }
    hops.reverse();
    hops.join("\n        ")
}

/// `true` if `src.field` still points (possibly through forwarding) at
/// `target`.
fn edge_still_present(store: &Store, src: ObjRef, field: usize, target: ObjRef) -> bool {
    let Some(block) = store.blocks().try_get(src.block()) else {
        return false;
    };
    let Some(obj) = block.try_get(src.word()) else {
        return false;
    };
    let Some(w) = obj.field_words().nth(field) else {
        return false;
    };
    let Some(mut t) = w.pointer() else {
        return false;
    };
    for _ in 0..64 {
        if t == target {
            return true;
        }
        match store
            .blocks()
            .try_get(t.block())
            .and_then(|b| b.try_get(t.word()).and_then(|o| o.forward_ref()))
        {
            Some(next) => t = next,
            None => return false,
        }
    }
    false
}

/// Runs the phase-boundary audit for `phase` (e.g. `"lgc/reclaim"`) of a
/// collection over `heap`. No-op unless auditing is [`enabled`]. The
/// shield `closure`, when given, is checked for integrity; reclaim-class
/// phases (`lgc/reclaim`, `cgc/sweep`, `graveyard/reap`) additionally
/// run the dead-reachability cross-check and the dangling-field scan.
/// Any issue dumps the event rings and panics.
pub fn audit_phase(store: &Store, phase: &str, heap: u32, closure: Option<&HashSet<ObjRef>>) {
    if !enabled() {
        return;
    }
    AUDITS.fetch_add(1, Ordering::Relaxed);
    let mut issues: Vec<String> = Vec::new();
    if let Some(c) = closure {
        issues.extend(check_shield_closure(store, c));
    }
    if matches!(phase, "lgc/reclaim" | "cgc/sweep" | "graveyard/reap") {
        issues.extend(check_dead_reachability(store));
        issues.extend(crate::validate::dangling_fields(store));
    }
    if !issues.is_empty() {
        audit_failure(phase, heap, &issues);
    }
}

fn audit_failure(phase: &str, heap: u32, issues: &[String]) -> ! {
    FAILURES.fetch_add(1, Ordering::Relaxed);
    dump_events();
    // Post-mortem: an audit failure is exactly what the flight recorder
    // exists for — dump the recent-telemetry ring next to the event trace.
    mpl_obs::flight_record(
        mpl_obs::FlightKind::Event,
        mpl_obs::EV_AUDIT_FAILURE,
        issues.len() as u64,
        u64::from(heap),
    );
    if let Some(path) = mpl_obs::dump_flight("audit-failure") {
        eprintln!("flight recorder dumped to {}", path.display());
    }
    panic!(
        "GC phase audit failed at {phase} (heap {heap}), {} issue(s):\n{}",
        issues.len(),
        issues.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_heap::{ObjKind, StoreConfig, Value};

    #[test]
    fn clean_store_has_no_dead_reachable() {
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let holder = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(a)]);
        s.pin(holder, 0);
        assert!(check_dead_reachability(&s).is_empty());
        let closure: HashSet<ObjRef> = HashSet::new();
        assert!(check_shield_closure(&s, &closure).is_empty());
    }

    #[test]
    fn crosscheck_flags_a_forced_mismark() {
        // Simulate the historical reclaim bug: an object reachable from a
        // pinned holder gets dead-marked anyway. The cross-check must
        // report it immediately.
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let victim = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(7)]);
        let holder = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(victim)]);
        s.pin(holder, 0);
        s.handle(victim).obj().set_dead();
        let issues = check_dead_reachability(&s);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("dead-reachable"), "{issues:?}");
    }

    #[test]
    fn shield_check_flags_a_moved_member() {
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let mut closure = HashSet::new();
        closure.insert(a);
        // Never tagged into the entangled space: the shield is broken.
        let issues = check_shield_closure(&s, &closure);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("entangled-space tag"), "{issues:?}");
    }

    #[test]
    fn rings_record_and_dump_in_order() {
        enable();
        let before = counters().events_recorded;
        events::emit(events::EventKind::Pin, 1, 2, 3);
        events::emit(events::EventKind::DeadMark, 4, 5, events::DEAD_BY_LGC);
        let after = counters().events_recorded;
        assert!(after >= before + 2, "{before} -> {after}");
        assert!(dump_events() >= 2);
        disable();
    }

    #[test]
    fn audit_phase_counts_runs() {
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let _ = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        enable();
        let before = counters().audits_run;
        audit_phase(&s, "lgc/reclaim", h, None);
        assert!(counters().audits_run > before);
        disable();
    }
}
