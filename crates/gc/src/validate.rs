//! Whole-heap validation: an independent checker the tests (and the
//! `MPL_DEBUG_LGC_VALIDATE` environment flag) use to certify that no
//! collection ever leaves a reachable dangling reference behind. This
//! checker found a real remembered-set repair bug during development;
//! it stays as a first-class API.

use mpl_heap::Store;

/// Scans every live, non-dead, traced object and reports pointer fields
/// that cannot be resolved without touching a freed chunk. An empty
/// result certifies the heap.
pub fn dangling_fields(store: &Store) -> Vec<String> {
    let mut issues = Vec::new();
    for chunk in store.chunks().live_chunks() {
        for (slot, obj) in chunk.objects() {
            let header = obj.header();
            if header.is_dead() || header.is_forwarded() || !header.kind().is_traced() {
                continue;
            }
            for (i, w) in obj.field_words().enumerate() {
                let Some(mut t) = w.pointer() else { continue };
                loop {
                    let Some(c) = store.chunks().try_get(t.chunk()) else {
                        issues.push(format!(
                            "dangling: c{}s{} field {i} -> {t} (chunk {} freed; src owner {}, entangled {})",
                            chunk.id(),
                            slot,
                            t.chunk(),
                            chunk.owner(),
                            chunk.is_entangled(),
                        ));
                        break;
                    };
                    match c.try_get(t.slot()).and_then(|o| o.forward_ref()) {
                        Some(next) => t = next,
                        None => break,
                    }
                }
            }
        }
    }
    issues
}

/// Panics with a readable report if the heap has dangling fields.
pub fn assert_heap_sound(store: &Store) {
    let issues = dangling_fields(store);
    assert!(
        issues.is_empty(),
        "heap validation failed:\n{}",
        issues.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_heap::{ObjKind, StoreConfig, Value};

    #[test]
    fn clean_heap_validates() {
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let _b = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(a)]);
        assert!(dangling_fields(&s).is_empty());
        assert_heap_sound(&s);
    }

    #[test]
    fn detects_a_planted_dangle() {
        let s = Store::new(StoreConfig {
            chunk_slots: 1,
            ..Default::default()
        });
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let _holder = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(a)]);
        s.chunks().free(a.chunk()); // simulate a buggy collection
        let issues = dangling_fields(&s);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("dangling"));
    }
}
