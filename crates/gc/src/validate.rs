//! Whole-heap validation: an independent checker the tests (and the
//! `MPL_DEBUG_LGC_VALIDATE` environment flag) use to certify that no
//! collection ever leaves a reachable dangling reference behind. This
//! checker found a real remembered-set repair bug during development;
//! it stays as a first-class API.

use mpl_heap::Store;

/// Scans every live, non-dead, traced object and reports pointer fields
/// that cannot be resolved without touching a freed block. An empty
/// result certifies the heap.
pub fn dangling_fields(store: &Store) -> Vec<String> {
    let mut issues = Vec::new();
    for block in store.blocks().live_blocks() {
        for (off, obj) in block.objects() {
            let header = obj.header();
            if header.is_dead() || header.is_forwarded() || !header.kind().is_traced() {
                continue;
            }
            for (i, w) in obj.field_words().enumerate() {
                let Some(mut t) = w.pointer() else { continue };
                loop {
                    let Some(b) = store.blocks().try_get(t.block()) else {
                        issues.push(format!(
                            "dangling: b{}w{} field {i} -> {t} (block {} freed; src owner {}, entangled {})",
                            block.id(),
                            off,
                            t.block(),
                            block.owner(),
                            block.is_entangled(),
                        ));
                        break;
                    };
                    match b.try_get(t.word()).and_then(|o| o.forward_ref()) {
                        Some(next) => t = next,
                        None => break,
                    }
                }
            }
        }
    }
    issues
}

/// Panics with a readable report if the heap has dangling fields.
pub fn assert_heap_sound(store: &Store) {
    let issues = dangling_fields(store);
    assert!(
        issues.is_empty(),
        "heap validation failed:\n{}",
        issues.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_heap::{ObjKind, StoreConfig, Value};

    #[test]
    fn clean_heap_validates() {
        let s = Store::new(StoreConfig::default());
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let _b = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(a)]);
        assert!(dangling_fields(&s).is_empty());
        assert_heap_sound(&s);
    }

    #[test]
    fn detects_a_planted_dangle() {
        let s = Store::new(StoreConfig {
            block_words: 12,
            ..Default::default()
        });
        let h = s.new_root_heap();
        // Five fields: a larger size class than the holder, so the two
        // objects land in different blocks and only `a`'s gets freed.
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1); 5]);
        let _holder = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(a)]);
        assert_ne!(a.block(), _holder.block());
        s.blocks().free(a.block()); // simulate a buggy collection
        let issues = dangling_fields(&s);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("dangling"));
    }
}
