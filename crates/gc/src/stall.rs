//! GC phase stall clock: which phase is running, and since when.
//!
//! The chaos harness injects delays into collector phases and needs an
//! external observer (the runtime's watchdog thread) that can tell "a GC
//! phase has been open for longer than the deadline" without participating
//! in the collection. This module is that clock: phase entry/exit publish a
//! `(phase, enter-timestamp)` pair into three atomics.
//!
//! Best-effort by design: the slot is process-global and last-writer-wins,
//! so with several tasks collecting at once a stalled phase can be masked
//! by a healthy one until the healthy one exits. That is acceptable for a
//! watchdog (a persistent stall wins the slot as soon as everything else
//! drains) and keeps the always-on cost to two relaxed stores per phase.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Phase names an open slot can report, indexed by the `enter` argument.
pub const PHASES: [&str; 6] = [
    "lgc/shield",
    "lgc/evacuate",
    "lgc/reclaim",
    "cgc/mark",
    "cgc/sweep",
    "graveyard/reap",
];

/// Index into [`PHASES`] for the LGC shield phase.
pub const LGC_SHIELD: usize = 0;
/// Index into [`PHASES`] for the LGC evacuate phase.
pub const LGC_EVACUATE: usize = 1;
/// Index into [`PHASES`] for the LGC reclaim phase.
pub const LGC_RECLAIM: usize = 2;
/// Index into [`PHASES`] for CGC marking.
pub const CGC_MARK: usize = 3;
/// Index into [`PHASES`] for CGC sweeping.
pub const CGC_SWEEP: usize = 4;
/// Index into [`PHASES`] for graveyard reaping.
pub const GRAVEYARD: usize = 5;

#[derive(Debug, Default)]
struct StallClock {
    /// 0 = idle; otherwise `phase index + 1`.
    phase: AtomicUsize,
    enter_ns: AtomicU64,
    token: AtomicU64,
    next_token: AtomicU64,
}

impl StallClock {
    fn enter(&self, idx: usize) -> u64 {
        debug_assert!(idx < PHASES.len());
        let token = self.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        self.enter_ns.store(mpl_obs::now_ns(), Ordering::Relaxed);
        self.token.store(token, Ordering::Relaxed);
        self.phase.store(idx + 1, Ordering::Relaxed);
        token
    }

    fn exit(&self, token: u64) {
        if self.token.load(Ordering::Relaxed) == token {
            self.phase.store(0, Ordering::Relaxed);
        }
    }

    fn current(&self) -> Option<(&'static str, u64)> {
        let p = self.phase.load(Ordering::Relaxed);
        if p == 0 {
            return None;
        }
        let name = PHASES.get(p - 1)?;
        let age = mpl_obs::now_ns().saturating_sub(self.enter_ns.load(Ordering::Relaxed));
        Some((name, age))
    }
}

static GLOBAL: StallClock = StallClock {
    phase: AtomicUsize::new(0),
    enter_ns: AtomicU64::new(0),
    token: AtomicU64::new(0),
    next_token: AtomicU64::new(0),
};

/// Marks phase `idx` (an index into [`PHASES`]) as entered now. Returns a
/// token for [`exit`]; an enter while another phase is open simply takes
/// over the slot (last-writer-wins).
pub fn enter(idx: usize) -> u64 {
    GLOBAL.enter(idx)
}

/// Clears the slot if this enterer still owns it.
pub fn exit(token: u64) {
    GLOBAL.exit(token)
}

/// The currently open phase and its age in nanoseconds, if any.
pub fn current() -> Option<(&'static str, u64)> {
    GLOBAL.current()
}

static REPORTS: AtomicU64 = AtomicU64::new(0);

/// Records that the watchdog flagged a stalled phase and dumped state.
/// Called by the runtime's watchdog thread; tests use [`reports`] to
/// assert sliced/packetized cycles under load do *not* trip it.
pub fn note_report() {
    REPORTS.fetch_add(1, Ordering::Relaxed);
}

/// Number of stall reports the watchdog has emitted, process-wide.
pub fn reports() -> u64 {
    REPORTS.load(Ordering::Relaxed)
}

/// RAII wrapper around [`enter`]/[`exit`] for phases with multiple exit
/// paths.
#[derive(Debug)]
pub struct StallGuard(u64);

/// Enters phase `idx`; the returned guard exits it on drop.
pub fn guard(idx: usize) -> StallGuard {
    StallGuard(enter(idx))
}

impl Drop for StallGuard {
    fn drop(&mut self) {
        exit(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_round_trip() {
        // A private clock: the global one is shared with every other test
        // in this binary (any collection touches it).
        let c = StallClock::default();
        let t = c.enter(LGC_SHIELD);
        assert_eq!(c.current().expect("phase open").0, "lgc/shield");
        c.exit(t);
        assert!(c.current().is_none());
        // A stale exit must not clear a newer enter.
        let t2 = c.enter(CGC_MARK);
        c.exit(t);
        assert_eq!(c.current().expect("still open").0, "cgc/mark");
        c.exit(t2);
        assert!(c.current().is_none());
    }
}
