//! Deferred block reclamation.
//!
//! Under real threads, a block evacuated by the local collector may still
//! be referenced by a concurrent task that read a (soon-stale) pointer just
//! before the collection: the stale copy's forwarding word must remain
//! readable until every task has passed a safepoint. Evacuated blocks are
//! therefore *retired* to the graveyard and only freed at a quiescent
//! point. The sequential executor has no such races and frees immediately.

use parking_lot::Mutex;

use mpl_heap::events::{self, EventKind};
use mpl_heap::Store;

/// A set of blocks awaiting reclamation at the next quiescent point.
#[derive(Debug, Default)]
pub struct Graveyard {
    pending: Mutex<Vec<u32>>,
}

impl Graveyard {
    /// Creates an empty graveyard.
    pub fn new() -> Graveyard {
        Graveyard::default()
    }

    /// Retires a block for deferred freeing.
    pub fn retire(&self, block_id: u32) {
        events::emit(EventKind::BlockRetire, block_id, 0, 0);
        self.pending.lock().push(block_id);
    }

    /// Number of blocks awaiting reclamation.
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }

    /// Frees all retired blocks. Call only at a global quiescent point
    /// (all tasks at safepoints, e.g. a top-level join).
    pub fn drain(&self, store: &Store) -> usize {
        let _stall = crate::stall::guard(crate::stall::GRAVEYARD);
        let ids = std::mem::take(&mut *self.pending.lock());
        let n = ids.len();
        for id in ids {
            store.blocks().free(id);
        }
        if n > 0 {
            // The reap is itself a reclamation phase: with auditing on,
            // certify no live field was left pointing into a freed block.
            crate::audit::audit_phase(store, "graveyard/reap", 0, None);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_heap::{ObjKind, StoreConfig};

    #[test]
    fn retire_then_drain_frees() {
        let store = Store::new(StoreConfig {
            block_words: 12,
            ..Default::default()
        });
        let h = store.new_root_heap();
        let r = store.alloc_values(h, ObjKind::Tuple, &[]);
        let g = Graveyard::new();
        g.retire(r.block());
        assert_eq!(g.pending(), 1);
        assert!(store.blocks().try_get(r.block()).is_some());
        assert_eq!(g.drain(&store), 1);
        assert_eq!(g.pending(), 0);
        assert!(store.blocks().try_get(r.block()).is_none());
    }
}
