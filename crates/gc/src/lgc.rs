//! LGC — the local, moving collector.
//!
//! A task collects its own (leaf) heap at a safepoint, with **no
//! synchronization with other tasks**: this is the property that makes the
//! hierarchical design fast for disentangled programs. Soundness under
//! concurrency rests on two facts:
//!
//! 1. Other tasks can only reference this heap's objects through the
//!    entangled region — every remote pointer acquisition goes through a
//!    barrier that pins its target, and everything reachable from a pinned
//!    object is transferred to the heap's non-moving *entangled space*
//!    before anything else is evacuated.
//! 2. Down-pointers from ancestor heaps are recorded in the remembered
//!    set; their sources belong to suspended ancestors, so repairing them
//!    with a CAS cannot lose a racing update from the owner. Mutators
//!    buffer these records privately and flush them at fork/join/GC
//!    safepoints (see `mpl-runtime`'s mutator module); a task flushes its
//!    own buffer before collecting, and entries destined for a heap only
//!    ever come from tasks below it — which are joined (flushed) before
//!    the heap's owner runs again — so the remembered set a collection
//!    reads here is always complete for the collected heap.
//!
//! The algorithm:
//!
//! * **Phase A (shield)** — compute the transitive closure of the heap's
//!   pinned objects (through *all* fields, conservatively, because remote
//!   readers traverse immutable edges barrier-free, and **through foreign
//!   heaps**: a sibling that read a pointer out of a pinned object's
//!   closure may have stored it in an object of its own heap, so a path
//!   from a pinned root can hop across the boundary and come back) and
//!   tag its in-heap members `entangled_space`: non-moving, retained,
//!   swept later by the CGC.
//! * **Phase B (evacuate)** — Cheney-style copy of everything reachable
//!   from the task's roots and the remembered set into fresh size-class
//!   blocks, leaving forwarding words behind; entangled-space objects are
//!   kept in place and act as boundaries (their subgraph is already
//!   retained).
//! * **Phase C (reclaim)** — from-space blocks that contain entangled
//!   objects are retained (and flagged for the CGC); the rest are freed or
//!   retired to the graveyard **wholesale** — no per-object walk is needed
//!   to free a block, only the retained (entangled) minority is walked to
//!   dead-mark unshielded garbage.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mpl_heap::events::{self, EventKind, DEAD_BY_ABANDON, DEAD_BY_LGC};
use mpl_heap::{
    size_class, Block, ObjHandle, ObjKind, ObjRef, RemsetEntry, Store, Value, Word,
    NUM_SIZE_CLASSES, OBJECT_HEADER_WORDS,
};

use crate::graveyard::Graveyard;

/// Statistics from one local collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LgcOutcome {
    /// Bytes copied to to-space.
    pub copied_bytes: u64,
    /// Garbage bytes reclaimed (logically freed).
    pub reclaimed_bytes: u64,
    /// Live bytes retained in place in the entangled space.
    pub retained_entangled_bytes: u64,
    /// Number of from-space blocks freed or retired.
    pub freed_blocks: usize,
    /// Number of from-space blocks retained for the CGC.
    pub retained_blocks: usize,
    /// Number of objects evacuated.
    pub copied_objects: usize,
}

/// To-space: per-size-class bump blocks owned by the collection, promoted
/// to the heap's allocation blocks when the cycle installs them.
struct ToSpace<'s> {
    store: &'s Store,
    heap: u32,
    blocks: Vec<Arc<Block>>,
    current: [Option<usize>; NUM_SIZE_CLASSES],
}

impl<'s> ToSpace<'s> {
    fn new(store: &'s Store, heap: u32) -> Self {
        ToSpace {
            store,
            heap,
            blocks: Vec::new(),
            current: [None; NUM_SIZE_CLASSES],
        }
    }

    fn register(&mut self, capacity: usize, class: usize) -> Arc<Block> {
        let heap = self.heap;
        let sft = Arc::clone(self.store.sft());
        let block = self
            .store
            .blocks()
            .register(|id| Block::new(id, heap, capacity, class, sft));
        self.blocks.push(Arc::clone(&block));
        block
    }

    /// Copies an object image into to-space, preserving the suspect bit
    /// (part of the object's identity for the read barrier).
    fn alloc(&mut self, kind: ObjKind, fields: &[Word], suspect: bool) -> ObjRef {
        let nwords = OBJECT_HEADER_WORDS + fields.len();
        let block_words = self.store.config().block_words;
        if nwords > block_words {
            let block = self.register(nwords, NUM_SIZE_CLASSES - 1);
            let r = block.try_alloc(kind, fields).expect("dedicated block fits");
            if suspect {
                block.set_suspect(r.word());
            }
            return r;
        }
        let class = size_class(nwords);
        loop {
            if let Some(i) = self.current[class] {
                if let Some(r) = self.blocks[i].try_alloc(kind, fields) {
                    if suspect {
                        self.blocks[i].set_suspect(r.word());
                    }
                    return r;
                }
            }
            self.register(block_words, class);
            self.current[class] = Some(self.blocks.len() - 1);
        }
    }
}

/// Runs a local collection of `heap`.
///
/// `roots` is the owning task's shadow stack; entries are updated in place
/// to the objects' new locations. `extra_roots` (e.g. a pending result
/// value) are likewise updated.
///
/// # Panics
///
/// Panics on heap corruption (dangling references outside the collected
/// heap's own blocks).
pub fn collect_local(
    store: &Store,
    heap: u32,
    roots: &mut [ObjRef],
    graveyard: &Graveyard,
    immediate_block_free: bool,
) -> LgcOutcome {
    // The whole call is the stop-the-task pause: timed here (not at call
    // sites) so allocation-triggered and forced collections are equally
    // covered. Phase spans are telemetry-gated; the pause counter is
    // always on (two clock reads per collection, noise next to the
    // collection itself).
    let pause_begin = std::time::Instant::now();
    let span_pause = mpl_obs::span_start();
    let span_phase = mpl_obs::span_start();

    let h = store.heaps().find(heap);
    let info = store.heaps().info(h);
    let from_blocks: Vec<u32> = info.block_ids();
    let from_set: HashSet<u32> = from_blocks.iter().copied().collect();
    let total_from_live: u64 = from_blocks
        .iter()
        .filter_map(|&b| store.blocks().try_get(b))
        .map(|b| b.live_bytes() as u64)
        .sum();

    let in_heap = |r: ObjRef| from_set.contains(&r.block());

    let mut out = LgcOutcome::default();

    // ---- Phase A: shield the entangled region --------------------------
    let mut stall = crate::stall::enter(crate::stall::LGC_SHIELD);
    let mut entangled_closure: HashSet<ObjRef> = HashSet::new();
    let mut retained_block_ids: HashSet<u32> = HashSet::new();
    {
        let entries = info.take_entangled();
        let mut kept = Vec::with_capacity(entries.len());
        let mut stack: Vec<ObjRef> = Vec::new();
        // The closure traversal must pass THROUGH foreign objects: a
        // sibling that read a pointer out of a pinned object's immutable
        // closure may have stored it in an object of its own heap, so a
        // path from a pinned root can hop across the heap boundary and
        // come back. Stopping at the boundary left such comeback objects
        // unshielded. Foreign objects are traversed (tracked in
        // `foreign_seen`) but never tagged or retained; only in-heap
        // members join the closure.
        let mut foreign_seen: HashSet<ObjRef> = HashSet::new();
        for r in entries {
            let Some(r) = store.try_resolve(r) else {
                continue; // reclaimed by the concurrent collector
            };
            let hd = store.handle(r);
            if hd.header().is_dead() || !hd.header().is_pinned() {
                continue;
            }
            kept.push(r);
            if in_heap(r) {
                stack.push(r);
            }
        }
        info.extend_entangled(kept);
        shield_sweep(
            store,
            h,
            &from_set,
            &mut stack,
            &mut entangled_closure,
            &mut foreign_seen,
            &mut retained_block_ids,
            &mut out,
        );
    }
    mpl_fail::hit_hard("lgc/shield");
    crate::audit::audit_phase(store, "lgc/shield", h, Some(&entangled_closure));
    mpl_obs::span_close(mpl_obs::Metric::LgcShield, span_phase);
    let span_phase = mpl_obs::span_start();
    crate::stall::exit(stall);
    stall = crate::stall::enter(crate::stall::LGC_EVACUATE);

    // ---- Phase B: evacuate ---------------------------------------------
    let phase = std::cell::Cell::new("init");
    let mut tospace = ToSpace::new(store, h);
    // Map from old location to new location for objects we copied.
    let mut forwarded: HashMap<ObjRef, ObjRef> = HashMap::new();
    let mut scan_queue: Vec<ObjRef> = Vec::new();
    // Objects pinned by a concurrent reader *after* the shield phase;
    // their reachable closures are shielded post-scan.
    let race_pinned: std::cell::RefCell<Vec<ObjRef>> = std::cell::RefCell::new(Vec::new());

    let forward_one = |store: &Store,
                       tospace: &mut ToSpace<'_>,
                       scan_queue: &mut Vec<ObjRef>,
                       forwarded: &mut HashMap<ObjRef, ObjRef>,
                       out: &mut LgcOutcome,
                       entangled_closure: &mut HashSet<ObjRef>,
                       retained_block_ids: &mut HashSet<u32>,
                       r: ObjRef|
     -> ObjRef {
        let r = match store.try_resolve(r) {
            Some(r) => r,
            None => panic!(
                "forward_one[{}]: unresolvable {r} (block {} freed) while collecting heap {h}",
                phase.get(),
                r.block()
            ),
        };
        if !from_set.contains(&r.block()) {
            return r; // foreign pointer: not collected now
        }
        if let Some(&nr) = forwarded.get(&r) {
            return nr;
        }
        let hd = store.handle(r);
        let header = hd.header();
        // Shielding is per-collection: only THIS cycle's pin closure is
        // non-moving. A stale `entangled_space` bit from an earlier cycle
        // (whose pin has since been released at a join) must not exempt
        // an object from evacuation — its block is about to be freed.
        if entangled_closure.contains(&r) {
            return r; // shielded: non-moving
        }
        if let Some(f) = hd.forward_ref() {
            return f;
        }
        if header.is_dead() {
            // A reachable-but-swept object is a collector bug. Count it
            // unconditionally — release builds compile out the assertion
            // below but still surface the corruption through the
            // `lgc_dead_traced` stat — then log the full context, dump
            // the event trace, and die in debug builds.
            store.stats().on_dead_traced();
            eprintln!(
                "mpl-gc ERROR: LGC({h})[{}] traced a dead object {r}: kind {:?} len {} suspect {} entspace {} block(owner {} entangled {} pinned_count {})",
                phase.get(),
                header.kind(),
                hd.len(),
                hd.is_suspect(),
                header.in_entangled_space(),
                hd.block().owner(),
                hd.block().is_entangled(),
                hd.block().pinned_count(),
            );
            crate::audit::dump_events();
            debug_assert!(false, "traced a dead object {r} (details on stderr)");
        }
        // Copy the payload and claim the original.
        let snapshot: Vec<Word> = hd.obj().field_words().collect();
        let size = hd.size_bytes();
        let nr = tospace.alloc(header.kind(), &snapshot, hd.is_suspect());
        match hd.obj().try_forward(nr) {
            Ok(()) => {
                forwarded.insert(r, nr);
                out.copied_bytes += size as u64;
                out.copied_objects += 1;
                scan_queue.push(nr);
                nr
            }
            Err(hdr) if hdr.is_forwarded() => {
                // Another collector claimed it first (cannot happen for a
                // task-owned heap, but be defensive): abandon our copy.
                abandon_copy(store, nr);
                hd.forward_ref().expect("forwarded header without fwd ref")
            }
            Err(_pinned) => {
                // A remote reader pinned the object between our shield
                // phase and now: it just became entangled. Keep it in
                // place, abandon the copy, and remember to shield its
                // reachable closure once the scan settles (the reader may
                // traverse its fields barrier-free).
                abandon_copy(store, nr);
                hd.obj().set_entangled_space();
                events::emit_obj(EventKind::Entangle, r, h);
                entangled_closure.insert(r);
                retained_block_ids.insert(r.block());
                out.retained_entangled_bytes += size as u64;
                race_pinned.borrow_mut().push(r);
                r
            }
        }
    };

    // Roots.
    phase.set("roots");
    for root in roots.iter_mut() {
        *root = forward_one(
            store,
            &mut tospace,
            &mut scan_queue,
            &mut forwarded,
            &mut out,
            &mut entangled_closure,
            &mut retained_block_ids,
            *root,
        );
    }

    // Remembered set: down-pointers from ancestor heaps are roots, and the
    // source fields must be repaired after the move.
    phase.set("remset");
    let remset = info.take_remset();
    let mut kept_remset: Vec<RemsetEntry> = Vec::new();
    for entry in remset {
        let Some(_block) = store.blocks().try_get(entry.src.block()) else {
            continue; // source block reclaimed: entry is stale
        };
        let src = store.resolve(entry.src);
        if from_set.contains(&src.block()) {
            // The source merged into this very heap; the pointer is now
            // internal and ordinary tracing covers it.
            continue;
        }
        let src_h: ObjHandle = store.handle(src);
        if src_h.header().is_dead() {
            continue;
        }
        let idx = entry.field as usize;
        if idx >= src_h.len() {
            continue;
        }
        loop {
            let old_word = src_h.field_word(idx);
            let Some(t) = old_word.pointer() else { break };
            // The raw target decides membership: a target already
            // evacuated through another path must still have its source
            // field repaired to the forwarded location, or the field
            // dangles once from-space blocks are freed.
            if !from_set.contains(&t.block()) {
                break; // points outside this heap: entry is stale
            }
            let nt = forward_one(
                store,
                &mut tospace,
                &mut scan_queue,
                &mut forwarded,
                &mut out,
                &mut entangled_closure,
                &mut retained_block_ids,
                t,
            );
            if nt == t {
                // Shielded in place (entangled space): still a live
                // down-pointer into this heap.
                kept_remset.push(RemsetEntry {
                    src,
                    field: entry.field,
                });
                break;
            }
            match src_h
                .obj()
                .cas_field(idx, old_word.decode(), Value::Obj(nt))
            {
                Ok(()) => {
                    events::emit_obj(EventKind::RemsetRepair, src, entry.field);
                    kept_remset.push(RemsetEntry {
                        src,
                        field: entry.field,
                    });
                    break;
                }
                Err(_) => continue, // concurrent write: re-read and retry
            }
        }
    }
    info.extend_remset(kept_remset);

    // Transitive scan of evacuated objects.
    phase.set("scan");
    while let Some(nr) = scan_queue.pop() {
        let hd = store.handle(nr);
        if !hd.kind().is_traced() {
            continue;
        }
        for i in 0..hd.len() {
            let w = hd.field_word(i);
            if let Some(t) = w.pointer() {
                if store.try_resolve(t).is_none() {
                    panic!(
                        "scan: {nr} (kind {:?}, len {}, copied into block {} owner {}) field {i} -> dangling {t}",
                        hd.kind(),
                        hd.len(),
                        nr.block(),
                        store.blocks().get(nr.block()).owner(),
                    );
                }
                let nt = forward_one(
                    store,
                    &mut tospace,
                    &mut scan_queue,
                    &mut forwarded,
                    &mut out,
                    &mut entangled_closure,
                    &mut retained_block_ids,
                    t,
                );
                if nt != t {
                    hd.set_field(i, Value::Obj(nt));
                }
            }
        }
    }

    // Late shield: expand the closure from objects pinned concurrently
    // during evacuation. Members already evacuated are fine (readers
    // resolve forwarding; from-space blocks survive until quiescence via
    // the graveyard); members still in place must be retained and spared
    // from dead-marking, recursively.
    {
        // Like Phase A, the late shield crosses heap boundaries: the
        // racing reader may already have stashed pointers to this heap's
        // objects inside objects of its own heap.
        let mut foreign_seen: HashSet<ObjRef> = HashSet::new();
        let mut stack = race_pinned.into_inner();
        while let Some(r) = stack.pop() {
            let Some(block) = store.blocks().try_get(r.block()) else {
                continue;
            };
            let Some(obj) = block.try_get(r.word()) else {
                continue;
            };
            if obj.header().is_forwarded() {
                continue; // alive in to-space; reader chases forwarding
            }
            if !obj.header().kind().is_traced() {
                continue;
            }
            let targets: Vec<ObjRef> = obj.field_words().filter_map(|w| w.pointer()).collect();
            for t in targets {
                let Some(t) = store.try_resolve(t) else {
                    continue;
                };
                let local = from_set.contains(&t.block());
                if local && entangled_closure.contains(&t) {
                    continue;
                }
                if !local && !foreign_seen.insert(t) {
                    continue;
                }
                let Some(tbl) = store.blocks().try_get(t.block()) else {
                    continue;
                };
                let Some(tobj) = tbl.try_get(t.word()) else {
                    continue;
                };
                if tobj.header().is_dead() || tobj.header().is_forwarded() {
                    continue;
                }
                if local {
                    tobj.set_entangled_space();
                    events::emit_obj(EventKind::Entangle, t, h);
                    entangled_closure.insert(t);
                    retained_block_ids.insert(t.block());
                    out.retained_entangled_bytes += tobj.size_bytes() as u64;
                } else {
                    events::emit_obj(EventKind::ShieldCross, t, r.block());
                }
                stack.push(t);
            }
        }
    }
    // Registry re-take: a pin can land at ANY point during the collection
    // — a sibling's acquisition barrier fires on objects this collection
    // may never trace (e.g. a former bucket head now reachable only
    // through the sibling's own object after it CAS'd a shared slot).
    // The `race_pinned` late shield above only covers pins the evacuation
    // happened to trace; a pin on an untraced object would be spared
    // individually by `try_kill`'s CAS, but its *referents* would be
    // dead-marked while the reader can still walk to them.
    //
    // Soundness of draining again: every cross-heap acquisition pins and
    // registers its target *before* the reference escapes to the remote
    // task (read barrier, write barrier, and allocation barrier all pin
    // first), so any object a reader can possibly hold by the time Phase
    // C's kills run is registered with this heap's index by the time this
    // loop's final drain observes it empty of news. The object-level pin
    // CAS in `try_kill` covers the residual window for freshly pinned
    // objects themselves, and such objects' referents are necessarily
    // already in the closure (their reference escaped through an earlier
    // registered pin).
    {
        let mut foreign_seen: HashSet<ObjRef> = HashSet::new();
        loop {
            mpl_fail::hit_hard("lgc/retake");
            let entries = info.take_entangled();
            if entries.is_empty() {
                break;
            }
            let mut kept = Vec::with_capacity(entries.len());
            let mut stack: Vec<ObjRef> = Vec::new();
            for r in entries {
                let Some(r) = store.try_resolve(r) else {
                    continue;
                };
                let hd = store.handle(r);
                if hd.header().is_dead() || !hd.header().is_pinned() {
                    continue;
                }
                kept.push(r);
                if in_heap(r) && !entangled_closure.contains(&r) {
                    stack.push(r);
                }
            }
            let progress = !stack.is_empty();
            shield_sweep(
                store,
                h,
                &from_set,
                &mut stack,
                &mut entangled_closure,
                &mut foreign_seen,
                &mut retained_block_ids,
                &mut out,
            );
            info.extend_entangled(kept);
            if !progress {
                break;
            }
        }
    }
    mpl_fail::hit_hard("lgc/evacuate");
    crate::audit::audit_phase(store, "lgc/evacuate", h, Some(&entangled_closure));
    mpl_obs::span_close(mpl_obs::Metric::LgcEvacuate, span_phase);
    let span_phase = mpl_obs::span_start();
    crate::stall::exit(stall);
    stall = crate::stall::enter(crate::stall::LGC_RECLAIM);

    // ---- Phase C: reclaim ------------------------------------------------
    // Forwarding-chain path compression: retained blocks keep forwarded
    // entries alive indefinitely (entangled readers resolve lazily), so
    // every forwarding word must point at the *final* location before the
    // intermediate to-space blocks it may pass through are reclaimed —
    // this or any future cycle. Blocks that forwarded nothing (the
    // `forwarded_count` gauge is zero) are skipped without a walk.
    for &bid in &from_blocks {
        let Some(block) = store.blocks().try_get(bid) else {
            continue;
        };
        if block.forwarded_count() == 0 {
            continue;
        }
        for (_off, obj) in block.objects() {
            if let Some(first) = obj.forward_ref() {
                let fin = store.resolve(first);
                if fin != first {
                    obj.compress_forward(fin);
                }
            }
        }
    }
    for &bid in &from_blocks {
        let Some(block) = store.blocks().try_get(bid) else {
            continue;
        };
        if retained_block_ids.contains(&bid) || block.pinned_count() > 0 {
            out.retained_blocks += 1;
            block.set_entangled(true);
            // Account garbage and evacuees out of the retained block.
            for (off, obj) in block.objects() {
                let header = obj.header();
                if header.is_dead() {
                    continue;
                }
                if header.is_forwarded() {
                    block.sub_live_bytes(obj.size_bytes());
                } else if !entangled_closure.contains(&ObjRef::new(bid, off)) {
                    // Unreachable and unshielded: garbage in a retained
                    // block; the CGC reclaims the space later. Objects with
                    // a pin (possibly acquired concurrently, after the
                    // shield phase) or a lingering entangled-space flag
                    // are spared — the concurrent collector decides their
                    // fate with a proper global mark. `try_kill` re-checks
                    // those conditions on its CAS, so a pin landing after
                    // this loop's header load cannot be overrun.
                    if obj.try_kill().is_some() {
                        events::emit(EventKind::DeadMark, bid, off, DEAD_BY_LGC);
                        block.sub_live_bytes(obj.size_bytes());
                    }
                }
            }
        } else {
            // Clean line map (nothing pinned, nothing shielded): the whole
            // block is garbage or evacuated — freed wholesale, no walk.
            out.freed_blocks += 1;
            if immediate_block_free {
                store.blocks().free(bid);
            } else {
                graveyard.retire(bid);
            }
        }
    }

    let retained_live: u64 = retained_block_ids
        .iter()
        .filter_map(|&b| store.blocks().try_get(b))
        .map(|b| b.live_bytes() as u64)
        .sum();
    out.reclaimed_bytes = total_from_live
        .saturating_sub(out.copied_bytes)
        .saturating_sub(retained_live);

    // Install the new block list: to-space first, then retained entangled
    // blocks; the per-class to-space bump blocks become the heap's
    // allocation blocks.
    let mut new_blocks: Vec<u32> = tospace.blocks.iter().map(|b| b.id()).collect();
    new_blocks.extend(from_blocks.iter().copied().filter(|b| {
        retained_block_ids.contains(b)
            || store
                .blocks()
                .try_get(*b)
                .is_some_and(|bl| bl.pinned_count() > 0)
    }));
    info.set_blocks(new_blocks);
    info.clear_alloc_blocks();
    for class in 0..NUM_SIZE_CLASSES {
        if let Some(i) = tospace.current[class] {
            info.set_alloc_block(class, Some(Arc::clone(&tospace.blocks[i])));
        }
    }

    store.stats().on_lgc(
        out.copied_bytes,
        out.reclaimed_bytes,
        out.retained_entangled_bytes,
    );
    // Mirror the global live-bytes adjustment onto the tenant budget this
    // heap is accounted against, if any.
    if let Some(budget) = info.budget() {
        budget.credit(out.reclaimed_bytes as usize);
    }
    // Census piggyback: the reclaim already computed this collection's
    // live/reclaimed totals, so a post-GC census delta costs two gauge
    // reads. Feeds the flight recorder and the `last_gc` census row.
    if mpl_obs::enabled() {
        mpl_obs::note_gc_census(
            mpl_obs::GcCensusKind::Lgc,
            store.stats().live_bytes() as u64,
            store.blocks().live() as u64,
            out.reclaimed_bytes,
        );
    }
    // Phase-boundary audit (formerly an ad-hoc MPL_DEBUG_LGC_VALIDATE
    // dangling-field scan printed to stderr): the reclaim-class audit
    // re-validates the shield, cross-checks reachability against dead
    // marks, scans for dangling fields, and fails loudly with the event
    // trace if anything is off. Enabled by the same environment flag or
    // `RuntimeConfig::with_audit`.
    mpl_fail::hit_hard("lgc/reclaim");
    crate::audit::audit_phase(store, "lgc/reclaim", h, Some(&entangled_closure));
    mpl_obs::span_close(mpl_obs::Metric::LgcReclaim, span_phase);
    crate::stall::exit(stall);
    store
        .stats()
        .on_lgc_pause(pause_begin.elapsed().as_nanos() as u64);
    // `on_lgc_pause` already fed the pause histogram; record the timeline
    // span only.
    mpl_obs::span_only(mpl_obs::Metric::LgcPause, span_pause);
    out
}

/// Expands `entangled_closure` with everything reachable from `stack`,
/// crossing heap boundaries in both directions: foreign objects are
/// traversed (tracked in `foreign_seen`) but never tagged or retained;
/// in-heap members (blocks in `from_set`) are tagged entangled-space,
/// their blocks retained, and their retained bytes accounted.
#[allow(clippy::too_many_arguments)]
fn shield_sweep(
    store: &Store,
    h: u32,
    from_set: &HashSet<u32>,
    stack: &mut Vec<ObjRef>,
    entangled_closure: &mut HashSet<ObjRef>,
    foreign_seen: &mut HashSet<ObjRef>,
    retained_block_ids: &mut HashSet<u32>,
    out: &mut LgcOutcome,
) {
    while let Some(r) = stack.pop() {
        let local = from_set.contains(&r.block());
        if local {
            if !entangled_closure.insert(r) {
                continue;
            }
        } else if !foreign_seen.insert(r) {
            continue;
        }
        // Foreign blocks can be swept (and freed) by a concurrent
        // collection elsewhere; read them defensively.
        let Some(block) = store.blocks().try_get(r.block()) else {
            continue;
        };
        let Some(obj) = block.try_get(r.word()) else {
            continue;
        };
        if local {
            obj.set_entangled_space();
            events::emit_obj(EventKind::Entangle, r, h);
            retained_block_ids.insert(r.block());
            out.retained_entangled_bytes += obj.size_bytes() as u64;
        }
        if !obj.header().kind().is_traced() {
            continue;
        }
        let targets: Vec<ObjRef> = obj.field_words().filter_map(|w| w.pointer()).collect();
        for t in targets {
            let Some(t) = store.try_resolve(t) else {
                continue;
            };
            let t_local = from_set.contains(&t.block());
            let seen = if t_local {
                entangled_closure.contains(&t)
            } else {
                foreign_seen.contains(&t)
            };
            if seen {
                continue;
            }
            let dead = store
                .blocks()
                .try_get(t.block())
                .and_then(|b| b.try_get(t.word()).map(|o| o.header().is_dead()));
            if dead != Some(false) {
                continue;
            }
            if t_local != local {
                events::emit_obj(EventKind::ShieldCross, t, r.block());
            }
            stack.push(t);
        }
    }
}

fn abandon_copy(store: &Store, r: ObjRef) {
    let hd = store.handle(r);
    let size = hd.size_bytes();
    hd.obj().set_dead();
    events::emit_obj(EventKind::DeadMark, r, DEAD_BY_ABANDON);
    hd.block().sub_live_bytes(size);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_heap::{ObjKind, StoreConfig};

    fn store() -> Store {
        Store::new(StoreConfig {
            block_words: 12,
            ..Default::default()
        })
    }

    fn lgc(store: &Store, heap: u32, roots: &mut [ObjRef]) -> LgcOutcome {
        let g = Graveyard::new();
        collect_local(store, heap, roots, &g, true)
    }

    #[test]
    fn collects_garbage_keeps_roots() {
        let s = store();
        let h = s.new_root_heap();
        let live = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(7)]);
        for i in 0..20 {
            let _garbage = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(i)]);
        }
        let mut roots = [live];
        let out = lgc(&s, h, &mut roots);
        assert!(out.reclaimed_bytes > 0);
        assert_eq!(out.copied_objects, 1);
        assert_eq!(s.handle(roots[0]).field(0), Value::Int(7));
        assert!(out.freed_blocks > 0);
    }

    #[test]
    fn preserves_object_graph_shape() {
        let s = store();
        let h = s.new_root_heap();
        // pair -> (leaf_a, leaf_b); shared leaf must stay shared.
        let leaf = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let pair = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(leaf), Value::Obj(leaf)]);
        let mut roots = [pair];
        lgc(&s, h, &mut roots);
        let p = s.handle(roots[0]);
        let a = p.field(0).expect_obj();
        let b = p.field(1).expect_obj();
        assert_eq!(a, b, "sharing must be preserved");
        assert_eq!(s.handle(a).field(0), Value::Int(1));
    }

    #[test]
    fn cycles_survive() {
        let s = store();
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Ref, &[Value::Unit]);
        let b = s.alloc_values(h, ObjKind::Ref, &[Value::Obj(a)]);
        s.handle(a).set_field(0, Value::Obj(b));
        let mut roots = [a];
        lgc(&s, h, &mut roots);
        let na = roots[0];
        let nb = s.handle(na).field(0).expect_obj();
        assert_eq!(s.handle(nb).field(0).expect_obj(), na);
    }

    #[test]
    fn pinned_objects_do_not_move() {
        let s = store();
        let h = s.new_root_heap();
        let pinned = s.alloc_values(h, ObjKind::Ref, &[Value::Int(3)]);
        s.pin(pinned, 0);
        let mut roots = [pinned];
        let out = lgc(&s, h, &mut roots);
        assert_eq!(roots[0], pinned, "pinned object must stay in place");
        assert!(out.retained_entangled_bytes > 0);
        assert!(out.retained_blocks >= 1);
        assert_eq!(s.handle(pinned).field(0), Value::Int(3));
    }

    #[test]
    fn pin_closure_is_shielded() {
        let s = store();
        let h = s.new_root_heap();
        // pinned -> inner (unpinned): inner must not move either, because a
        // remote reader can traverse the immutable edge barrier-free.
        let inner = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(9)]);
        let pinned = s.alloc_values(h, ObjKind::Ref, &[Value::Obj(inner)]);
        s.pin(pinned, 0);
        let mut roots = [pinned, inner];
        lgc(&s, h, &mut roots);
        assert_eq!(roots[0], pinned);
        assert_eq!(roots[1], inner, "closure of a pin must not move");
        assert!(s.handle(inner).header().in_entangled_space());
    }

    #[test]
    fn remset_sources_are_repaired() {
        let s = store();
        let root_heap = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root_heap);
        // A mutable cell in the root heap points down into l.
        let cell = s.alloc_values(root_heap, ObjKind::Ref, &[Value::Unit]);
        let deep = s.alloc_values(l, ObjKind::Tuple, &[Value::Int(5)]);
        s.handle(cell).set_field(0, Value::Obj(deep));
        s.remember(
            l,
            RemsetEntry {
                src: cell,
                field: 0,
            },
        );

        // No task root references `deep`; the remset alone must keep it
        // alive, and the source field must be repaired to the new copy.
        let mut roots: [ObjRef; 0] = [];
        let out = lgc(&s, l, &mut roots);
        assert_eq!(out.copied_objects, 1);
        let moved = s.handle(cell).field(0).expect_obj();
        assert_ne!(moved, deep, "object must have been evacuated");
        assert_eq!(s.handle(moved).field(0), Value::Int(5));
        assert_eq!(s.heaps().info(l).remset_len(), 1, "entry kept");
    }

    #[test]
    fn rawarr_payload_not_traced() {
        let s = store();
        let h = s.new_root_heap();
        // A raw array whose bits happen to look like a pointer must not be
        // interpreted as one.
        let raw = s.alloc(
            h,
            ObjKind::RawArr,
            &[Word::encode(Value::Obj(ObjRef::new(12345, 1)))],
        );
        let mut roots = [raw];
        lgc(&s, h, &mut roots); // would panic on dangling b12345w1 if traced
        assert!(s.handle(roots[0]).field_word(0).is_pointer());
    }

    #[test]
    fn second_collection_after_unpin_moves_object() {
        let s = store();
        let root_heap = s.new_root_heap();
        let (l, r) = s.fork_heaps(root_heap);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(1)]);
        s.pin(x, 0);
        s.join(root_heap, l, r); // unpins (level 0 >= depth 0)
        assert!(!s.handle(x).header().is_pinned());
        // But the entangled_space bit was cleared by unpin, so LGC may now
        // move it.
        let mut roots = [x];
        let out = lgc(&s, root_heap, &mut roots);
        assert_eq!(out.copied_objects, 1);
        assert_ne!(roots[0], x);
        assert_eq!(s.handle(roots[0]).field(0), Value::Int(1));
    }

    #[test]
    fn reclaimed_bytes_accounting_consistent() {
        let s = store();
        let h = s.new_root_heap();
        let keep = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        for _ in 0..50 {
            s.alloc_values(h, ObjKind::Tuple, &[Value::Unit]);
        }
        let before = s.stats().snapshot().live_bytes;
        let mut roots = [keep];
        let out = lgc(&s, h, &mut roots);
        let after = s.stats().snapshot().live_bytes;
        assert_eq!(after, before - out.reclaimed_bytes as usize);
    }
}
