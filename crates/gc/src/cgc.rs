//! CGC — the concurrent, non-moving collector for entangled objects.
//!
//! The local collector shields pinned objects and their closure in place;
//! reclaiming them requires knowing global reachability, which is this
//! collector's job. It is a snapshot-at-the-beginning (SATB) mark–sweep:
//!
//! * **Mark** — trace from every task's roots (and any extra roots the
//!   runtime supplies). Root assembly is **lock-free**: each task
//!   publishes its roots in an atomic segmented stack (`mpl-runtime`'s
//!   `RootStack`) that the marker snapshots without stopping the owner;
//!   a stale-prefix read only over-approximates the root set, and any
//!   pointer published after the snapshot is covered by SATB logging.
//!   While marking is active, mutators log overwritten
//!   pointers and newly pinned objects into the SATB buffer, which the
//!   marker drains to a fixpoint; this preserves everything live at the
//!   snapshot.
//! * **Sweep** — visit only chunks flagged *entangled* and reclaim
//!   unmarked entangled-space objects. Disentangled data is never swept
//!   here (and never pays): a program with no entanglement never triggers
//!   this collector.
//!
//! Under the sequential executor the "concurrency" degenerates to running
//! at safepoints, and the SATB buffer stays empty.
//!
//! # Incremental marking
//!
//! [`collect_entangled`] runs a whole cycle in one pause. For bounded
//! pauses, the same cycle can be **sliced**: [`cgc_begin`] snapshots the
//! roots and raises the marking flag; repeated [`cgc_step`] calls advance
//! the trace by a bounded number of objects (mutators run between slices,
//! logging into the SATB buffer); the final step drains the buffer to a
//! fixpoint and sweeps. Soundness is the usual SATB argument — everything
//! live at the snapshot is either reached from the snapshot roots or was
//! logged when a mutator hid it — plus one observation specific to this
//! runtime: objects can only *enter* a sweepable state (the entangled
//! space) by being pinned, and the pin path logs them.

use std::collections::HashSet;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

use mpl_heap::events::{self, EventKind, DEAD_BY_CGC};
use mpl_heap::{ObjRef, Store};

/// Shared state coordinating mutators with a concurrent mark phase.
#[derive(Debug, Default)]
pub struct CgcState {
    marking: AtomicBool,
    satb: Mutex<Vec<ObjRef>>,
    /// In-flight incremental cycle (mark stack + visited set, then the
    /// sweep cursor).
    work: Mutex<Option<CycleState>>,
}

/// The persisted trace of an incremental cycle.
#[derive(Debug, Default)]
struct MarkState {
    stack: Vec<ObjRef>,
    visited: HashSet<ObjRef>,
    marked: Vec<ObjRef>,
}

/// Phase of an in-flight incremental cycle.
#[derive(Debug)]
enum CycleState {
    Mark(MarkState),
    /// Marking finished; sweeping the captured entangled-chunk list from
    /// `cursor`, accumulating the outcome.
    Sweep {
        marked: Vec<ObjRef>,
        chunks: Vec<u32>,
        cursor: usize,
        out: CgcOutcome,
    },
    /// Sweeping finished; clearing mark bits from `cursor`.
    Epilogue {
        marked: Vec<ObjRef>,
        cursor: usize,
        out: CgcOutcome,
    },
}

impl CgcState {
    /// Creates idle state.
    pub fn new() -> CgcState {
        CgcState::default()
    }

    /// True while a mark phase is active; mutators must log overwritten
    /// pointers via [`CgcState::satb_log`].
    pub fn is_marking(&self) -> bool {
        self.marking.load(Ordering::Acquire)
    }

    /// Logs a pointer that must survive the current snapshot (an
    /// overwritten field value, or a newly pinned object).
    pub fn satb_log(&self, r: ObjRef) {
        if self.is_marking() {
            self.satb.lock().push(r);
        }
    }

    fn drain_satb(&self) -> Vec<ObjRef> {
        std::mem::take(&mut *self.satb.lock())
    }

    /// True if an incremental cycle is in flight (begun, not yet swept).
    pub fn cycle_active(&self) -> bool {
        self.work.lock().is_some()
    }
}

/// Statistics from one concurrent collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgcOutcome {
    /// Bytes of entangled-space objects reclaimed.
    pub swept_bytes: u64,
    /// Number of entangled-space objects reclaimed.
    pub swept_objects: usize,
    /// Entangled chunks freed outright (all contents dead).
    pub freed_chunks: usize,
    /// Objects visited by the mark phase.
    pub marked_objects: usize,
}

/// Traces up to `budget` objects from the mark state. Returns the number
/// traced (0 means the stack is empty).
fn advance_mark(store: &Store, ms: &mut MarkState, budget: usize) -> usize {
    mpl_fail::hit_hard("cgc/mark");
    let mut traced = 0;
    while traced < budget {
        let Some(r) = ms.stack.pop() else { break };
        let r = store.resolve(r);
        if !ms.visited.insert(r) {
            continue;
        }
        let Some(chunk) = store.chunks().try_get(r.chunk()) else {
            continue; // racing reclamation of a dead region
        };
        let Some(obj) = chunk.try_get(r.slot()) else {
            continue;
        };
        if obj.header().is_dead() {
            continue;
        }
        traced += 1;
        if obj.try_mark() {
            ms.marked.push(r);
        }
        if obj.kind().is_traced() {
            for w in obj.field_words() {
                if let Some(t) = w.pointer() {
                    ms.stack.push(t);
                }
            }
        }
    }
    traced
}

/// Starts an incremental cycle: snapshots the roots and raises the
/// marking flag (mutators begin SATB logging). No-op if a cycle is
/// already in flight.
pub fn cgc_begin(store: &Store, state: &CgcState, roots: impl IntoIterator<Item = ObjRef>) {
    let _ = store;
    let mut work = state.work.lock();
    if work.is_some() {
        return;
    }
    state.marking.store(true, Ordering::Release);
    *work = Some(CycleState::Mark(MarkState {
        stack: roots.into_iter().collect(),
        visited: HashSet::new(),
        marked: Vec::new(),
    }));
}

/// Advances the in-flight cycle by roughly `budget` units (traced objects
/// while marking; swept chunks while sweeping). Returns the outcome when
/// the cycle completes, `None` while work remains (or if no cycle is
/// active).
pub fn cgc_step(store: &Store, state: &CgcState, budget: usize) -> Option<CgcOutcome> {
    let mut guard = state.work.lock();
    // One telemetry span per slice, tagged by the phase the slice works
    // on (sweep and epilogue share the sweep metric, mirroring
    // `finish_cycle` on the monolithic path).
    let _span = mpl_obs::span_guard(match guard.as_ref()? {
        CycleState::Mark(_) => mpl_obs::Metric::CgcMark,
        _ => mpl_obs::Metric::CgcSweep,
    });
    let _stall = crate::stall::guard(match guard.as_ref()? {
        CycleState::Mark(_) => crate::stall::CGC_MARK,
        _ => crate::stall::CGC_SWEEP,
    });
    match guard.as_mut()? {
        CycleState::Mark(ms) => {
            advance_mark(store, ms, budget);
            if !ms.stack.is_empty() {
                return None;
            }
            // Stack empty: drain the SATB log to a fixpoint (bounded by
            // the same budget per call — a busy mutator keeps the cycle
            // alive rather than extending this pause).
            let extra = state.drain_satb();
            if !extra.is_empty() {
                ms.stack.extend(extra);
                advance_mark(store, ms, budget);
                if !ms.stack.is_empty() || !state.satb.lock().is_empty() {
                    return None;
                }
            }
            // Mark fixpoint reached. Reachability can only shrink from
            // here (SATB covered every hide while the flag was up), so
            // the sweep may proceed in slices with the flag down.
            state.marking.store(false, Ordering::Release);
            let CycleState::Mark(ms) = guard.take().expect("cycle present") else {
                unreachable!()
            };
            let chunks: Vec<u32> = store
                .chunks()
                .live_chunks()
                .into_iter()
                .filter(|c| c.is_entangled())
                .map(|c| c.id())
                .collect();
            let out = CgcOutcome {
                marked_objects: ms.marked.len(),
                ..CgcOutcome::default()
            };
            *guard = Some(CycleState::Sweep {
                marked: ms.marked,
                chunks,
                cursor: 0,
                out,
            });
            None
        }
        CycleState::Sweep {
            chunks,
            cursor,
            out,
            ..
        } => {
            let end = cursor.saturating_add(budget.max(1)).min(chunks.len());
            for &cid in &chunks[*cursor..end] {
                sweep_chunk(store, cid, out);
            }
            *cursor = end;
            if *cursor < chunks.len() {
                return None;
            }
            let Some(CycleState::Sweep { marked, out, .. }) = guard.take() else {
                unreachable!()
            };
            *guard = Some(CycleState::Epilogue {
                marked,
                cursor: 0,
                out,
            });
            None
        }
        CycleState::Epilogue {
            marked,
            cursor,
            out: _,
        } => {
            let end = cursor.saturating_add(budget.max(1)).min(marked.len());
            for r in &marked[*cursor..end] {
                if let Some(chunk) = store.chunks().try_get(r.chunk()) {
                    if let Some(obj) = chunk.try_get(r.slot()) {
                        obj.clear_mark();
                    }
                }
            }
            *cursor = end;
            if *cursor < marked.len() {
                return None;
            }
            let Some(CycleState::Epilogue { out, .. }) = guard.take() else {
                unreachable!()
            };
            drop(guard);
            // Index pruning is proportional to the (usually small) pinned
            // population; it stays in the final slice.
            prune_entangled_indexes(store);
            store.stats().on_cgc(out.swept_bytes);
            Some(out)
        }
    }
}

/// Runs a full mark–sweep cycle over the entangled spaces.
///
/// `roots` must include every live task's shadow stack and any pending
/// results; the runtime is responsible for assembling them (a brief
/// handshake under real threads).
pub fn collect_entangled(
    store: &Store,
    state: &CgcState,
    roots: impl IntoIterator<Item = ObjRef>,
) -> CgcOutcome {
    // ---- mark ----------------------------------------------------------
    let span_mark = mpl_obs::span_start();
    let stall_mark = crate::stall::enter(crate::stall::CGC_MARK);
    state.marking.store(true, Ordering::Release);
    let mut ms = MarkState {
        stack: roots.into_iter().collect(),
        visited: HashSet::new(),
        marked: Vec::new(),
    };
    loop {
        advance_mark(store, &mut ms, usize::MAX);
        // Drain the SATB log to a fixpoint.
        let extra = state.drain_satb();
        if extra.is_empty() {
            break;
        }
        ms.stack.extend(extra);
    }
    state.marking.store(false, Ordering::Release);
    mpl_obs::span_close(mpl_obs::Metric::CgcMark, span_mark);
    crate::stall::exit(stall_mark);
    let _span_sweep = mpl_obs::span_guard(mpl_obs::Metric::CgcSweep);
    let _stall_sweep = crate::stall::guard(crate::stall::CGC_SWEEP);
    finish_cycle(store, ms)
}

/// Sweep + epilogue shared by the monolithic and incremental paths.
fn finish_cycle(store: &Store, ms: MarkState) -> CgcOutcome {
    let mut out = CgcOutcome {
        marked_objects: ms.marked.len(),
        ..CgcOutcome::default()
    };
    let chunk_ids: Vec<u32> = store
        .chunks()
        .live_chunks()
        .into_iter()
        .filter(|c| c.is_entangled())
        .map(|c| c.id())
        .collect();
    for cid in chunk_ids {
        sweep_chunk(store, cid, &mut out);
    }
    epilogue(store, ms.marked, out)
}

/// Sweeps one entangled chunk: reclaims unmarked entangled-space objects
/// and frees the chunk outright when everything in it is dead.
fn sweep_chunk(store: &Store, cid: u32, out: &mut CgcOutcome) {
    mpl_fail::hit_hard("cgc/sweep");
    let Some(chunk) = store.chunks().try_get(cid) else {
        return; // freed between slices
    };
    let mut retainers = 0usize;
    let mut swept_here = 0usize;
    for (slot, obj) in chunk.objects() {
        let header = obj.header();
        if header.is_dead() {
            continue;
        }
        if header.is_forwarded() {
            // The forwarding word may still be needed by stale
            // references (the moving collector repairs what it can
            // reach, but entangled readers resolve lazily): the chunk
            // must survive; the owner's next local collection retires
            // it once it proves full evacuation.
            retainers += 1;
            continue;
        }
        // `try_kill_swept` re-verifies entangled-space/unmarked/unmoved on
        // its CAS and returns the *atomic* pre-kill header — the earlier
        // `header` load above may be stale by now (e.g. a pin landed in
        // between), and settling pin accounting from a stale header
        // drifted the pinned-bytes gauge.
        if let Some(killed) = obj.try_kill_swept() {
            let size = obj.size_bytes();
            chunk.sub_live_bytes(size);
            if killed.is_pinned() {
                chunk.add_pinned(-1);
                store.stats().sub_pinned_bytes(size);
            }
            events::emit(EventKind::DeadMark, cid, slot, DEAD_BY_CGC);
            out.swept_bytes += size as u64;
            out.swept_objects += 1;
            swept_here += size;
        } else {
            retainers += 1;
        }
    }
    if swept_here != 0 {
        // Mirror the global live-bytes adjustment onto the tenant budget
        // of the chunk's (canonical) owning heap, if any.
        let owner = store.heaps().find(chunk.owner());
        if let Some(budget) = store.heaps().info(owner).budget() {
            budget.credit(swept_here);
        }
    }
    if retainers == 0 && chunk.is_full() {
        // Every object is dead (not merely moved): no reference can
        // need this chunk again.
        store.chunks().free(chunk.id());
        out.freed_chunks += 1;
    }
}

/// Clears mark bits, prunes dead index entries, records statistics.
fn epilogue(store: &Store, marked: Vec<ObjRef>, out: CgcOutcome) -> CgcOutcome {
    for r in marked {
        if let Some(chunk) = store.chunks().try_get(r.chunk()) {
            if let Some(obj) = chunk.try_get(r.slot()) {
                obj.clear_mark();
            }
        }
    }
    prune_entangled_indexes(store);

    store.stats().on_cgc(out.swept_bytes);
    crate::audit::audit_phase(store, "cgc/sweep", 0, None);
    out
}

/// Drops dead entries from every heap's entangled-object index.
fn prune_entangled_indexes(store: &Store) {
    for id in 0..store.heaps().len() as u32 {
        if store.heaps().find(id) != id {
            continue; // merged away
        }
        let info = store.heaps().info(id);
        let entries = info.take_entangled();
        for r in entries {
            let live = store
                .chunks()
                .try_get(r.chunk())
                .and_then(|c| c.try_get(r.slot()).map(|o| !o.header().is_dead()))
                .unwrap_or(false);
            if live {
                // Re-register through the seal-chasing path: the heap may
                // have joined (and sealed) while we pruned.
                store.heaps().register_entangled(id, r, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graveyard::Graveyard;
    use crate::lgc::collect_local;
    use mpl_heap::{ObjKind, StoreConfig, Value};

    fn store() -> Store {
        Store::new(StoreConfig {
            chunk_slots: 4,
            ..Default::default()
        })
    }

    /// Builds the canonical entanglement scenario: a sibling task pins an
    /// object in `l`, then LGC of `l` shields it in place.
    fn entangle_one(s: &Store) -> (u32, ObjRef) {
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(11)]);
        s.pin(x, 0);
        let g = Graveyard::new();
        let mut roots: [ObjRef; 0] = [];
        collect_local(s, l, &mut roots, &g, true);
        assert!(s.handle(x).header().in_entangled_space());
        (l, x)
    }

    #[test]
    fn reachable_entangled_object_survives() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, vec![x]);
        assert_eq!(out.swept_objects, 0);
        assert!(!s.handle(x).header().is_dead());
        assert!(!s.handle(x).header().is_marked(), "marks cleared after");
    }

    #[test]
    fn unreachable_entangled_object_is_swept() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let pinned_before = s.stats().snapshot().pinned_bytes;
        assert!(pinned_before > 0);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, Vec::<ObjRef>::new());
        assert_eq!(out.swept_objects, 1);
        assert!(s
            .chunks()
            .try_get(x.chunk())
            .map(|c| c.try_get(x.slot()).unwrap().header().is_dead())
            .unwrap_or(true));
        assert_eq!(s.stats().snapshot().pinned_bytes, 0);
        assert_eq!(s.stats().snapshot().cgc_runs, 1);
    }

    #[test]
    fn satb_log_preserves_hidden_pointer() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        // Simulate a mutator hiding `x` during marking: no root mentions
        // it, but the overwritten value is logged.
        state.marking.store(true, Ordering::Release);
        state.satb_log(x);
        state.marking.store(false, Ordering::Release);
        // The buffered entry must be honored by the next cycle.
        let out = collect_entangled(&s, &state, Vec::<ObjRef>::new());
        assert_eq!(out.swept_objects, 0, "SATB-logged object survives");
        assert!(!s.handle(x).header().is_dead());
    }

    #[test]
    fn disentangled_heap_sweeps_nothing() {
        let s = store();
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, vec![a]);
        assert_eq!(out.swept_objects, 0);
        assert_eq!(out.swept_bytes, 0);
        assert_eq!(out.freed_chunks, 0);
    }

    #[test]
    fn entangled_index_pruned_after_sweep() {
        let s = store();
        let (l, _x) = entangle_one(&s);
        let state = CgcState::new();
        collect_entangled(&s, &state, Vec::<ObjRef>::new());
        let canon = s.heaps().find(l);
        assert_eq!(s.heaps().info(canon).entangled_len(), 0);
    }

    #[test]
    fn incremental_cycle_matches_monolithic() {
        let s = store();
        let (_l, live) = entangle_one(&s);
        let (_l2, dead) = entangle_one(&s);
        let state = CgcState::new();
        cgc_begin(&s, &state, vec![live]);
        assert!(state.cycle_active());
        assert!(state.is_marking());
        let mut out = None;
        let mut slices = 0;
        while out.is_none() {
            out = cgc_step(&s, &state, 1);
            slices += 1;
            assert!(slices < 100, "cycle must terminate");
        }
        let out = out.unwrap();
        assert!(!state.cycle_active());
        assert!(!state.is_marking());
        assert_eq!(out.swept_objects, 1, "exactly the unreferenced pin");
        assert!(!s.handle(live).header().is_dead());
        assert!(s
            .chunks()
            .try_get(dead.chunk())
            .map(|c| c.try_get(dead.slot()).unwrap().header().is_dead())
            .unwrap_or(true));
    }

    #[test]
    fn satb_between_slices_preserves_hidden_objects() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        // A second population so the trace takes more than one slice.
        let root2 = s.new_root_heap();
        let mut prev = s.alloc_values(root2, ObjKind::Ref, &[Value::Int(0)]);
        for i in 0..16 {
            prev = s.alloc_values(root2, ObjKind::Ref, &[Value::Obj(prev)]);
            let _ = i;
        }
        let state = CgcState::new();
        cgc_begin(&s, &state, vec![prev]);
        // First slice runs...
        assert!(cgc_step(&s, &state, 2).is_none(), "chain needs more slices");
        // ...then a mutator "hides" x behind an overwrite, logging it.
        state.satb_log(x);
        let mut out = None;
        while out.is_none() {
            out = cgc_step(&s, &state, 4);
        }
        assert_eq!(out.unwrap().swept_objects, 0, "the logged pin survives");
        assert!(!s.handle(x).header().is_dead());
    }

    #[test]
    fn step_without_begin_is_a_noop() {
        let s = store();
        let state = CgcState::new();
        assert!(cgc_step(&s, &state, 8).is_none());
        assert!(!state.cycle_active());
    }

    #[test]
    fn begin_is_idempotent_while_active() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        cgc_begin(&s, &state, vec![x]);
        // A second begin with *no* roots must not clobber the snapshot.
        cgc_begin(&s, &state, Vec::<ObjRef>::new());
        let mut out = None;
        while out.is_none() {
            out = cgc_step(&s, &state, 8);
        }
        assert_eq!(out.unwrap().swept_objects, 0, "original roots retained");
    }

    #[test]
    fn marking_traverses_through_normal_objects() {
        let s = store();
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(5)]);
        s.pin(x, 0);
        let g = Graveyard::new();
        let mut roots: [ObjRef; 0] = [];
        collect_local(&s, l, &mut roots, &g, true);
        // Root -> holder -> x: the path crosses a disentangled object.
        let holder = s.alloc_values(root, ObjKind::Tuple, &[Value::Obj(x)]);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, vec![holder]);
        assert_eq!(out.swept_objects, 0);
        assert!(out.marked_objects >= 2);
    }
}
