//! CGC — the concurrent, non-moving collector for entangled objects.
//!
//! The local collector shields pinned objects and their closure in place;
//! reclaiming them requires knowing global reachability, which is this
//! collector's job. It is a snapshot-at-the-beginning (SATB) mark–sweep,
//! restructured as **work packets** scheduled on the `mpl-sched` pool:
//!
//! * **Snapshot** — [`cgc_begin`] raises the marking flag, then runs an
//!   **epoch handshake** with every registered mutator shard, and only
//!   then asks the runtime for root packets. The semantic snapshot
//!   instant is the completion of the handshake: every mutator has
//!   either acknowledged the new epoch (so its later overwrites pre-log
//!   into a SATB buffer) or sits inside a *safe window* (fork
//!   suspension, a GC, the allocation pressure ladder) where it performs
//!   no unlogged hides. Because roots are assembled *after* the
//!   handshake, a pointer a mutator moved from a shared slot into its
//!   own root stack just before the snapshot is still visible — this
//!   closes the check-then-act race where a mutator loading
//!   `marking == false` as the collector raised the flag could drop an
//!   overwritten pointer.
//! * **Mark** — per-task root vecs become the first grey packets; worker
//!   tracers run [`Trace` packets](self) with local mark stacks,
//!   spilling half of an overgrown stack back to the shared grey queue
//!   and handing packets off through `mpl_sched::try_join` binary
//!   splits. Mark bits live in per-block **side-metadata bitmaps**
//!   (`mpl-heap`), set with a single atomic `fetch_or` that also marks
//!   the object's **lines**, so racing tracers are benign and the sweep
//!   can consult line granularity. Mutators log overwritten pointers and
//!   fresh pins into per-task **SATB shards** (modbuf-style buffers,
//!   flushed at fork/join/capacity like the mutator remset buffers); the
//!   collector drains shards to a fixpoint, re-handshakes, re-drains,
//!   and only then declares mark termination.
//! * **Sweep** — one packet per entangled block, each a **line-mark
//!   sweep**: only unmarked object starts (`obj_start & !mark`, one
//!   bitmap AND per 64 objects) are visited; a block whose line map is
//!   clean and holds no retainers is freed wholesale. Each packet
//!   accumulates a local [`CgcOutcome`] (including per-tenant budget
//!   credits) merged by atomic adds. Disentangled data is never swept
//!   here (and never pays): a program with no entanglement never
//!   triggers this collector.
//! * **Epilogue** — clear mark and line bitmaps block-wise (the blocks
//!   the marked list touched on a clean cycle; every live block when a
//!   packet panicked and the marked list may be incomplete), prune
//!   entangled indexes, publish stats. Clearing is a bitmap wipe, not an
//!   object walk.
//!
//! Packet execution is crash-isolated: a panicking trace packet (real or
//! injected via the `cgc/packet` failpoint) flags the cycle *dirty*, is
//! re-enqueued (marking is idempotent), and before mark termination a
//! **repair pass** re-scans the fields of every marked object so a
//! packet that died between marking an object and pushing its fields
//! cannot leave an under-traced hole.
//!
//! Under the sequential executor the packets degenerate to a loop on the
//! calling thread and the SATB buffers stay empty.
//!
//! # Incremental marking
//!
//! [`collect_entangled`] drives a whole cycle to completion. For bounded
//! pauses, the same cycle can be **sliced**: [`cgc_begin`] snapshots and
//! raises the flag; repeated [`cgc_step`] calls advance the current
//! bucket by a bounded budget (mutators run between slices, logging into
//! their shards). Soundness is the usual SATB argument — everything live
//! at the snapshot is either reached from the snapshot roots or was
//! logged when a mutator hid it — plus one observation specific to this
//! runtime: objects can only *enter* a sweepable state (the entangled
//! space) by being pinned, and the pin path logs them.

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mpl_heap::events::{self, EventKind, DEAD_BY_CGC};
use mpl_heap::{ObjRef, Store};

/// Refs per grey packet when chunking roots, SATB drains, and repairs.
const PACKET_REFS: usize = 128;
/// A tracer whose local stack outgrows this spills half back to grey.
const SPILL_LIMIT: usize = 512;
/// Mutator shard buffers flush into the global SATB log at this size.
const MODBUF_CAP: usize = 128;
/// Give up re-enqueueing packets after this many panics in one cycle
/// (a failpoint plan set to `Always` must not spin forever).
const MAX_PACKET_PANICS: u64 = 256;

const PHASE_IDLE: u8 = 0;
const PHASE_MARK: u8 = 1;
const PHASE_SWEEP: u8 = 2;
const PHASE_EPILOGUE: u8 = 3;

/// A per-task SATB buffer ("modbuf") plus the handshake cells the
/// collector uses to establish the snapshot boundary.
///
/// Register one per mutator task via [`CgcState::register_shard`]; log
/// through [`CgcState::satb_log_shard`]; acknowledge snapshot epochs via
/// [`CgcState::poll_handshake`] from allocation safepoints and the
/// slow-tier write barrier; and bracket blocking regions (fork
/// suspension, collections, gate waits) with [`CgcState::enter_safe`] /
/// [`CgcState::exit_safe`] so a parked task never stalls a handshake.
#[derive(Debug, Default)]
pub struct SatbShard {
    buf: Mutex<Vec<ObjRef>>,
    /// Safe-window depth: while > 0 the owner performs no unlogged
    /// overwrites, so the collector may treat the shard as acknowledged.
    safe: AtomicU64,
    /// Last snapshot epoch the owner acknowledged.
    acked: AtomicU64,
}

/// Shared state coordinating mutators with a concurrent mark phase.
#[derive(Debug, Default)]
pub struct CgcState {
    marking: AtomicBool,
    /// Relaxed phase tag (`PHASE_*`); lets `cycle_active` avoid the
    /// cycle mutex entirely (the allocation pressure ladder polls it).
    phase: AtomicU8,
    /// Snapshot epoch, bumped by each handshake.
    epoch: AtomicU64,
    /// Global SATB log: shard flush target, and the direct target for
    /// shard-less loggers (tests, the sequential executor).
    satb: Mutex<Vec<ObjRef>>,
    shards: Mutex<Vec<Arc<SatbShard>>>,
    /// In-flight cycle; the lock doubles as the coordinator gate.
    cycle: Mutex<Option<Cycle>>,
    /// A packet panicked since the last repair pass: re-scan marked
    /// objects' fields before declaring mark termination.
    needs_repair: AtomicBool,
    /// A packet panicked anywhere this cycle: the marked list may be
    /// incomplete, so the epilogue clears bitmaps in every live block.
    dirty_cycle: AtomicBool,
    packet_panics: AtomicU64,
    packets: AtomicU64,
    packet_retries: AtomicU64,
}

/// The stage an in-flight cycle is in; buckets run strictly in order
/// roots → trace-to-fixpoint (incl. SATB drain + handshake) → sweep →
/// epilogue.
#[derive(Debug)]
enum Stage {
    Mark,
    Sweep {
        blocks: Vec<u32>,
        cursor: usize,
    },
    /// Clear mark/line bitmaps block-wise. On a clean cycle this holds
    /// exactly the blocks the marked list touched; on a dirty cycle
    /// (a packet panicked, the marked list may be incomplete) it holds
    /// every live block.
    Epilogue {
        blocks: Vec<u32>,
        cursor: usize,
    },
}

/// An in-flight cycle: the shared grey-packet queue, the marked list for
/// the epilogue, and atomically merged outcome cells.
#[derive(Debug)]
struct Cycle {
    stage: Stage,
    grey: Mutex<Vec<Vec<ObjRef>>>,
    marked: Mutex<Vec<ObjRef>>,
    /// Blocks whose sweep packet panicked; re-swept before the epilogue
    /// (kills are idempotent CAS transitions, so re-sweeping is safe).
    resweep: Mutex<Vec<u32>>,
    out: OutcomeCells,
}

impl Cycle {
    fn new(root_packets: Vec<Vec<ObjRef>>) -> Cycle {
        Cycle {
            stage: Stage::Mark,
            grey: Mutex::new(root_packets),
            marked: Mutex::new(Vec::new()),
            resweep: Mutex::new(Vec::new()),
            out: OutcomeCells::default(),
        }
    }
}

/// [`CgcOutcome`] as atomic cells so sweep/trace packets can merge their
/// local tallies without a lock.
#[derive(Debug, Default)]
struct OutcomeCells {
    swept_bytes: AtomicU64,
    swept_objects: AtomicUsize,
    freed_blocks: AtomicUsize,
    marked_objects: AtomicUsize,
}

impl OutcomeCells {
    fn merge(&self, o: &CgcOutcome) {
        self.swept_bytes.fetch_add(o.swept_bytes, Ordering::Relaxed);
        self.swept_objects
            .fetch_add(o.swept_objects, Ordering::Relaxed);
        self.freed_blocks
            .fetch_add(o.freed_blocks, Ordering::Relaxed);
        self.marked_objects
            .fetch_add(o.marked_objects, Ordering::Relaxed);
    }

    fn get(&self) -> CgcOutcome {
        CgcOutcome {
            swept_bytes: self.swept_bytes.load(Ordering::Relaxed),
            swept_objects: self.swept_objects.load(Ordering::Relaxed),
            freed_blocks: self.freed_blocks.load(Ordering::Relaxed),
            marked_objects: self.marked_objects.load(Ordering::Relaxed),
        }
    }
}

impl CgcState {
    /// Creates idle state.
    pub fn new() -> CgcState {
        CgcState::default()
    }

    /// True while a mark phase is active; mutators must log overwritten
    /// pointers via [`CgcState::satb_log`] / [`CgcState::satb_log_shard`].
    #[inline]
    pub fn is_marking(&self) -> bool {
        self.marking.load(Ordering::Acquire)
    }

    /// Logs a pointer that must survive the current snapshot (an
    /// overwritten field value, or a newly pinned object) into the
    /// global log. Shard-less fallback; tasks prefer
    /// [`CgcState::satb_log_shard`].
    pub fn satb_log(&self, r: ObjRef) {
        if self.is_marking() {
            self.satb.lock().push(r);
        }
    }

    /// Logs into a per-task shard buffer, flushing to the global log at
    /// capacity (the mutator-side `cgc/modbuf-flush` failpoint site).
    pub fn satb_log_shard(&self, shard: &SatbShard, r: ObjRef) {
        if !self.is_marking() {
            return;
        }
        let flush = {
            let mut buf = shard.buf.lock();
            buf.push(r);
            if buf.len() >= MODBUF_CAP {
                Some(std::mem::take(&mut *buf))
            } else {
                None
            }
        };
        if let Some(drained) = flush {
            mpl_fail::hit_hard("cgc/modbuf-flush");
            self.satb.lock().extend(drained);
        }
    }

    /// Flushes a shard's buffered entries into the global log
    /// (fork/join, task finish, safepoint entry).
    pub fn flush_shard(&self, shard: &SatbShard) {
        let drained = std::mem::take(&mut *shard.buf.lock());
        if !drained.is_empty() {
            mpl_fail::hit_hard("cgc/modbuf-flush");
            self.satb.lock().extend(drained);
        }
    }

    /// Registers a new mutator shard, pre-acknowledged at the current
    /// epoch (the shards-lock acquisition orders the registration
    /// against any in-flight handshake: a handshake that misses this
    /// shard in its list cannot be waiting on it, and the registrant
    /// reads the epoch/flag stores made before the lock was released).
    pub fn register_shard(&self) -> Arc<SatbShard> {
        let mut shards = self.shards.lock();
        let shard = Arc::new(SatbShard {
            buf: Mutex::new(Vec::new()),
            safe: AtomicU64::new(0),
            acked: AtomicU64::new(self.epoch.load(Ordering::SeqCst)),
        });
        shards.push(Arc::clone(&shard));
        shard
    }

    /// Deregisters a shard (task finish), draining any buffered entries
    /// into the global log first.
    pub fn deregister_shard(&self, shard: &Arc<SatbShard>) {
        self.flush_shard(shard);
        self.shards.lock().retain(|s| !Arc::ptr_eq(s, shard));
    }

    /// Cheap handshake poll for mutator safepoints (allocation slices,
    /// the slow-tier write barrier): two relaxed loads when idle;
    /// flush + acknowledge when a new snapshot epoch is pending.
    #[inline]
    pub fn poll_handshake(&self, shard: &SatbShard) {
        let e = self.epoch.load(Ordering::Relaxed);
        if shard.acked.load(Ordering::Relaxed) != e {
            self.ack(shard);
        }
    }

    #[cold]
    fn ack(&self, shard: &SatbShard) {
        // Flush before acknowledging so everything logged before the ack
        // is visible to the collector's post-handshake re-drain.
        self.flush_shard(shard);
        let e = self.epoch.load(Ordering::SeqCst);
        shard.acked.store(e, Ordering::SeqCst);
    }

    /// Enters a safe window: the owner guarantees no unlogged overwrites
    /// until the matching [`CgcState::exit_safe`]. Buffered entries are
    /// flushed first so a parked task holds no SATB entries hostage.
    /// Windows nest (fork suspension around a collection around the
    /// pressure ladder).
    pub fn enter_safe(&self, shard: &SatbShard) {
        self.flush_shard(shard);
        shard.safe.fetch_add(1, Ordering::SeqCst);
        self.ack(shard);
    }

    /// Leaves a safe window. The ordering here is load-bearing: the
    /// depth decrement (SeqCst) precedes the epoch load (SeqCst)
    /// precedes the ack store. If a concurrent handshake read this
    /// shard as safe, this exit's decrement is SC-after that read, so
    /// the epoch load observes the handshake's epoch and the ack plus
    /// all later `is_marking` loads see the raised flag; if the
    /// handshake read the shard as unsafe it waits for the ack, which
    /// implies the same visibility. Either way no overwrite after the
    /// window can go unlogged against the new snapshot.
    pub fn exit_safe(&self, shard: &SatbShard) {
        shard.safe.fetch_sub(1, Ordering::SeqCst);
        let e = self.epoch.load(Ordering::SeqCst);
        shard.acked.store(e, Ordering::SeqCst);
    }

    /// True if a cycle is in flight (begun, not yet finished). One
    /// relaxed load — callers on the allocation pressure ladder poll
    /// this on every slice and must not contend with in-flight mark
    /// packets.
    #[inline]
    pub fn cycle_active(&self) -> bool {
        self.phase.load(Ordering::Relaxed) != PHASE_IDLE
    }

    /// Drains the global log and every shard buffer.
    fn drain_all_satb(&self) -> Vec<ObjRef> {
        let mut out = std::mem::take(&mut *self.satb.lock());
        let shards: Vec<Arc<SatbShard>> = self.shards.lock().clone();
        for s in shards {
            out.extend(std::mem::take(&mut *s.buf.lock()));
        }
        out
    }

    /// Bumps the snapshot epoch and waits until every registered shard
    /// has acknowledged it or sits in a safe window. The shard list is
    /// re-cloned each spin so deregistration unblocks the wait. Called
    /// at the snapshot boundary and again at mark termination.
    fn handshake(&self) {
        let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let _stall = crate::stall::guard(crate::stall::CGC_MARK);
        let mut spins = 0u32;
        loop {
            let shards: Vec<Arc<SatbShard>> = self.shards.lock().clone();
            let pending = shards
                .iter()
                .any(|s| s.safe.load(Ordering::SeqCst) == 0 && s.acked.load(Ordering::SeqCst) < e);
            if !pending {
                return;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Statistics from one concurrent collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgcOutcome {
    /// Bytes of entangled-space objects reclaimed.
    pub swept_bytes: u64,
    /// Number of entangled-space objects reclaimed.
    pub swept_objects: usize,
    /// Entangled blocks freed outright (all contents dead).
    pub freed_blocks: usize,
    /// Objects visited by the mark phase.
    pub marked_objects: usize,
}

fn push_packets(grey: &Mutex<Vec<Vec<ObjRef>>>, refs: Vec<ObjRef>) {
    if refs.is_empty() {
        return;
    }
    let mut g = grey.lock();
    for chunk in refs.chunks(PACKET_REFS) {
        g.push(chunk.to_vec());
    }
}

/// Runs `f` over every item, fanning out through recursive
/// `try_join` binary splits when a scheduler worker context is
/// installed; plain loop otherwise (sequential executor, unit tests).
fn par_each<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 || !mpl_sched::on_worker_thread() {
        for it in items {
            f(it);
        }
        return;
    }
    let mut left = items;
    let right = left.split_off(left.len() / 2);
    match mpl_sched::try_join(|| par_each(left, f), || par_each(right, f)) {
        Ok(_) => {}
        Err((a, b)) => {
            a();
            b();
        }
    }
}

/// The body of one trace packet: pop refs, mark, push fields, spilling
/// an overgrown local stack (and any budget-exhausted remainder) back to
/// the shared grey queue.
fn run_trace_packet(store: &Store, cycle: &Cycle, mut local: Vec<ObjRef>, remaining: &AtomicUsize) {
    mpl_fail::hit_hard("cgc/packet");
    let mut newly_marked: Vec<ObjRef> = Vec::new();
    while let Some(r0) = local.pop() {
        let charge =
            remaining.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        if charge.is_err() {
            // Slice budget exhausted: hand everything back as a packet
            // so the cycle stays alive for the next slice.
            local.push(r0);
            break;
        }
        let r = store.resolve(r0);
        let Some(block) = store.blocks().try_get(r.block()) else {
            continue; // racing reclamation of a dead region
        };
        let Some(obj) = block.try_get(r.word()) else {
            continue;
        };
        if obj.header().is_dead() {
            continue;
        }
        if !obj.try_mark() {
            continue; // another tracer won this object
        }
        newly_marked.push(r);
        if obj.kind().is_traced() {
            for w in obj.field_words() {
                if let Some(t) = w.pointer() {
                    local.push(t);
                }
            }
        }
        if local.len() >= SPILL_LIMIT {
            let half = local.split_off(local.len() / 2);
            cycle.grey.lock().push(half);
        }
    }
    if !local.is_empty() {
        cycle.grey.lock().push(local);
    }
    if !newly_marked.is_empty() {
        cycle
            .out
            .marked_objects
            .fetch_add(newly_marked.len(), Ordering::Relaxed);
        cycle.marked.lock().extend(newly_marked);
    }
}

/// Runs one trace packet with crash isolation: a panic (real or via the
/// `cgc/packet` failpoint) flags the cycle dirty, schedules a repair
/// pass, and re-enqueues a clone of the packet (marking is idempotent).
fn trace_packet(
    store: &Store,
    state: &CgcState,
    cycle: &Cycle,
    packet: Vec<ObjRef>,
    remaining: &AtomicUsize,
) {
    state.packets.fetch_add(1, Ordering::Relaxed);
    let _span = mpl_obs::span_guard(mpl_obs::Metric::CgcPacket);
    // Re-arm the stall clock per packet so a long parallel/sliced mark
    // never looks like one stalled phase to the watchdog.
    let _stall = crate::stall::guard(crate::stall::CGC_MARK);
    let retry = packet.clone();
    let res = catch_unwind(AssertUnwindSafe(|| {
        run_trace_packet(store, cycle, packet, remaining)
    }));
    if let Err(payload) = res {
        state.needs_repair.store(true, Ordering::SeqCst);
        state.dirty_cycle.store(true, Ordering::SeqCst);
        state.packet_retries.fetch_add(1, Ordering::Relaxed);
        if state.packet_panics.fetch_add(1, Ordering::Relaxed) >= MAX_PACKET_PANICS {
            resume_unwind(payload);
        }
        cycle.grey.lock().push(retry);
    }
}

/// Field refs of every currently marked object in every live block —
/// the repair seed after a packet panic (a dead tracer may have marked
/// an object without pushing its fields).
fn repair_refs(store: &Store) -> Vec<ObjRef> {
    let mut refs = Vec::new();
    for block in store.blocks().live_blocks() {
        for (off, obj) in block.objects() {
            if obj.header().is_dead() || !block.is_marked(off) {
                continue;
            }
            if obj.kind().is_traced() {
                for w in obj.field_words() {
                    if let Some(t) = w.pointer() {
                        refs.push(t);
                    }
                }
            }
        }
    }
    refs
}

/// Filters a SATB drain down to refs that still need marking. An entry
/// whose object is already marked (or dead, or reclaimed) is no new
/// work — without this filter a mutator that keeps re-logging the same
/// live object (every barriered overwrite of a hot field) would hold
/// the mark fixpoint open forever. Peeks the mark bit without setting
/// it, so the tracer's `try_mark` visited-gate still governs tracing;
/// two overlapping drains passing the same unmarked ref is benign for
/// the same reason two tracers racing on it is.
fn fresh_satb(store: &Store, drained: Vec<ObjRef>) -> Vec<ObjRef> {
    let mut fresh = Vec::new();
    for r0 in drained {
        let r = store.resolve(r0);
        let Some(block) = store.blocks().try_get(r.block()) else {
            continue;
        };
        let Some(obj) = block.try_get(r.word()) else {
            continue;
        };
        if obj.header().is_dead() || obj.is_marked() {
            continue;
        }
        fresh.push(r);
    }
    fresh
}

/// Advances marking by up to `budget` marked objects. Returns true when
/// the mark fixpoint (grey empty, SATB drained, handshake clean, repairs
/// done) is reached within the budget.
fn mark_slice(store: &Store, state: &CgcState, cycle: &Cycle, budget: usize) -> bool {
    mpl_fail::hit_hard("cgc/mark");
    let remaining = AtomicUsize::new(budget);
    loop {
        let packets: Vec<Vec<ObjRef>> = std::mem::take(&mut *cycle.grey.lock());
        if !packets.is_empty() {
            par_each(packets, &|p: Vec<ObjRef>| {
                trace_packet(store, state, cycle, p, &remaining)
            });
            if remaining.load(Ordering::Relaxed) == 0 {
                return false; // budget spent; cycle stays in Mark
            }
            continue;
        }
        // Grey drained: pull whatever mutators logged meanwhile.
        let logged = fresh_satb(store, state.drain_all_satb());
        if !logged.is_empty() {
            push_packets(&cycle.grey, logged);
            continue;
        }
        // Nothing visibly pending. Termination handshake: after every
        // mutator acknowledges (or is safe), re-drain; a late entry
        // either lands in this re-drain or its overwrite postdates all
        // tracing, in which case the old value was already traced.
        state.handshake();
        let logged = fresh_satb(store, state.drain_all_satb());
        if !logged.is_empty() {
            push_packets(&cycle.grey, logged);
            continue;
        }
        if state.needs_repair.swap(false, Ordering::SeqCst) {
            push_packets(&cycle.grey, repair_refs(store));
            continue;
        }
        return true;
    }
}

/// One sweep packet: one entangled block, tallied locally and merged
/// atomically. A panicking packet is queued for a re-sweep (kills are
/// idempotent CAS transitions).
fn sweep_packet(store: &Store, state: &CgcState, cycle: &Cycle, bid: u32) {
    state.packets.fetch_add(1, Ordering::Relaxed);
    let _span = mpl_obs::span_guard(mpl_obs::Metric::CgcPacket);
    let _stall = crate::stall::guard(crate::stall::CGC_SWEEP);
    let res = catch_unwind(AssertUnwindSafe(|| {
        mpl_fail::hit_hard("cgc/packet");
        let mut local = CgcOutcome::default();
        sweep_block(store, bid, &mut local);
        local
    }));
    match res {
        Ok(local) => cycle.out.merge(&local),
        Err(_) => {
            state.dirty_cycle.store(true, Ordering::SeqCst);
            state.packet_retries.fetch_add(1, Ordering::Relaxed);
            if state.packet_panics.fetch_add(1, Ordering::Relaxed) < MAX_PACKET_PANICS {
                cycle.resweep.lock().push(bid);
            }
            // Past the cap: leave the block unswept (floating garbage
            // for the next cycle) rather than spinning.
        }
    }
}

/// One epilogue packet: wipe one block's mark and line bitmaps. A bitmap
/// store per 64 objects — no object walk.
fn clear_block_marks(store: &Store, state: &CgcState, bid: u32) {
    state.packets.fetch_add(1, Ordering::Relaxed);
    let _span = mpl_obs::span_guard(mpl_obs::Metric::CgcPacket);
    let _stall = crate::stall::guard(crate::stall::CGC_SWEEP);
    if let Some(block) = store.blocks().try_get(bid) {
        block.clear_all_marks();
    }
}

/// Starts an incremental cycle: raises the marking flag, handshakes
/// every mutator shard (the snapshot instant), then invokes `roots` —
/// the runtime assembles one packet per task root stack — and seeds the
/// grey queue. No-op if a cycle is already in flight.
///
/// The flag-then-handshake-then-roots order is what makes the snapshot
/// airtight: any mutator overwrite that skipped logging must have
/// happened before its owner acknowledged the epoch, hence before the
/// roots were read — so the overwritten value was either garbage at the
/// snapshot or still reachable from some (post-handshake) root.
pub fn cgc_begin<F>(store: &Store, state: &CgcState, roots: F)
where
    F: FnOnce() -> Vec<Vec<ObjRef>>,
{
    let _ = store;
    let mut cycle = state.cycle.lock();
    if cycle.is_some() {
        return;
    }
    state.marking.store(true, Ordering::SeqCst);
    state.handshake();
    let packets: Vec<Vec<ObjRef>> = roots().into_iter().filter(|p| !p.is_empty()).collect();
    state.phase.store(PHASE_MARK, Ordering::Relaxed);
    *cycle = Some(Cycle::new(packets));
}

/// Advances the in-flight cycle by roughly `budget` units (marked
/// objects while marking; blocks while sweeping or clearing bitmaps in
/// the epilogue). Returns the outcome when the cycle completes, `None`
/// while work remains (or if no cycle is active).
pub fn cgc_step(store: &Store, state: &CgcState, budget: usize) -> Option<CgcOutcome> {
    let mut guard = state.cycle.lock();
    let cycle = guard.as_mut()?;
    let in_mark = matches!(cycle.stage, Stage::Mark);
    // One telemetry span + stall-clock arm per slice, tagged by the
    // bucket the slice works on (sweep and epilogue share the sweep
    // metric); packets nest their own spans and re-arm the clock.
    let _span = mpl_obs::span_guard(if in_mark {
        mpl_obs::Metric::CgcMark
    } else {
        mpl_obs::Metric::CgcSweep
    });
    let _stall = crate::stall::guard(if in_mark {
        crate::stall::CGC_MARK
    } else {
        crate::stall::CGC_SWEEP
    });
    match &cycle.stage {
        Stage::Mark => {
            if !mark_slice(store, state, cycle, budget) {
                return None;
            }
            // Mark fixpoint reached. Reachability can only shrink from
            // here (SATB covered every hide while the flag was up), so
            // the sweep may proceed in packets with the flag down.
            state.marking.store(false, Ordering::SeqCst);
            let blocks: Vec<u32> = store
                .blocks()
                .live_blocks()
                .into_iter()
                .filter(|b| b.is_entangled())
                .map(|b| b.id())
                .collect();
            cycle.stage = Stage::Sweep { blocks, cursor: 0 };
            state.phase.store(PHASE_SWEEP, Ordering::Relaxed);
            None
        }
        Stage::Sweep { .. } => {
            let (batch, finished) = {
                let Stage::Sweep { blocks, cursor } = &mut cycle.stage else {
                    unreachable!()
                };
                let end = cursor.saturating_add(budget.max(1)).min(blocks.len());
                let batch = blocks[*cursor..end].to_vec();
                *cursor = end;
                (batch, end >= blocks.len())
            };
            let cref: &Cycle = cycle;
            par_each(batch, &|bid: u32| sweep_packet(store, state, cref, bid));
            if !finished {
                return None;
            }
            let retry: Vec<u32> = std::mem::take(&mut *cycle.resweep.lock());
            if !retry.is_empty() {
                cycle.stage = Stage::Sweep {
                    blocks: retry,
                    cursor: 0,
                };
                return None;
            }
            let marked = std::mem::take(&mut *cycle.marked.lock());
            let blocks: Vec<u32> = if state.dirty_cycle.load(Ordering::SeqCst) {
                store
                    .blocks()
                    .live_blocks()
                    .into_iter()
                    .map(|b| b.id())
                    .collect()
            } else {
                // Clean cycle: only the blocks the mark phase touched
                // carry set bits.
                let touched: HashSet<u32> = marked.iter().map(|r| r.block()).collect();
                touched.into_iter().collect()
            };
            cycle.stage = Stage::Epilogue { blocks, cursor: 0 };
            state.phase.store(PHASE_EPILOGUE, Ordering::Relaxed);
            None
        }
        Stage::Epilogue { .. } => {
            let (batch, finished) = {
                let Stage::Epilogue { blocks, cursor } = &mut cycle.stage else {
                    unreachable!()
                };
                let end = cursor.saturating_add(budget.max(1)).min(blocks.len());
                let batch = blocks[*cursor..end].to_vec();
                *cursor = end;
                (batch, end >= blocks.len())
            };
            par_each(batch, &|bid: u32| clear_block_marks(store, state, bid));
            if !finished {
                return None;
            }
            Some(finish(store, state, &mut guard))
        }
    }
}

/// Final slice: tear down the cycle, prune indexes, publish stats.
fn finish(store: &Store, state: &CgcState, guard: &mut Option<Cycle>) -> CgcOutcome {
    let cycle = guard.take().expect("cycle present");
    let out = cycle.out.get();
    // Index pruning is proportional to the (usually small) pinned
    // population; it stays in the final slice.
    prune_entangled_indexes(store);
    store.stats().on_cgc(out.swept_bytes);
    store.stats().on_cgc_packets(
        state.packets.swap(0, Ordering::Relaxed),
        state.packet_retries.swap(0, Ordering::Relaxed),
    );
    // Census piggyback: the sweep packets already walked every entangled
    // block's bitmaps; the cycle-end delta is two gauge reads.
    if mpl_obs::enabled() {
        mpl_obs::note_gc_census(
            mpl_obs::GcCensusKind::Cgc,
            store.stats().live_bytes() as u64,
            store.blocks().live() as u64,
            out.swept_bytes,
        );
    }
    crate::audit::audit_phase(store, "cgc/sweep", 0, None);
    state.needs_repair.store(false, Ordering::SeqCst);
    state.dirty_cycle.store(false, Ordering::SeqCst);
    state.packet_panics.store(0, Ordering::Relaxed);
    state.phase.store(PHASE_IDLE, Ordering::Relaxed);
    out
}

/// Runs a full mark–sweep cycle over the entangled spaces.
///
/// `roots` is invoked *after* the snapshot handshake and must return one
/// packet per live task's root stack (plus any pending results); the
/// runtime is responsible for assembling them. Packets fan out on the
/// `mpl-sched` pool when the caller holds a worker context (install a
/// driver first); otherwise the cycle runs on the calling thread.
pub fn collect_entangled<F>(store: &Store, state: &CgcState, roots: F) -> CgcOutcome
where
    F: FnOnce() -> Vec<Vec<ObjRef>>,
{
    cgc_begin(store, state, roots);
    loop {
        if let Some(out) = cgc_step(store, state, usize::MAX) {
            return out;
        }
        if !state.cycle_active() {
            return CgcOutcome::default();
        }
    }
}

/// Sweeps one entangled block by its line marks: only **unmarked** object
/// starts (`obj_start & !mark`, one bitmap word per 64 slots) are
/// visited; marked objects are never touched. Reclaims unmarked
/// entangled-space objects and frees the block outright when its line
/// map is clean and nothing retains it.
fn sweep_block(store: &Store, bid: u32, out: &mut CgcOutcome) {
    mpl_fail::hit_hard("cgc/sweep");
    let Some(block) = store.blocks().try_get(bid) else {
        return; // freed between slices
    };
    let mut retainers = 0usize;
    let mut swept_here = 0usize;
    let unmarked: Vec<u32> = block.unmarked_offsets().collect();
    for off in unmarked {
        let Some(obj) = block.try_get(off) else {
            continue;
        };
        let header = obj.header();
        if header.is_dead() {
            continue;
        }
        if header.is_forwarded() {
            // The forwarding word may still be needed by stale
            // references (the moving collector repairs what it can
            // reach, but entangled readers resolve lazily): the block
            // must survive; the owner's next local collection retires
            // it once it proves full evacuation.
            retainers += 1;
            continue;
        }
        // `try_kill_swept` re-verifies entangled-space/unmarked/unmoved on
        // its CAS and returns the *atomic* pre-kill header — the earlier
        // `header` load above may be stale by now (e.g. a pin landed in
        // between), and settling pin accounting from a stale header
        // drifted the pinned-bytes gauge.
        if let Some(killed) = obj.try_kill_swept() {
            let size = obj.size_bytes();
            block.sub_live_bytes(size);
            if killed.is_pinned() {
                block.add_pinned(-1);
                store.stats().sub_pinned_bytes(size);
            }
            events::emit(EventKind::DeadMark, bid, off, DEAD_BY_CGC);
            out.swept_bytes += size as u64;
            out.swept_objects += 1;
            swept_here += size;
        } else {
            retainers += 1;
        }
    }
    // Lines reclaimed by this sweep: everything in use minus what the
    // mark phase proved live.
    let lines = block.lines_in_use().saturating_sub(block.marked_lines());
    store.stats().on_lines_swept(lines as u64);
    if swept_here != 0 {
        // Mirror the global live-bytes adjustment onto the tenant budget
        // of the block's (canonical) owning heap, if any.
        let owner = store.heaps().find(block.owner());
        if let Some(budget) = store.heaps().info(owner).budget() {
            budget.credit(swept_here);
        }
    }
    if retainers == 0 && block.line_map_clean() && block.is_full() {
        // Clean line map, nothing moved or retained, and no bump space
        // left: no reference can need this block again — freed wholesale.
        store.blocks().free(block.id());
        out.freed_blocks += 1;
    }
}

/// Drops dead entries from every heap's entangled-object index.
fn prune_entangled_indexes(store: &Store) {
    for id in 0..store.heaps().len() as u32 {
        if store.heaps().find(id) != id {
            continue; // merged away
        }
        let info = store.heaps().info(id);
        let entries = info.take_entangled();
        for r in entries {
            let live = store
                .blocks()
                .try_get(r.block())
                .and_then(|b| b.try_get(r.word()).map(|o| !o.header().is_dead()))
                .unwrap_or(false);
            if live {
                // Re-register through the seal-chasing path: the heap may
                // have joined (and sealed) while we pruned.
                store.heaps().register_entangled(id, r, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graveyard::Graveyard;
    use crate::lgc::collect_local;
    use mpl_heap::{ObjKind, StoreConfig, Value};

    fn store() -> Store {
        Store::new(StoreConfig {
            block_words: 12,
            ..Default::default()
        })
    }

    /// Builds the canonical entanglement scenario: a sibling task pins an
    /// object in `l`, then LGC of `l` shields it in place.
    fn entangle_one(s: &Store) -> (u32, ObjRef) {
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(11)]);
        s.pin(x, 0);
        let g = Graveyard::new();
        let mut roots: [ObjRef; 0] = [];
        collect_local(s, l, &mut roots, &g, true);
        assert!(s.handle(x).header().in_entangled_space());
        (l, x)
    }

    #[test]
    fn reachable_entangled_object_survives() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, || vec![vec![x]]);
        assert_eq!(out.swept_objects, 0);
        assert!(!s.handle(x).header().is_dead());
        assert!(!s.handle(x).obj().is_marked(), "marks cleared after");
        assert!(
            s.handle(x).block().line_map_clean(),
            "line marks cleared after"
        );
    }

    #[test]
    fn unreachable_entangled_object_is_swept() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let pinned_before = s.stats().snapshot().pinned_bytes;
        assert!(pinned_before > 0);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, Vec::new);
        assert_eq!(out.swept_objects, 1);
        assert!(s
            .blocks()
            .try_get(x.block())
            .map(|b| b.try_get(x.word()).unwrap().header().is_dead())
            .unwrap_or(true));
        assert_eq!(s.stats().snapshot().pinned_bytes, 0);
        assert_eq!(s.stats().snapshot().cgc_runs, 1);
    }

    #[test]
    fn clean_block_is_freed_wholesale_pinned_block_survives_by_line() {
        // Two entangled blocks: one fully garbage (clean line map after
        // mark), one with a single still-referenced object. The first is
        // freed wholesale without a per-object walk; the second survives
        // and is swept by line, keeping only the marked object.
        let s = store();
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        // Four 3-word objects fill one 12-word class-0 block exactly.
        let garbage: Vec<ObjRef> = (0..4)
            .map(|i| s.alloc_values(l, ObjKind::Ref, &[Value::Int(i)]))
            .collect();
        for &g in &garbage {
            s.pin(g, 0);
        }
        let (l2, _r2) = s.fork_heaps(root);
        let keepers: Vec<ObjRef> = (0..4)
            .map(|i| s.alloc_values(l2, ObjKind::Ref, &[Value::Int(100 + i)]))
            .collect();
        for &k in &keepers {
            s.pin(k, 0);
        }
        let g = Graveyard::new();
        let mut no_roots: [ObjRef; 0] = [];
        collect_local(&s, l, &mut no_roots, &g, true);
        collect_local(&s, l2, &mut no_roots, &g, true);
        let garbage_block = garbage[0].block();
        let keeper_block = keepers[0].block();
        assert_ne!(garbage_block, keeper_block);
        assert!(s.blocks().get(garbage_block).is_full());

        // Only keepers[0] is reachable.
        let state = CgcState::new();
        let live_root = keepers[0];
        let out = collect_entangled(&s, &state, || vec![vec![live_root]]);

        // The all-garbage block: freed wholesale.
        assert!(
            s.blocks().try_get(garbage_block).is_none(),
            "clean block must be freed wholesale"
        );
        assert!(out.freed_blocks >= 1);
        // The keeper block: survives, with only the marked object alive.
        let kb = s.blocks().get(keeper_block);
        assert!(!kb.try_get(keepers[0].word()).unwrap().header().is_dead());
        for &k in &keepers[1..] {
            assert!(kb.try_get(k.word()).unwrap().header().is_dead());
        }
        assert_eq!(out.swept_objects, 4 + 3);
        assert!(
            s.stats().snapshot().lines_swept > 0,
            "line sweep telemetry recorded"
        );
        assert!(kb.line_map_clean(), "epilogue wiped the line marks");
    }

    #[test]
    fn satb_log_preserves_hidden_pointer() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        // Simulate a mutator hiding `x` during marking: no root mentions
        // it, but the overwritten value is logged.
        state.marking.store(true, Ordering::SeqCst);
        state.satb_log(x);
        state.marking.store(false, Ordering::SeqCst);
        // The buffered entry must be honored by the next cycle.
        let out = collect_entangled(&s, &state, Vec::new);
        assert_eq!(out.swept_objects, 0, "SATB-logged object survives");
        assert!(!s.handle(x).header().is_dead());
    }

    #[test]
    fn shard_log_flushes_at_capacity_and_on_demand() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        let shard = state.register_shard();
        state.marking.store(true, Ordering::SeqCst);
        state.satb_log_shard(&shard, x);
        assert_eq!(shard.buf.lock().len(), 1, "buffered, not yet flushed");
        assert!(state.satb.lock().is_empty());
        for _ in 0..MODBUF_CAP {
            state.satb_log_shard(&shard, x);
        }
        assert!(
            state.satb.lock().len() >= MODBUF_CAP,
            "capacity flush published the buffer"
        );
        state.flush_shard(&shard);
        assert!(shard.buf.lock().is_empty());
        state.marking.store(false, Ordering::SeqCst);
        // A registered shard that never polls would stall the snapshot
        // handshake, exactly like a finished task: deregister (which
        // drains) before collecting.
        state.deregister_shard(&shard);
        assert!(state.shards.lock().is_empty());
        // The logged entries must be honored by the next cycle.
        let out = collect_entangled(&s, &state, Vec::new);
        assert_eq!(out.swept_objects, 0);
    }

    #[test]
    fn safe_window_lets_handshake_complete() {
        let state = CgcState::new();
        let shard = state.register_shard();
        // An unsafe, never-polling shard would hang the handshake; a
        // safe window must unblock it.
        state.enter_safe(&shard);
        state.handshake();
        state.exit_safe(&shard);
        assert_eq!(shard.safe.load(Ordering::SeqCst), 0);
        // A polling shard acknowledges the next epoch.
        let e0 = state.epoch.load(Ordering::SeqCst);
        state.epoch.fetch_add(1, Ordering::SeqCst);
        state.poll_handshake(&shard);
        assert_eq!(shard.acked.load(Ordering::SeqCst), e0 + 1);
        state.deregister_shard(&shard);
    }

    #[test]
    fn disentangled_heap_sweeps_nothing() {
        let s = store();
        let h = s.new_root_heap();
        let a = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(1)]);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, || vec![vec![a]]);
        assert_eq!(out.swept_objects, 0);
        assert_eq!(out.swept_bytes, 0);
        assert_eq!(out.freed_blocks, 0);
    }

    #[test]
    fn entangled_index_pruned_after_sweep() {
        let s = store();
        let (l, _x) = entangle_one(&s);
        let state = CgcState::new();
        collect_entangled(&s, &state, Vec::new);
        let canon = s.heaps().find(l);
        assert_eq!(s.heaps().info(canon).entangled_len(), 0);
    }

    #[test]
    fn incremental_cycle_matches_monolithic() {
        let s = store();
        let (_l, live) = entangle_one(&s);
        let (_l2, dead) = entangle_one(&s);
        let state = CgcState::new();
        cgc_begin(&s, &state, || vec![vec![live]]);
        assert!(state.cycle_active());
        assert!(state.is_marking());
        let mut out = None;
        let mut slices = 0;
        while out.is_none() {
            out = cgc_step(&s, &state, 1);
            slices += 1;
            assert!(slices < 100, "cycle must terminate");
        }
        let out = out.unwrap();
        assert!(!state.cycle_active());
        assert!(!state.is_marking());
        assert_eq!(out.swept_objects, 1, "exactly the unreferenced pin");
        assert!(!s.handle(live).header().is_dead());
        assert!(s
            .blocks()
            .try_get(dead.block())
            .map(|b| b.try_get(dead.word()).unwrap().header().is_dead())
            .unwrap_or(true));
    }

    #[test]
    fn satb_between_slices_preserves_hidden_objects() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        // A second population so the trace takes more than one slice.
        let root2 = s.new_root_heap();
        let mut prev = s.alloc_values(root2, ObjKind::Ref, &[Value::Int(0)]);
        for i in 0..16 {
            prev = s.alloc_values(root2, ObjKind::Ref, &[Value::Obj(prev)]);
            let _ = i;
        }
        let state = CgcState::new();
        cgc_begin(&s, &state, || vec![vec![prev]]);
        // First slice runs...
        assert!(cgc_step(&s, &state, 2).is_none(), "chain needs more slices");
        // ...then a mutator "hides" x behind an overwrite, logging it.
        state.satb_log(x);
        let mut out = None;
        while out.is_none() {
            out = cgc_step(&s, &state, 4);
        }
        assert_eq!(out.unwrap().swept_objects, 0, "the logged pin survives");
        assert!(!s.handle(x).header().is_dead());
    }

    #[test]
    fn step_without_begin_is_a_noop() {
        let s = store();
        let state = CgcState::new();
        assert!(cgc_step(&s, &state, 8).is_none());
        assert!(!state.cycle_active());
    }

    #[test]
    fn begin_is_idempotent_while_active() {
        let s = store();
        let (_l, x) = entangle_one(&s);
        let state = CgcState::new();
        cgc_begin(&s, &state, || vec![vec![x]]);
        // A second begin with *no* roots must not clobber the snapshot.
        cgc_begin(&s, &state, Vec::new);
        let mut out = None;
        while out.is_none() {
            out = cgc_step(&s, &state, 8);
        }
        assert_eq!(out.unwrap().swept_objects, 0, "original roots retained");
    }

    #[test]
    fn marking_traverses_through_normal_objects() {
        let s = store();
        let root = s.new_root_heap();
        let (l, _r) = s.fork_heaps(root);
        let x = s.alloc_values(l, ObjKind::Ref, &[Value::Int(5)]);
        s.pin(x, 0);
        let g = Graveyard::new();
        let mut roots: [ObjRef; 0] = [];
        collect_local(&s, l, &mut roots, &g, true);
        // Root -> holder -> x: the path crosses a disentangled object.
        let holder = s.alloc_values(root, ObjKind::Tuple, &[Value::Obj(x)]);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, || vec![vec![holder]]);
        assert_eq!(out.swept_objects, 0);
        assert!(out.marked_objects >= 2);
    }

    #[test]
    fn parallel_cycle_on_executor_matches_sequential() {
        // Two identical stores: one collected under a worker context
        // (packets fan out on the pool), one on the bare thread. The
        // survivor sets must agree.
        let build = |s: &Store| {
            let (_l, live) = entangle_one(s);
            let (_l2, dead) = entangle_one(s);
            let root = s.new_root_heap();
            let mut holder = s.alloc_values(root, ObjKind::Tuple, &[Value::Obj(live)]);
            for _ in 0..64 {
                holder = s.alloc_values(root, ObjKind::Tuple, &[Value::Obj(holder)]);
            }
            (live, dead, holder)
        };
        let s1 = store();
        let (live1, dead1, holder1) = build(&s1);
        let s2 = store();
        let (live2, dead2, holder2) = build(&s2);

        let state1 = CgcState::new();
        let out1 = collect_entangled(&s1, &state1, || vec![vec![holder1]]);

        let ex = mpl_sched::Executor::new(4);
        let _driver = ex.install_driver();
        let state2 = CgcState::new();
        let out2 = collect_entangled(&s2, &state2, || vec![vec![holder2]]);

        assert_eq!(out1.swept_objects, out2.swept_objects);
        assert_eq!(out1.marked_objects, out2.marked_objects);
        assert!(!s1.handle(live1).header().is_dead());
        assert!(!s2.handle(live2).header().is_dead());
        for (s, dead) in [(&s1, dead1), (&s2, dead2)] {
            assert!(s
                .blocks()
                .try_get(dead.block())
                .map(|b| b.try_get(dead.word()).unwrap().header().is_dead())
                .unwrap_or(true));
        }
        assert!(
            s2.stats().snapshot().cgc_packets > 0,
            "packet counter recorded"
        );
    }

    #[test]
    fn packet_panic_is_repaired_and_retried() {
        // Inject one panic into the first trace packet; the cycle must
        // still mark everything reachable and sweep only garbage.
        let s = store();
        let (_l, live) = entangle_one(&s);
        let (_l2, dead) = entangle_one(&s);
        let root = s.new_root_heap();
        let holder = s.alloc_values(root, ObjKind::Tuple, &[Value::Obj(live)]);
        let plan = mpl_fail::FailPlan::new(7).with(
            "cgc/packet",
            mpl_fail::FailAction::Panic,
            mpl_fail::FailWhen::Nth(1),
        );
        let token = mpl_fail::install(&plan);
        let state = CgcState::new();
        let out = collect_entangled(&s, &state, || vec![vec![holder]]);
        mpl_fail::uninstall(token);
        assert_eq!(out.swept_objects, 1, "only the unreferenced pin");
        assert!(!s.handle(live).header().is_dead());
        assert!(s
            .blocks()
            .try_get(dead.block())
            .map(|b| b.try_get(dead.word()).unwrap().header().is_dead())
            .unwrap_or(true));
        // Dirty cycle: marks still fully cleared (block-scan epilogue).
        assert!(!s.handle(live).obj().is_marked());
        assert!(s.stats().snapshot().cgc_packet_retries >= 1);
    }
}
