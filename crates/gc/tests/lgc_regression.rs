//! Regression tests for collector bugs found by the integration suite.

use mpl_gc::{collect_local, Graveyard};
use mpl_heap::{ObjKind, ObjRef, RemsetEntry, Store, StoreConfig, Value};

/// A remembered-set entry whose target is evacuated through a *root* path
/// before the remset pass reaches it must still repair the source field.
/// (The original code resolved the target first and concluded the entry
/// "no longer points into this heap", leaving the ancestor's field
/// dangling once from-space blocks were freed.)
#[test]
fn remset_repairs_target_already_evacuated_via_roots() {
    let s = Store::new(StoreConfig {
        block_words: 12,
        ..Default::default()
    });
    let root_heap = s.new_root_heap();
    let (l, _r) = s.fork_heaps(root_heap);

    // Ancestor cell with a down-pointer to `x` in the child heap; `x` is
    // ALSO a task root, so the trace reaches it before the remset pass.
    let cell = s.alloc_values(root_heap, ObjKind::Ref, &[Value::Unit]);
    let x = s.alloc_values(l, ObjKind::Tuple, &[Value::Int(5)]);
    s.handle(cell).set_field(0, Value::Obj(x));
    s.remember(
        l,
        RemsetEntry {
            src: cell,
            field: 0,
        },
    );

    let g = Graveyard::new();
    let mut roots = [x]; // root processed before the remembered set
    collect_local(&s, l, &mut roots, &g, true);

    // The field must point at the new location, resolvable without
    // touching freed blocks.
    let field = s.handle(cell).field(0).expect_obj();
    assert_eq!(field, roots[0], "field repaired to the evacuated location");
    assert_eq!(s.handle(field).field(0), Value::Int(5));
    // And the entry survives for future collections.
    assert_eq!(s.heaps().info(l).remset_len(), 1);

    // A second collection (nothing else live) must also stay sound.
    let mut roots2 = [roots[0]];
    collect_local(&s, l, &mut roots2, &g, true);
    let field = s.handle(cell).field(0).expect_obj();
    assert_eq!(field, roots2[0]);
    assert_eq!(s.handle(field).field(0), Value::Int(5));
}

/// Chained collections with interleaved down-pointer writes never leave a
/// dangling field (the full pattern from the dedup benchmark).
#[test]
fn repeated_collections_with_bucket_rewrites() {
    let s = Store::new(StoreConfig {
        block_words: 12,
        ..Default::default()
    });
    let root_heap = s.new_root_heap();
    let (l, _r) = s.fork_heaps(root_heap);
    let table = s.alloc_values(root_heap, ObjKind::MutArr, &[Value::Unit; 8]);
    let g = Graveyard::new();

    let mut nodes: Vec<ObjRef> = Vec::new();
    for round in 0..6 {
        // Write a fresh node into a bucket (chain through the old head).
        let b = round % 3;
        let head = s.handle(table).field(b);
        let node = s.alloc_values(l, ObjKind::Tuple, &[Value::Int(round as i64), head]);
        s.handle(table).set_field(b, Value::Obj(node));
        s.remember(
            l,
            RemsetEntry {
                src: table,
                field: b as u32,
            },
        );
        nodes.push(node);

        // Garbage + collect with the newest node also rooted.
        for _ in 0..10 {
            s.alloc_values(l, ObjKind::Tuple, &[Value::Unit]);
        }
        let mut roots = [node];
        collect_local(&s, l, &mut roots, &g, true);

        // Every bucket chain must resolve cleanly.
        for bb in 0..3 {
            let mut cur = s.handle(table).field(bb);
            while let Value::Obj(r) = cur {
                let h = s.handle(s.resolve(r));
                assert!(!h.header().is_dead(), "live chain node");
                cur = h.field(1);
            }
        }
    }
}
