//! Property tests for the collectors: random object graphs, random pin
//! sets, random root subsets — reachability, shielding, and accounting
//! invariants must hold for every instance.

use proptest::prelude::*;

use mpl_gc::{collect_entangled, collect_local, CgcState, Graveyard};
use mpl_heap::{ObjKind, ObjRef, RemsetEntry, Store, StoreConfig, Value};

/// Specification of a random heap graph: `edges[i]` lists the children of
/// object `i` among objects with smaller index (guaranteeing a DAG for
/// easy oracle traversal; cycles are covered by dedicated unit tests).
#[derive(Clone, Debug)]
struct GraphSpec {
    edges: Vec<Vec<usize>>,
    roots: Vec<usize>,
    pins: Vec<usize>,
}

fn graph_spec(max_nodes: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec(proptest::collection::vec(0..n, 0..4), n);
            let roots = proptest::collection::vec(0..n, 1..6);
            let pins = proptest::collection::vec(0..n, 0..4);
            (Just(n), edges, roots, pins)
        })
        .prop_map(|(n, mut edges, roots, pins)| {
            // Make edges point only at strictly smaller indices.
            for (i, es) in edges.iter_mut().enumerate() {
                es.retain_mut(|e| {
                    *e %= n.max(1);
                    *e < i
                });
            }
            GraphSpec { edges, roots, pins }
        })
}

/// Builds the graph in a fresh child heap; returns (store, root heap,
/// child heap, objects).
fn build(spec: &GraphSpec) -> (Store, u32, u32, Vec<ObjRef>) {
    let s = Store::new(StoreConfig {
        block_words: 24,
        ..Default::default()
    });
    let root_heap = s.new_root_heap();
    let (l, _r) = s.fork_heaps(root_heap);
    let mut objs = Vec::with_capacity(spec.edges.len());
    for (i, es) in spec.edges.iter().enumerate() {
        let mut fields: Vec<Value> = es.iter().map(|&e| Value::Obj(objs[e])).collect();
        fields.push(Value::Int(i as i64)); // identity payload, last field
        objs.push(s.alloc_values(l, ObjKind::Tuple, &fields));
        // Interleave garbage to spread objects over blocks.
        s.alloc_values(l, ObjKind::Tuple, &[Value::Unit]);
    }
    (s, root_heap, l, objs)
}

/// Oracle: payloads of all objects reachable from `starts`.
fn reachable_payloads(spec: &GraphSpec, starts: &[usize]) -> std::collections::BTreeSet<i64> {
    let mut seen = std::collections::BTreeSet::new();
    let mut stack: Vec<usize> = starts.to_vec();
    while let Some(i) = stack.pop() {
        if !seen.insert(i as i64) {
            continue;
        }
        for &e in &spec.edges[i] {
            stack.push(e);
        }
    }
    seen
}

/// Walks the live graph from a root and collects payloads.
fn walk(s: &Store, r: ObjRef) -> std::collections::BTreeSet<i64> {
    let mut seen = std::collections::BTreeSet::new();
    let mut visited = std::collections::HashSet::new();
    let mut stack = vec![s.resolve(r)];
    while let Some(r) = stack.pop() {
        if !visited.insert(r) {
            continue;
        }
        let h = s.handle(r);
        assert!(!h.header().is_dead(), "reached a swept object");
        let n = h.len();
        seen.insert(h.field(n - 1).expect_int());
        for i in 0..n - 1 {
            if let Value::Obj(c) = h.field(i) {
                stack.push(s.resolve(c));
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LGC preserves exactly the reachable payloads, for any graph, root
    /// subset, and pin set.
    #[test]
    fn lgc_preserves_reachability(spec in graph_spec(24)) {
        let (s, _root, l, objs) = build(&spec);
        for &p in &spec.pins {
            s.pin(objs[p], 0);
        }
        let mut roots: Vec<ObjRef> = spec.roots.iter().map(|&i| objs[i]).collect();
        let g = Graveyard::new();
        collect_local(&s, l, &mut roots, &g, true);

        // Reachability from each root matches the oracle.
        for (k, &ri) in spec.roots.iter().enumerate() {
            let expect = reachable_payloads(&spec, &[ri]);
            prop_assert_eq!(walk(&s, roots[k]), expect);
        }
    }

    /// Pinned objects and everything reachable from them stay at their
    /// original addresses across a collection.
    #[test]
    fn lgc_never_moves_pin_closures(spec in graph_spec(24)) {
        let (s, _root, l, objs) = build(&spec);
        for &p in &spec.pins {
            s.pin(objs[p], 0);
        }
        let shielded = reachable_payloads(&spec, &spec.pins);
        let mut roots: Vec<ObjRef> = spec.roots.iter().map(|&i| objs[i]).collect();
        let g = Graveyard::new();
        collect_local(&s, l, &mut roots, &g, true);
        for (i, &r) in objs.iter().enumerate() {
            if shielded.contains(&(i as i64)) {
                prop_assert_eq!(s.resolve(r), r, "object {} must not move", i);
                prop_assert!(s.handle(r).header().in_entangled_space());
            }
        }
    }

    /// A second collection without new allocation reclaims nothing new
    /// and leaves the graph identical (idempotence).
    #[test]
    fn lgc_is_idempotent(spec in graph_spec(16)) {
        let (s, _root, l, objs) = build(&spec);
        let mut roots: Vec<ObjRef> = spec.roots.iter().map(|&i| objs[i]).collect();
        let g = Graveyard::new();
        collect_local(&s, l, &mut roots, &g, true);
        let first: Vec<_> = spec
            .roots
            .iter()
            .enumerate()
            .map(|(k, _)| walk(&s, roots[k]))
            .collect();
        let out2 = collect_local(&s, l, &mut roots, &g, true);
        prop_assert_eq!(out2.reclaimed_bytes, 0, "no garbage appears from thin air");
        for (k, expect) in first.into_iter().enumerate() {
            prop_assert_eq!(walk(&s, roots[k]), expect);
        }
    }

    /// CGC sweeps exactly the unreachable part of the entangled space:
    /// reachable pinned objects survive, unreachable ones die.
    #[test]
    fn cgc_sweeps_only_unreachable_entangled(spec in graph_spec(20)) {
        let (s, _root, l, objs) = build(&spec);
        for &p in &spec.pins {
            s.pin(objs[p], 0);
        }
        // Shield via LGC with no task roots: only pin closures survive in
        // place; everything else is reclaimed.
        let mut no_roots: Vec<ObjRef> = Vec::new();
        let g = Graveyard::new();
        collect_local(&s, l, &mut no_roots, &g, true);

        // Now run CGC with a root subset of the pinned objects.
        let keep: Vec<usize> = spec.pins.iter().copied().take(1).collect();
        let cgc_roots: Vec<ObjRef> = keep.iter().map(|&i| objs[i]).collect();
        let state = CgcState::new();
        collect_entangled(&s, &state, || vec![cgc_roots.clone()]);

        let live = reachable_payloads(&spec, &keep);
        for &p in &spec.pins {
            let r = objs[p];
            // The block may have been freed outright if everything in it
            // died — that counts as swept.
            let dead = match s.blocks().try_get(r.block()) {
                None => true,
                Some(c) => c.try_get(r.word()).is_none_or(|o| o.header().is_dead()),
            };
            if live.contains(&(p as i64)) {
                prop_assert!(!dead, "reachable pin survives");
            } else {
                prop_assert!(dead, "unreachable pin swept");
            }
        }
        // Survivors' graphs stay intact.
        for r in cgc_roots {
            walk(&s, r);
        }
    }

    /// Parallel (work-packet, multi-worker) marking marks exactly the
    /// same object set as the single-threaded marker on random entangled
    /// graphs: two identical stores, one collected on a 4-worker
    /// executor with the roots split across packets, one sequentially
    /// with a single root packet — object-by-object survival must agree.
    #[test]
    fn parallel_marking_matches_sequential(spec in graph_spec(20)) {
        let build_and_shield = || {
            let (s, _root, l, objs) = build(&spec);
            for &p in &spec.pins {
                s.pin(objs[p], 0);
            }
            let mut no_roots: Vec<ObjRef> = Vec::new();
            collect_local(&s, l, &mut no_roots, &Graveyard::new(), true);
            (s, objs)
        };
        let (seq, seq_objs) = build_and_shield();
        let (par, par_objs) = build_and_shield();
        let keep: Vec<usize> = spec.pins.iter().copied().take(2).collect();

        let seq_roots: Vec<ObjRef> = keep.iter().map(|&i| seq_objs[i]).collect();
        let seq_out = collect_entangled(&seq, &CgcState::new(), || vec![seq_roots.clone()]);

        let ex = mpl_sched::Executor::new(4);
        let _driver = ex.install_driver();
        // One packet per root: the parallel tracers race on the marks.
        let par_roots: Vec<Vec<ObjRef>> =
            keep.iter().map(|&i| vec![par_objs[i]]).collect();
        let par_out = collect_entangled(&par, &CgcState::new(), || par_roots.clone());

        prop_assert_eq!(seq_out.swept_objects, par_out.swept_objects);
        prop_assert_eq!(seq_out.marked_objects, par_out.marked_objects);
        // Pinned objects never move, so the pre-collection refs are
        // still the canonical addresses; a freed block counts as swept.
        let dead_in = |s: &Store, r: ObjRef| match s.blocks().try_get(r.block()) {
            None => true,
            Some(c) => c.try_get(r.word()).is_none_or(|o| o.header().is_dead()),
        };
        for &p in &spec.pins {
            prop_assert_eq!(
                dead_in(&seq, seq_objs[p]),
                dead_in(&par, par_objs[p]),
                "object {} survival must agree between markers",
                p
            );
        }
    }
}

// ---- pin / dead-mark / remset interleavings under the phase audit ------

/// One step of a randomized mutator/collector interleaving.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Pin object `i % n` at level 0 (registers it entangled).
    Pin(usize),
    /// Record an ancestor down-pointer to object `i % n` in the child
    /// heap's remembered set.
    Remset(usize),
    /// Allocate unreachable junk in the child heap (dead-mark fodder for
    /// the next collection's reclaim phase).
    Garbage,
    /// Run a local collection of the child heap (performs the actual
    /// dead-marking; each phase boundary is audited).
    Collect,
}

fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..32).prop_map(Op::Pin),
            (0usize..32).prop_map(Op::Remset),
            Just(Op::Garbage),
            Just(Op::Collect),
        ],
        1..16,
    )
}

/// Enables the audit layer for the test body, releasing it even if the
/// case fails (the enablement is a process-global refcount).
struct AuditGuard;
impl AuditGuard {
    fn new() -> Self {
        mpl_gc::audit::enable();
        AuditGuard
    }
}
impl Drop for AuditGuard {
    fn drop(&mut self) {
        mpl_gc::audit::disable();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of pins, remembered-set inserts, garbage
    /// allocation, and local collections keeps the audited invariants:
    /// collections dead-mark only unreachable objects (checked at the
    /// marking site by the phase-boundary audit inside `collect_local`),
    /// no live field dangles, and root reachability matches the oracle
    /// throughout.
    #[test]
    fn audited_pin_deadmark_remset_interleavings(
        spec in graph_spec(16),
        ops in op_seq(),
    ) {
        let _audit = AuditGuard::new();
        let (s, root_heap, l, objs) = build(&spec);
        let mut roots: Vec<ObjRef> = spec.roots.iter().map(|&i| objs[i]).collect();
        let g = Graveyard::new();
        let alive = |r: ObjRef| {
            let r = s.try_resolve(r)?;
            let block = s.blocks().try_get(r.block())?;
            let dead = block.try_get(r.word())?.header().is_dead();
            (!dead).then_some(r)
        };
        for op in ops {
            match op {
                Op::Pin(i) => {
                    if let Some(r) = alive(objs[i % objs.len()]) {
                        s.pin(r, 0);
                    }
                }
                Op::Remset(i) => {
                    if let Some(r) = alive(objs[i % objs.len()]) {
                        let cell = s.alloc_values(root_heap, ObjKind::Ref, &[Value::Obj(r)]);
                        s.remember(l, RemsetEntry { src: cell, field: 0 });
                    }
                }
                Op::Garbage => {
                    for _ in 0..4 {
                        s.alloc_values(l, ObjKind::Tuple, &[Value::Unit]);
                    }
                }
                Op::Collect => {
                    collect_local(&s, l, &mut roots, &g, true);
                }
            }
        }
        collect_local(&s, l, &mut roots, &g, true);

        // The audits inside collect_local already checked each phase; a
        // final explicit sweep re-confirms the end state.
        let dead = mpl_gc::check_dead_reachability(&s);
        prop_assert!(dead.is_empty(), "{dead:?}");
        let dangling = mpl_gc::dangling_fields(&s);
        prop_assert!(dangling.is_empty(), "{dangling:?}");
        for (k, &ri) in spec.roots.iter().enumerate() {
            let expect = reachable_payloads(&spec, &[ri]);
            prop_assert_eq!(walk(&s, roots[k]), expect);
        }
    }
}

/// A forced reclaim-phase mis-mark (the historical LGC dead-object race,
/// minus the race) is caught by the phase-boundary audit at the marking
/// site — not cycles later when some trace walks into the corpse.
#[test]
#[should_panic(expected = "dead-reachable")]
fn forced_reclaim_mismark_fails_the_phase_audit() {
    let _audit = AuditGuard::new();
    let s = Store::new(StoreConfig {
        block_words: 24,
        ..Default::default()
    });
    let h = s.new_root_heap();
    let victim = s.alloc_values(h, ObjKind::Tuple, &[Value::Int(7)]);
    let holder = s.alloc_values(h, ObjKind::Tuple, &[Value::Obj(victim)]);
    s.pin(holder, 0);
    // Simulate a buggy Phase C killing a reachable object.
    s.handle(victim).obj().set_dead();
    mpl_gc::audit_phase(&s, "lgc/reclaim", h, None);
}
