//! Satellite: concurrent allocation stress over the block allocator.
//!
//! Four workers allocate into sibling leaf heaps simultaneously with
//! auditing enabled, then every object is re-read — from its own thread
//! and again from the joining thread — to prove no header or field word
//! was torn by concurrent bump reservations, side-metadata publication,
//! or block-registry traffic.

use std::sync::Arc;

use mpl_heap::{ObjKind, Store, StoreConfig, Value};

const WORKERS: usize = 4;
const OBJECTS_PER_WORKER: i64 = 2_000;

type Allocated = (mpl_heap::ObjRef, ObjKind, usize, i64);

fn check(s: &Store, leaf: u32, refs: &[Allocated]) {
    for (r, kind, len, base) in refs {
        let block = s.blocks().get(r.block());
        let obj = block.get(r.word());
        let hdr = obj.header();
        assert!(
            !hdr.is_dead() && !hdr.is_forwarded(),
            "torn header at {r:?}"
        );
        assert_eq!(obj.kind(), *kind, "kind torn at {r:?}");
        assert_eq!(obj.len(), *len, "length torn at {r:?}");
        assert_eq!(block.owner(), leaf, "block owner mixed up at {r:?}");
        for f in 0..*len {
            assert_eq!(
                obj.field(f),
                Value::Int(base + f as i64),
                "field {f} torn at {r:?}"
            );
        }
    }
}

#[test]
fn four_workers_allocate_without_torn_headers() {
    mpl_gc::audit::enable();
    let s = Arc::new(Store::new(StoreConfig {
        block_words: 64, // small blocks: constant overflow + registry traffic
        ..Default::default()
    }));
    let root = s.new_root_heap();
    let (l, r) = s.fork_heaps(root);
    let (ll, lr) = s.fork_heaps(l);
    let (rl, rr) = s.fork_heaps(r);
    let leaves = [ll, lr, rl, rr];

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let s = Arc::clone(&s);
            let leaf = leaves[w];
            std::thread::spawn(move || {
                let tag = (w as i64 + 1) << 32;
                let mut refs: Vec<Allocated> = Vec::new();
                let mut fields: Vec<Value> = Vec::new();
                for i in 0..OBJECTS_PER_WORKER {
                    // 0..=10 fields: classes 0..2, the overflow class is
                    // hit by the raw arrays below.
                    let len = (i % 11) as usize;
                    let base = tag + i * 16;
                    fields.clear();
                    fields.extend((0..len).map(|f| Value::Int(base + f as i64)));
                    let kind = if i % 2 == 0 {
                        ObjKind::Tuple
                    } else {
                        ObjKind::MutArr
                    };
                    let r = s.alloc_values(leaf, kind, &fields);
                    refs.push((r, kind, len, base));
                }
                // First pass from the allocating thread itself.
                check(&s, leaf, &refs);
                (leaf, refs)
            })
        })
        .collect();

    let per_worker: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Second pass from this thread: the publication (obj_start bit,
    // header word) must be visible across threads, not just to the
    // allocator.
    let mut total = 0usize;
    for (leaf, refs) in &per_worker {
        check(&s, *leaf, refs);
        total += refs.len();
    }
    assert_eq!(total, WORKERS * OBJECTS_PER_WORKER as usize);

    // The reclaim-class audit runs the dead-reachability cross-check and
    // the dangling-field scan over the whole store.
    mpl_gc::audit::audit_phase(&s, "cgc/sweep", root, None);
    mpl_gc::assert_heap_sound(&s);
    mpl_gc::audit::disable();
}
