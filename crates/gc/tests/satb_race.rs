//! Seeded-interleaving regression test for the SATB snapshot race.
//!
//! The historical bug: `CgcState::satb_log` was check-then-act — a
//! mutator loaded the `marking` flag, saw `false`, and skipped logging
//! the pointer it was about to overwrite, while the collector raised the
//! flag and took its root snapshot *between the check and the store*.
//! The overwritten pointer was then in nobody's snapshot: not in the
//! roots (the mutator held it in hand), not in the heap (the field was
//! already cleared), not in the SATB log (the check said don't). The
//! object was swept while a mutator still held a reference to it.
//!
//! The fix is the snapshot handshake: the collector raises `marking`,
//! bumps the epoch, and *waits for every registered shard to ack* (or
//! sit in a safe window) before reading roots. A mutator acks only at
//! poll points, which by the mutator protocol are never inside a
//! hold-unrooted-in-hand window — so by the time the snapshot is taken,
//! either the mutator observed `marking == true` (and logged), or its
//! hidden value is back in the heap.
//!
//! There is no loom in the dependency tree, so this drives real threads
//! through seeded interleavings instead: per-seed spin delays stretch
//! the check-to-store window at different points while repeated
//! collections hammer the snapshot boundary. With the handshake removed
//! this fails within a few seeds; with it the hidden object must survive
//! every collection, every seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpl_gc::{collect_entangled, CgcState, Graveyard};
use mpl_heap::{ObjKind, ObjRef, Store, StoreConfig, Value};

/// Tiny deterministic generator (xorshift64*) so each seed replays the
/// same interleaving pressure.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Burns a short, seeded amount of CPU to shift thread interleavings.
fn jitter(rng: &mut Rng) {
    let spins = rng.next() % 400;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

/// Builds a store with two entangled-space objects: `holder` (a ref cell
/// whose field points at `victim`) and `victim`. Both are pinned and
/// shielded in place so the concurrent collector governs their lifetime.
fn entangled_pair(s: &Store) -> (ObjRef, ObjRef) {
    let root = s.new_root_heap();
    let (l, _r) = s.fork_heaps(root);
    let victim = s.alloc_values(l, ObjKind::Ref, &[Value::Int(42)]);
    let holder = s.alloc_values(l, ObjKind::Ref, &[Value::Obj(victim)]);
    s.pin(victim, 0);
    s.pin(holder, 0);
    let mut no_roots: Vec<ObjRef> = Vec::new();
    mpl_gc::collect_local(s, l, &mut no_roots, &Graveyard::new(), true);
    (s.resolve(holder), s.resolve(victim))
}

fn run_seed(seed: u64) {
    let s = Arc::new(Store::new(StoreConfig {
        block_words: 24,
        ..Default::default()
    }));
    let state = Arc::new(CgcState::new());
    let (holder, victim) = entangled_pair(&s);

    let stop = Arc::new(AtomicBool::new(false));

    // Mutator: repeatedly takes `victim` out of the holder's field (the
    // only heap reference to it), holds it unrooted "in hand" across a
    // seeded delay, and puts it back — the exact shape of the historical
    // race. The deletion barrier and poll discipline mirror the runtime's
    // write barrier: log-before-store when marking, poll only *between*
    // complete transitions, never while holding the unrooted value.
    let mutator = {
        let s = Arc::clone(&s);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let shard = state.register_shard();
            let mut rng = Rng(seed | 1);
            let blk = s.blocks().get(holder.block());
            while !stop.load(Ordering::Relaxed) {
                let o = blk.get(holder.word());
                let in_hand = match o.field(0) {
                    Value::Obj(r) => r,
                    v => panic!("holder field corrupted: {v:?}"),
                };
                jitter(&mut rng);
                // Deletion barrier: the check-then-act pair under test.
                if state.is_marking() {
                    state.satb_log_shard(&shard, in_hand);
                }
                jitter(&mut rng);
                o.set_field(0, Value::Unit); // victim now only in hand
                jitter(&mut rng);
                o.set_field(0, Value::Obj(in_hand)); // put it back
                                                     // Transition complete: this is the first point the
                                                     // collector's handshake may take our ack.
                state.poll_handshake(&shard);
            }
            state.deregister_shard(&shard);
        })
    };

    // Collector: repeated full cycles rooted at the holder only — the
    // victim's survival depends entirely on snapshot + SATB correctness.
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    for round in 0..25 {
        jitter(&mut rng);
        collect_entangled(&s, &state, || vec![vec![holder]]);
        let alive = s
            .blocks()
            .try_get(victim.block())
            .and_then(|b| b.try_get(victim.word()).map(|o| !o.header().is_dead()))
            .unwrap_or(false);
        assert!(
            alive,
            "seed {seed}, round {round}: victim swept while a mutator held it \
             (SATB snapshot race)"
        );
    }

    stop.store(true, Ordering::Relaxed);
    mutator.join().expect("mutator thread");
}

/// Ten seeds, each replaying a different interleaving pressure pattern.
/// The acceptance bar for the fix is 10/10 green under the audited debug
/// profile.
#[test]
fn satb_snapshot_race_does_not_lose_hidden_pointers() {
    for seed in 1..=10u64 {
        run_seed(seed);
    }
}
