//! Property tests for the runtime: random fork-join programs with shared
//! mutable state, executed against a plain-Rust oracle that mirrors the
//! deterministic depth-first schedule.

use proptest::prelude::*;

use mpl_runtime::{GcPolicy, Handle, Mutator, Runtime, RuntimeConfig, StoreConfig, Value};

/// A random program over `NCELLS` shared cells: a tree of forks whose
/// leaves perform read/write/accumulate operations.
#[derive(Clone, Debug)]
enum Prog {
    /// Leaf: a sequence of primitive steps.
    Leaf(Vec<Step>),
    /// Fork two subprograms and sum their results.
    Fork(Box<Prog>, Box<Prog>),
}

#[derive(Clone, Debug)]
enum Step {
    /// Read cell `c` (boxed int) and add it to the accumulator.
    ReadAdd(usize),
    /// Write a fresh boxed value `v` into cell `c`.
    WriteBox(usize, i64),
    /// Allocate garbage (exercises the collector mid-program).
    Churn(u8),
}

const NCELLS: usize = 4;

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..NCELLS).prop_map(Step::ReadAdd),
        ((0..NCELLS), -50i64..50).prop_map(|(c, v)| Step::WriteBox(c, v)),
        (1u8..16).prop_map(Step::Churn),
    ]
}

fn prog(depth: u32) -> BoxedStrategy<Prog> {
    let leaf = proptest::collection::vec(step(), 0..8).prop_map(Prog::Leaf);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = prog(depth - 1);
    prop_oneof![
        2 => leaf,
        1 => (sub.clone(), sub).prop_map(|(a, b)| Prog::Fork(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

/// Oracle: interprets the program depth-first over plain Rust state.
fn oracle(p: &Prog, cells: &mut [i64; NCELLS]) -> i64 {
    match p {
        Prog::Leaf(steps) => {
            let mut acc = 0;
            for s in steps {
                match s {
                    Step::ReadAdd(c) => acc += cells[*c],
                    Step::WriteBox(c, v) => cells[*c] = *v,
                    Step::Churn(_) => {}
                }
            }
            acc
        }
        Prog::Fork(a, b) => {
            // Depth-first: left runs fully before right.
            oracle(a, cells) + oracle(b, cells)
        }
    }
}

/// Managed-runtime interpretation: cells hold boxed integers so that
/// cross-task publications are pointer effects (entanglement).
fn run_prog(m: &mut Mutator<'_>, cells: &Handle, p: &Prog) -> i64 {
    match p {
        Prog::Leaf(steps) => {
            let mut acc = 0;
            for s in steps {
                match s {
                    Step::ReadAdd(c) => {
                        let table = m.get(cells);
                        let boxed = m.arr_get(table, *c);
                        acc += m.tuple_get(boxed, 0).expect_int();
                    }
                    Step::WriteBox(c, v) => {
                        let boxed = m.alloc_tuple(&[Value::Int(*v)]);
                        let table = m.get(cells);
                        m.arr_set(table, *c, boxed);
                    }
                    Step::Churn(n) => {
                        for i in 0..*n {
                            let _ = m.alloc_tuple(&[Value::Int(i as i64), Value::Unit]);
                        }
                    }
                }
            }
            acc
        }
        Prog::Fork(a, b) => {
            let (x, y) = m.fork(
                |m| Value::Int(run_prog(m, cells, a)),
                |m| Value::Int(run_prog(m, cells, b)),
            );
            x.expect_int() + y.expect_int()
        }
    }
}

fn configs() -> Vec<(&'static str, RuntimeConfig)> {
    vec![
        ("default", RuntimeConfig::managed()),
        (
            "pressure",
            RuntimeConfig {
                policy: GcPolicy {
                    lgc_trigger_bytes: 512,
                    cgc_trigger_pinned_bytes: 2048,
                    immediate_block_free: true,
                },
                store: StoreConfig {
                    block_words: 32,
                    ..Default::default()
                },
                ..RuntimeConfig::managed()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random effectful fork-join program computes exactly what the
    /// depth-first oracle computes, under default and aggressive-GC
    /// configurations, with all pins resolved at the end.
    #[test]
    fn random_programs_match_oracle(p in prog(4)) {
        let mut cells = [0i64; NCELLS];
        let expect = oracle(&p, &mut cells);
        for (label, cfg) in configs() {
            let rt = Runtime::new(cfg);
            let got = rt.run(|m| {
                let table = m.alloc_array(NCELLS, Value::Unit);
                let h = m.root(table);
                for c in 0..NCELLS {
                    let zero = m.alloc_tuple(&[Value::Int(0)]);
                    let table = m.get(&h);
                    m.arr_set(table, c, zero);
                }
                Value::Int(run_prog(m, &h, &p))
            });
            prop_assert_eq!(got, Value::Int(expect), "config {}", label);
            let s = rt.stats();
            prop_assert_eq!(s.pinned_bytes, 0, "config {}: pins resolve", label);
        }
    }

    /// Tier agreement: the barrier's fast-tier exits (suspects check,
    /// immediate-store exit, same-leaf pointer-store exit) are pure
    /// elisions of the slow tier. Running the same mutation trace with
    /// the fast tiers enabled and with `force_slow_path` (every access
    /// through the full locate/LCA machinery) must produce identical
    /// results and identical final heap contents.
    #[test]
    fn fast_and_forced_slow_tiers_agree(p in prog(4)) {
        let run_with = |cfg: RuntimeConfig| {
            let rt = Runtime::new(cfg);
            let out = rt.run(|m| {
                let table = m.alloc_array(NCELLS, Value::Unit);
                let h = m.root(table);
                for c in 0..NCELLS {
                    let zero = m.alloc_tuple(&[Value::Int(0)]);
                    let table = m.get(&h);
                    m.arr_set(table, c, zero);
                }
                let acc = run_prog(m, &h, &p);
                // Fold the final heap contents (every cell's boxed int)
                // into the digest so the comparison covers state, not
                // just the accumulated result.
                let mut digest = acc;
                for c in 0..NCELLS {
                    let table = m.get(&h);
                    let boxed = m.arr_get(table, c);
                    let v = m.tuple_get(boxed, 0).expect_int();
                    digest = digest.wrapping_mul(31).wrapping_add(v);
                }
                m.sync_stats();
                let s = m.runtime().stats();
                assert_eq!(
                    s.barrier_read_fast + s.barrier_read_slow,
                    s.barrier_reads,
                    "every counted read lands in exactly one tier"
                );
                assert_eq!(
                    s.barrier_write_fast + s.barrier_write_slow,
                    s.barrier_writes,
                    "every counted write lands in exactly one tier"
                );
                Value::Int(digest)
            });
            (out, rt.stats().barrier_write_fast + rt.stats().barrier_read_fast)
        };
        let (fast_out, _) = run_with(RuntimeConfig::managed());
        let (slow_out, slow_count) = run_with(RuntimeConfig::managed().with_force_slow_path());
        prop_assert_eq!(fast_out, slow_out, "results and final heap contents agree across tiers");
        prop_assert_eq!(slow_count, 0, "force_slow_path leaves no fast-tier entries");
    }

    /// The same programs agree between the sequential executor and the
    /// real-thread executor whenever they are race-free by construction
    /// (no cell is written in one branch of a fork and accessed in the
    /// other — we conservatively only test fork-free programs here, where
    /// the two executors are trivially equivalent, plus pure fork trees).
    #[test]
    fn threaded_matches_sequential_for_leaf_programs(steps in proptest::collection::vec(step(), 0..24)) {
        let p = Prog::Leaf(steps);
        let mut cells = [0i64; NCELLS];
        let expect = oracle(&p, &mut cells);
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(3));
        let got = rt.run(|m| {
            let table = m.alloc_array(NCELLS, Value::Unit);
            let h = m.root(table);
            for c in 0..NCELLS {
                let zero = m.alloc_tuple(&[Value::Int(0)]);
                let table = m.get(&h);
                m.arr_set(table, c, zero);
            }
            Value::Int(run_prog(m, &h, &p))
        });
        prop_assert_eq!(got, Value::Int(expect));
    }
}
