//! Behavioral tests for the entanglement-managed runtime: barriers,
//! pinning, unpin-at-join, collector interaction, modes, and executors.

use mpl_runtime::{GcPolicy, Runtime, RuntimeConfig, SimParams, StoreConfig, Value};

fn tiny_gc() -> GcPolicy {
    GcPolicy {
        lgc_trigger_bytes: 2048,
        cgc_trigger_pinned_bytes: usize::MAX,
        immediate_block_free: true,
    }
}

#[test]
fn arithmetic_through_heap() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let v = rt.run(|m| {
        let a = m.alloc_ref(Value::Int(40));
        let x = m.read_ref(a).expect_int();
        m.write_ref(a, Value::Int(x + 2));
        m.read_ref(a)
    });
    assert_eq!(v, Value::Int(42));
}

#[test]
fn fork_join_returns_both_results() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let v = rt.run(|m| {
        let (a, b) = m.fork(|_| Value::Int(20), |_| Value::Int(22));
        Value::Int(a.expect_int() + b.expect_int())
    });
    assert_eq!(v, Value::Int(42));
}

fn fib(m: &mut mpl_runtime::Mutator<'_>, n: i64) -> Value {
    if n < 2 {
        return Value::Int(n);
    }
    let (a, b) = m.fork(move |m| fib(m, n - 1), move |m| fib(m, n - 2));
    Value::Int(a.expect_int() + b.expect_int())
}

#[test]
fn nested_forks_fib() {
    let rt = Runtime::new(RuntimeConfig::managed());
    assert_eq!(rt.run(|m| fib(m, 12)), Value::Int(144));
}

/// The canonical entanglement scenario: a pre-fork mutable cell, one task
/// writes a fresh allocation into it, the sibling reads it.
fn entangling_program(rt: &Runtime) -> Value {
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (_, got) = m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(7)]);
                m.write_ref(m.get(&c), boxed);
                Value::Unit
            },
            |m| {
                // Depth-first execution guarantees the sibling's write is
                // visible: the read reveals a remote object.
                let v = m.read_ref(m.get(&c));
                match v {
                    Value::Obj(_) => m.tuple_get(v, 0),
                    _ => Value::Int(-1),
                }
            },
        );
        got
    })
}

#[test]
fn managed_mode_pins_and_unpins() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let got = entangling_program(&rt);
    assert_eq!(got, Value::Int(7));
    let s = rt.stats();
    assert!(s.entangled_reads >= 1, "entangled read must be counted");
    assert!(s.pins >= 1, "the remote object must have been pinned");
    assert!(s.unpins >= 1, "the join must unpin it");
    assert_eq!(s.pinned_bytes, 0, "no pins outlive the join");
}

#[test]
fn detect_only_mode_aborts_on_entanglement() {
    let rt = Runtime::new(RuntimeConfig::detect_only());
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entangling_program(&rt)));
    let msg = *r.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("entanglement detected"), "got: {msg}");
}

#[test]
fn detect_only_is_fine_when_disentangled() {
    let rt = Runtime::new(RuntimeConfig::detect_only());
    assert_eq!(rt.run(|m| fib(m, 10)), Value::Int(55));
    assert_eq!(rt.stats().pins, 0);
}

#[test]
fn no_barrier_mode_skips_entanglement_bookkeeping() {
    let rt = Runtime::new(RuntimeConfig::no_barrier());
    assert_eq!(rt.run(|m| fib(m, 10)), Value::Int(55));
    let s = rt.stats();
    assert_eq!(s.barrier_reads, 0);
    assert_eq!(s.entangled_reads, 0);
    assert_eq!(s.pins, 0);
}

#[test]
fn disentangled_programs_never_pin() {
    // The "shielding" claim: purely functional (or locally effectful)
    // parallel code pays only the barrier check.
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let (a, b) = m.fork(
            |m| {
                // Local effects only: a cell allocated and used within one task.
                let r = m.alloc_ref(Value::Int(0));
                for i in 0..50 {
                    m.write_ref(r, Value::Int(i));
                }
                m.read_ref(r)
            },
            |m| {
                let arr = m.alloc_array(32, Value::Int(1));
                let mut acc = 0;
                for i in 0..32 {
                    acc += m.arr_get(arr, i).expect_int();
                }
                Value::Int(acc)
            },
        );
        Value::Int(a.expect_int() + b.expect_int())
    });
    let s = rt.stats();
    assert!(s.barrier_reads > 0, "barriers do run");
    assert_eq!(s.entangled_reads, 0);
    assert_eq!(s.pins, 0);
    assert_eq!(s.max_pinned_bytes, 0);
}

#[test]
fn lgc_triggers_and_preserves_data() {
    let cfg = RuntimeConfig {
        policy: tiny_gc(),
        store: StoreConfig {
            block_words: 64,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    };
    let rt = Runtime::new(cfg);
    let v = rt.run(|m| {
        // Build a long-lived list while churning garbage.
        let mut list = m.alloc_tuple(&[Value::Int(0), Value::Unit]);
        let h = m.root(list);
        for i in 1..500 {
            for _ in 0..4 {
                let _junk = m.alloc_tuple(&[Value::Int(i), Value::Int(i)]);
            }
            let prev = m.get(&h);
            list = m.alloc_tuple(&[Value::Int(i), prev]);
            m.set_root(&h, list);
        }
        // Sum the list.
        let mut cur = m.get(&h);
        let mut sum = 0i64;
        loop {
            sum += m.tuple_get(cur, 0).expect_int();
            match m.tuple_get(cur, 1) {
                Value::Unit => break,
                next => cur = next,
            }
        }
        Value::Int(sum)
    });
    assert_eq!(v, Value::Int((0..500).sum::<i64>()));
    let s = rt.stats();
    assert!(s.lgc_runs > 0, "LGC must have triggered: {s:?}");
    assert!(s.lgc_reclaimed_bytes > 0);
}

#[test]
fn cgc_reclaims_dropped_entangled_objects() {
    let cfg = RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 1024,
            cgc_trigger_pinned_bytes: usize::MAX, // manual only
            immediate_block_free: true,
        },
        store: StoreConfig {
            block_words: 32,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    };
    let rt = Runtime::new(cfg);
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        m.fork(
            |m| {
                let boxed = m.alloc_tuple(&[Value::Int(1)]);
                m.write_ref(m.get(&c), boxed);
                // Force a local collection so the pinned object is
                // shielded in place in an entangled chunk.
                for _ in 0..300 {
                    let _ = m.alloc_tuple(&[Value::Int(0)]);
                }
                Value::Unit
            },
            |m| {
                let _ = m.read_ref(m.get(&c));
                // Drop the entangled pointer.
                m.write_ref(m.get(&c), Value::Unit);
                Value::Unit
            },
        );
        Value::Unit
    });
    // After the run the object is unpinned (join) — force CGC to account.
    rt.force_cgc();
    let s = rt.stats();
    assert!(s.pins >= 1);
    assert!(s.cgc_runs >= 1);
}

#[test]
fn handles_track_moving_objects() {
    let cfg = RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 512,
            ..tiny_gc()
        },
        store: StoreConfig {
            block_words: 32,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    };
    let rt = Runtime::new(cfg);
    let v = rt.run(|m| {
        let obj = m.alloc_tuple(&[Value::Int(77)]);
        let h = m.root(obj);
        // Churn enough to force several collections.
        for _ in 0..2000 {
            let _ = m.alloc_tuple(&[Value::Int(0)]);
        }
        let cur = m.get(&h);
        m.tuple_get(cur, 0)
    });
    assert_eq!(v, Value::Int(77));
    assert!(rt.stats().lgc_runs >= 2);
}

#[test]
fn down_pointer_remset_keeps_child_data_alive() {
    let cfg = RuntimeConfig {
        policy: GcPolicy {
            lgc_trigger_bytes: 512,
            ..tiny_gc()
        },
        store: StoreConfig {
            block_words: 32,
            ..Default::default()
        },
        ..RuntimeConfig::managed()
    };
    let rt = Runtime::new(cfg);
    let v = rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (got, _) = m.fork(
            |m| {
                // Child writes its own allocation into the parent's cell
                // (a down-pointer), drops its direct reference, churns to
                // force its LGC, then reads back through the cell.
                let data = m.alloc_tuple(&[Value::Int(123)]);
                m.write_ref(m.get(&c), data);
                for _ in 0..2000 {
                    let _ = m.alloc_tuple(&[Value::Int(9)]);
                }
                let back = m.read_ref(m.get(&c));
                m.tuple_get(back, 0)
            },
            |_| Value::Unit,
        );
        got
    });
    assert_eq!(v, Value::Int(123));
    assert!(rt.stats().remset_inserts >= 1);
}

#[test]
fn raw_arrays_support_atomics() {
    let rt = Runtime::new(RuntimeConfig::managed());
    let v = rt.run(|m| {
        let a = m.alloc_raw(4);
        assert!(m.raw_cas(a, 0, 0, 5));
        assert!(!m.raw_cas(a, 0, 0, 9), "CAS must fail on mismatch");
        assert_eq!(m.raw_fetch_add(a, 0, 10), 5);
        m.raw_set(a, 1, u64::MAX);
        assert_eq!(m.raw_get(a, 1), u64::MAX);
        Value::Int(m.raw_get(a, 0) as i64)
    });
    assert_eq!(v, Value::Int(15));
}

#[test]
fn alloc_raw_is_zero_initialized() {
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        for len in [1, 4, 64, 1000] {
            let a = m.alloc_raw(len);
            for i in 0..len {
                assert_eq!(
                    m.raw_get(a, i),
                    0,
                    "slot {i} of a fresh {len}-word raw array"
                );
            }
        }
        Value::Unit
    });
}

#[test]
fn disentangled_work_takes_zero_slow_path_entries() {
    // The tier-split contract: non-suspect reads and immediate stores
    // complete on the fast tier every single time — no lock, no Arc
    // clone, no heap-table query.
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Int(0));
        let arr = m.alloc_array(16, Value::Int(1));
        for i in 0..200 {
            m.write_ref(cell, Value::Int(i)); // immediate store: fast
            let _ = m.read_ref(cell); // non-suspect read: fast
            m.arr_set(arr, (i as usize) % 16, Value::Int(i)); // immediate store: fast
            let _ = m.arr_get(arr, (i as usize) % 16); // non-suspect read: fast
        }
        Value::Unit
    });
    let s = rt.stats();
    assert_eq!(s.barrier_read_slow, 0, "disentangled reads never go slow");
    assert_eq!(s.barrier_write_slow, 0, "immediate stores never go slow");
    assert!(s.barrier_read_fast >= 400, "fast reads counted: {s:?}");
    assert!(s.barrier_write_fast >= 400, "fast writes counted: {s:?}");
}

#[test]
fn same_leaf_pointer_stores_are_predominantly_fast_tier() {
    // Pointer stores within one leaf heap take the chunk-owner fast exit
    // whenever the target's chunk is already in the task's cache; only
    // cache misses (fresh chunks) fall to the slow tier.
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let arr = m.alloc_array(16, Value::Unit);
        let mut boxed = m.alloc_tuple(&[Value::Int(0)]);
        for i in 0..200 {
            m.arr_set(arr, (i as usize) % 16, boxed);
            let b = m.arr_get(arr, (i as usize) % 16);
            let _ = m.tuple_get(b, 0);
            boxed = m.alloc_tuple(&[Value::Int(i)]);
        }
        Value::Unit
    });
    let s = rt.stats();
    assert!(
        s.barrier_write_fast > s.barrier_write_slow,
        "same-leaf pointer stores mostly fast: {s:?}"
    );
    assert_eq!(s.barrier_read_slow, 0, "reads all fast: {s:?}");
}

#[test]
fn entangling_program_counts_slow_path_tiers() {
    let rt = Runtime::new(RuntimeConfig::managed());
    entangling_program(&rt);
    let s = rt.stats();
    assert!(
        s.barrier_read_slow >= 1,
        "the entangled read must be slow-tier: {s:?}"
    );
    assert!(
        s.barrier_write_slow >= 1,
        "the down-pointer write must be slow-tier: {s:?}"
    );
}

#[test]
fn force_slow_path_disables_fast_tier() {
    let rt = Runtime::new(RuntimeConfig::managed().with_force_slow_path());
    let v = rt.run(|m| {
        let cell = m.alloc_ref(Value::Int(0));
        for i in 0..50 {
            m.write_ref(cell, Value::Int(i));
            let _ = m.read_ref(cell);
        }
        m.read_ref(cell)
    });
    assert_eq!(v, Value::Int(49));
    let s = rt.stats();
    assert_eq!(s.barrier_write_fast, 0, "no fast writes when forced slow");
    assert!(s.barrier_write_slow >= 50);
    assert!(s.barrier_read_slow >= 50);
}

/// `len` and `read_str` are accessors without an entanglement barrier,
/// but they are still reads: they must charge the work model like
/// `tuple_get`/`raw_get` so DAG-based speedup simulations see them.
#[test]
fn len_and_read_str_charge_work() {
    let work_of = |f: fn(&mut mpl_runtime::Mutator<'_>) -> Value| {
        let rt = Runtime::new(RuntimeConfig::managed().with_dag());
        rt.run(f);
        rt.take_dag().expect("dag recorded").total_work()
    };
    let base = work_of(|m| {
        let _ = m.alloc_str("hello world");
        Value::Unit
    });
    let with_len = work_of(|m| {
        let s = m.alloc_str("hello world");
        for _ in 0..10 {
            let _ = m.len(s);
        }
        Value::Unit
    });
    let with_read = work_of(|m| {
        let s = m.alloc_str("hello world");
        for _ in 0..10 {
            let _ = m.read_str(s);
        }
        Value::Unit
    });
    let read_cost = RuntimeConfig::managed().work.read;
    assert!(
        with_len >= base + 10 * read_cost,
        "len must charge work: base={base}, with_len={with_len}"
    );
    assert!(
        with_read >= base + 10 * read_cost,
        "read_str must charge work: base={base}, with_read={with_read}"
    );
}

#[test]
fn strings_roundtrip() {
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        for s in ["", "a", "hello world", "ünïcodé ✓", "12345678", "123456789"] {
            let v = m.alloc_str(s);
            assert_eq!(m.read_str(v), s);
        }
        Value::Unit
    });
}

#[test]
fn ref_cas_and_failure_value() {
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let r = m.alloc_ref(Value::Int(1));
        assert_eq!(m.ref_cas(r, Value::Int(1), Value::Int(2)), Ok(()));
        assert_eq!(
            m.ref_cas(r, Value::Int(1), Value::Int(3)),
            Err(Value::Int(2))
        );
        Value::Unit
    });
}

#[test]
fn dag_recording_enables_speedup_simulation() {
    let rt = Runtime::new(RuntimeConfig::managed().with_dag());
    rt.run(|m| fib(m, 14));
    let dag = rt.take_dag().expect("dag recorded");
    assert!(dag.total_work() > 0);
    assert!(dag.parallelism() > 2.0, "fib(14) is highly parallel");
    let t1 = mpl_runtime::simulate(
        &dag,
        SimParams {
            procs: 1,
            steal_overhead: 8,
            seed: 1,
        },
    );
    let t8 = mpl_runtime::simulate(
        &dag,
        SimParams {
            procs: 8,
            steal_overhead: 8,
            seed: 1,
        },
    );
    assert!(t8.time < t1.time, "simulated speedup exists");
    assert_eq!(t1.time, dag.total_work());
}

#[test]
fn threaded_executor_matches_sequential_result() {
    let rt = Runtime::new(RuntimeConfig::managed().with_threads(4));
    assert_eq!(rt.run(|m| fib(m, 13)), Value::Int(233));
}

#[test]
fn threaded_executor_handles_entanglement() {
    for _ in 0..10 {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads(4));
        let v = rt.run(|m| {
            let cell = m.alloc_ref(Value::Unit);
            let c = m.root(cell);
            let (a, b) = m.fork(
                |m| {
                    let boxed = m.alloc_tuple(&[Value::Int(5)]);
                    m.write_ref(m.get(&c), boxed);
                    Value::Int(1)
                },
                |m| {
                    // Racy read: may or may not see the sibling's write.
                    match m.read_ref(m.get(&c)) {
                        Value::Obj(o) => m.tuple_get(Value::Obj(o), 0),
                        _ => Value::Int(5), // not yet written: same answer
                    }
                },
            );
            Value::Int(a.expect_int() + b.expect_int() - 1)
        });
        assert_eq!(v, Value::Int(5));
        assert_eq!(rt.stats().pinned_bytes, 0, "joins unpin everything");
    }
}

#[test]
fn entanglement_level_respects_lca() {
    // Entangle across depth-2 subtrees and check pins survive the inner
    // join but not the outer one (via the pinned-bytes gauge).
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let cell = m.alloc_ref(Value::Unit);
        let c = m.root(cell);
        let (_, _) = m.fork(
            |m| {
                // Left subtree forks again; the inner-left task publishes.
                let (x, _) = m.fork(
                    |m| {
                        let boxed = m.alloc_tuple(&[Value::Int(3)]);
                        m.write_ref(m.get(&c), boxed);
                        Value::Unit
                    },
                    |_| Value::Unit,
                );
                x
            },
            |m| {
                // Right task reads: entanglement level = 0 (root LCA).
                let v = m.read_ref(m.get(&c));
                let pinned_now = m.runtime().stats().pinned_bytes;
                if let Value::Obj(_) = v {
                    assert!(pinned_now > 0, "pin active while concurrent");
                }
                Value::Unit
            },
        );
        Value::Unit
    });
    assert_eq!(rt.stats().pinned_bytes, 0);
}

#[test]
fn root_marks_release_in_bulk() {
    let rt = Runtime::new(RuntimeConfig::managed());
    rt.run(|m| {
        let mark = m.mark();
        for i in 0..10 {
            let v = m.alloc_tuple(&[Value::Int(i)]);
            m.root(v);
        }
        m.release(mark);
        let v = m.alloc_tuple(&[Value::Int(99)]);
        let h = m.root(v);
        let cur = m.get(&h);
        assert_eq!(m.tuple_get(cur, 0), Value::Int(99));
        Value::Unit
    });
}
