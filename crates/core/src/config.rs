//! Runtime configuration: execution mode, processors, GC policy, work
//! model.

use mpl_fail::FailPlan;
use mpl_gc::GcPolicy;
use mpl_heap::StoreConfig;
use mpl_sched::SchedMode;

/// How the runtime treats entanglement — the axis of the paper's
/// comparison experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// **This paper**: entanglement is *managed*. Remote accesses pin
    /// their targets at the LCA level; pinned objects are shielded from
    /// the moving local collector and reclaimed by the concurrent
    /// collector; joins unpin.
    #[default]
    Managed,
    /// **Prior MPL** (ICFP 2022): entanglement is *detected* and fatal.
    /// The same barrier runs, but a remote access panics instead of
    /// pinning.
    DetectOnly,
    /// **Unsafe baseline** for barrier-cost measurement: the entanglement
    /// read barrier is compiled away. Only sound for disentangled
    /// programs; down-pointer write barriers (remembered sets) still run
    /// because the hierarchical collector needs them regardless of
    /// entanglement.
    NoEntanglementBarrier,
}

/// Virtual work units charged per runtime operation; these weights drive
/// the DAG the speedup simulation replays. The defaults approximate
/// relative costs of an allocation, a barriered access, and task creation
/// in MPL-like runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkModel {
    /// Base cost of an allocation (plus one unit per 4 fields).
    pub alloc: u64,
    /// Cost of a read (barriered or not).
    pub read: u64,
    /// Cost of a write.
    pub write: u64,
    /// Cost charged to the parent strand per fork.
    pub fork: u64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            alloc: 2,
            read: 1,
            write: 1,
            fork: 8,
        }
    }
}

/// Complete runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Entanglement treatment.
    pub mode: Mode,
    /// Collection thresholds.
    pub policy: GcPolicy,
    /// Store parameters (block sizing).
    pub store: StoreConfig,
    /// Record the computation DAG for scheduler simulation.
    pub record_dag: bool,
    /// Work weights for DAG recording.
    pub work: WorkModel,
    /// Processors for the real-thread executor; `1` (the default) selects
    /// the deterministic depth-first executor.
    pub threads: usize,
    /// Which real-thread execution strategy `fork` uses when
    /// `threads > 1`: the persistent work-stealing pool (the default) or
    /// the legacy thread-per-fork scoped executor.
    pub sched: SchedMode,
    /// Enables the entanglement-candidates ("suspects") read-barrier fast
    /// path (ICFP 2022): reads of objects that never received a
    /// down-pointer write and are not pinned skip the remote check
    /// entirely. Sound because every remote acquisition passes through a
    /// suspect or pinned object. Disable for the E9 ablation.
    pub suspects: bool,
    /// Forces every barriered access onto the slow tier (full
    /// locate/LCA machinery), bypassing the fast-tier exits in
    /// `crates/core/src/barrier.rs`. The slow tier is semantically
    /// complete on its own, so results must be identical with or
    /// without it — which is exactly what the tier-agreement proptest
    /// checks. Diagnostic/testing knob; never faster.
    pub force_slow_path: bool,
    /// Incremental concurrent collection: when nonzero, each CGC pause
    /// traces at most this many objects; the cycle spans multiple
    /// safepoints with mutators running (and SATB-logging) in between.
    /// `0` (the default) runs each cycle to completion in one pause.
    pub cgc_slice_objects: usize,
    /// Enables GC phase-boundary audits and entanglement-event tracing
    /// (`mpl-gc`'s audit layer) for this runtime's lifetime — the
    /// programmatic equivalent of setting `MPL_DEBUG_LGC_VALIDATE`.
    /// Expensive (whole-store scans at collection phase boundaries);
    /// meant for stress tests and debugging, not production runs.
    pub audit: bool,
    /// Enables runtime telemetry (`mpl-obs`) for this runtime's
    /// lifetime: pause/latency histograms, per-worker span timelines,
    /// and the periodic sampler thread behind
    /// [`Runtime::telemetry_report`](crate::Runtime::telemetry_report).
    /// Unlike audits this is cheap enough for production-style runs
    /// (lock-free recording at instrumented sites); when disabled every
    /// emission site costs one relaxed load and a predicted branch.
    pub telemetry: bool,
    /// Deterministic failpoints to arm for this runtime's lifetime
    /// (`mpl-fail`). Armed in [`Runtime::new`](crate::Runtime::new),
    /// disarmed on drop; an empty plan (the default) never touches the
    /// process-global registry, so disarmed sites keep their one-relaxed-
    /// load cost. The `MPL_FAILPOINTS` environment variable arms sites
    /// process-wide instead.
    pub failpoints: FailPlan,
    /// GC-phase stall deadline in nanoseconds for the watchdog thread;
    /// `0` (the default) spawns no watchdog. When a collector phase stays
    /// open past the deadline the watchdog flags it on stderr and dumps
    /// the audit event rings plus the telemetry report — the chaos
    /// harness's answer to "a fault injection wedged a collection".
    pub gc_stall_deadline_ns: u64,
    /// Escalate a GC-stall watchdog fire into cancellation: when set
    /// (and a watchdog is configured), a stalled collector phase trips
    /// the runtime's root [`CancelToken`](crate::CancelToken), so every
    /// in-flight *and future* run on this runtime unwinds with
    /// [`RunError::Cancelled`](crate::RunError) instead of hanging
    /// behind the wedged collection. Off by default because tripping
    /// the root is permanent — it turns a liveness bug into a loud,
    /// recoverable failure, which is what a serving deployment wants
    /// and an interactive debugging session may not.
    pub watchdog_cancels: bool,
    /// Telemetry sampler tick in nanoseconds (only meaningful with
    /// `telemetry` set). The default 25 ms is short enough that even
    /// sub-second benchmark runs collect a useful gauge series; serving
    /// runs that only care about minute-scale trends can widen it to cut
    /// retained-sample volume. Stored as nanoseconds so the config stays
    /// `Copy`-cheap and the interval round-trips exactly through
    /// [`Runtime::telemetry_report`](crate::Runtime::telemetry_report)'s
    /// JSON.
    pub sampler_interval_ns: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            mode: Mode::Managed,
            policy: GcPolicy::default(),
            store: StoreConfig::default(),
            record_dag: false,
            work: WorkModel::default(),
            threads: 1,
            sched: SchedMode::default(),
            suspects: true,
            force_slow_path: false,
            cgc_slice_objects: 0,
            audit: false,
            telemetry: false,
            failpoints: FailPlan::default(),
            gc_stall_deadline_ns: 0,
            watchdog_cancels: false,
            sampler_interval_ns: 25_000_000,
        }
    }
}

impl RuntimeConfig {
    /// The default managed configuration.
    pub fn managed() -> RuntimeConfig {
        RuntimeConfig::default()
    }

    /// Prior-MPL behavior: abort on entanglement.
    pub fn detect_only() -> RuntimeConfig {
        RuntimeConfig {
            mode: Mode::DetectOnly,
            ..RuntimeConfig::default()
        }
    }

    /// Unsafe no-entanglement-barrier baseline.
    pub fn no_barrier() -> RuntimeConfig {
        RuntimeConfig {
            mode: Mode::NoEntanglementBarrier,
            ..RuntimeConfig::default()
        }
    }

    /// Slices concurrent collections into pauses of at most `objects`
    /// traced objects (`0` restores single-pause cycles).
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let mut cfg = RuntimeConfig::managed().with_cgc_slice(256);
    /// cfg.policy.cgc_trigger_pinned_bytes = 64 * 1024;
    /// let rt = Runtime::new(cfg);
    /// let v = rt.run(|m| m.alloc_ref(Value::Int(1)));
    /// assert!(v.as_obj().is_some());
    /// ```
    pub fn with_cgc_slice(mut self, objects: usize) -> RuntimeConfig {
        self.cgc_slice_objects = objects;
        self
    }

    /// Enables DAG recording.
    pub fn with_dag(mut self) -> RuntimeConfig {
        self.record_dag = true;
        self
    }

    /// Enables GC phase-boundary audits and event tracing (see
    /// [`RuntimeConfig::audit`]).
    pub fn with_audit(mut self) -> RuntimeConfig {
        self.audit = true;
        self
    }

    /// Enables runtime telemetry collection and the periodic sampler
    /// thread (see [`RuntimeConfig::telemetry`]).
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed().with_telemetry());
    /// rt.run(|m| m.alloc_ref(Value::Int(1)));
    /// let report = rt.telemetry_report();
    /// assert!(report.chrome_trace.starts_with("{\"traceEvents\":["));
    /// assert!(report.prometheus.contains("# TYPE mpl_lgc_pause_seconds histogram"));
    /// ```
    pub fn with_telemetry(mut self) -> RuntimeConfig {
        self.telemetry = true;
        self
    }

    /// Forces every barriered access onto the slow tier (see
    /// [`RuntimeConfig::force_slow_path`]).
    pub fn with_force_slow_path(mut self) -> RuntimeConfig {
        self.force_slow_path = true;
        self
    }

    /// Sets a soft heap budget in bytes (`0` = unlimited). Allocation
    /// under pressure forces a local collection, then a concurrent
    /// collection, then retries; if the budget is still exhausted the
    /// allocation surfaces a recoverable [`AllocError`](crate::AllocError)
    /// that unwinds the task through the ordinary fork/join panic
    /// propagation path — catch it with
    /// [`Runtime::try_run`](crate::Runtime::try_run).
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed().with_heap_limit(2 * 1024 * 1024));
    /// let v = rt.try_run(|m| m.alloc_ref(Value::Int(1))).expect("fits");
    /// assert!(v.as_obj().is_some());
    /// ```
    pub fn with_heap_limit(mut self, bytes: usize) -> RuntimeConfig {
        self.store.heap_limit = bytes;
        self
    }

    /// Arms deterministic failpoints for this runtime's lifetime (see
    /// [`RuntimeConfig::failpoints`]).
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_fail::{FailAction, FailPlan, FailWhen};
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let plan = FailPlan::new(42).with("sched/steal", FailAction::Yield, FailWhen::OneIn(4));
    /// let rt = Runtime::new(RuntimeConfig::managed().with_failpoints(plan));
    /// rt.run(|m| m.alloc_ref(Value::Int(1)));
    /// ```
    pub fn with_failpoints(mut self, plan: FailPlan) -> RuntimeConfig {
        self.failpoints = plan;
        self
    }

    /// Spawns a GC-stall watchdog with the given deadline (see
    /// [`RuntimeConfig::gc_stall_deadline_ns`]).
    pub fn with_gc_watchdog(mut self, deadline: std::time::Duration) -> RuntimeConfig {
        self.gc_stall_deadline_ns = deadline.as_nanos() as u64;
        self
    }

    /// Makes a watchdog fire trip the runtime's root cancel token (see
    /// [`RuntimeConfig::watchdog_cancels`]). Only meaningful together
    /// with [`RuntimeConfig::with_gc_watchdog`].
    pub fn with_watchdog_cancels(mut self) -> RuntimeConfig {
        self.watchdog_cancels = true;
        self
    }

    /// Sets the telemetry sampler tick (see
    /// [`RuntimeConfig::sampler_interval_ns`]). A zero interval is
    /// rejected — the sampler thread would spin.
    ///
    /// # Example
    ///
    /// ```
    /// use std::time::Duration;
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let cfg = RuntimeConfig::managed()
    ///     .with_telemetry()
    ///     .with_sampler_interval(Duration::from_millis(5));
    /// let rt = Runtime::new(cfg);
    /// rt.run(|m| m.alloc_ref(Value::Int(1)));
    /// assert!(rt.telemetry_report().json.contains("\"sampler_interval_ns\":5000000"));
    /// ```
    pub fn with_sampler_interval(mut self, interval: std::time::Duration) -> RuntimeConfig {
        let ns = interval.as_nanos() as u64;
        assert!(ns > 0, "sampler interval must be nonzero");
        self.sampler_interval_ns = ns;
        self
    }

    /// Sets the real-thread executor's processor count, clamped to the
    /// host's available parallelism (with a warning on stderr) — silent
    /// oversubscription only adds context-switch overhead for the
    /// persistent worker pool. Use [`RuntimeConfig::with_threads_exact`]
    /// to deliberately oversubscribe (protocol stress tests).
    pub fn with_threads(self, threads: usize) -> RuntimeConfig {
        assert!(threads >= 1, "need at least one thread");
        let max = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(threads);
        let clamped = if threads > max {
            eprintln!(
                "mpl-runtime: requested {threads} threads but the host reports \
                 {max} available; clamping to {max} (use with_threads_exact to \
                 oversubscribe deliberately)"
            );
            max
        } else {
            threads
        };
        self.set_threads(clamped)
    }

    /// Sets the processor count exactly as given, without clamping to
    /// host parallelism. Oversubscription is functionally correct (the
    /// concurrent protocols are exercised harder, which is exactly what
    /// the stress tests want) but wasteful for performance runs.
    pub fn with_threads_exact(self, threads: usize) -> RuntimeConfig {
        assert!(threads >= 1, "need at least one thread");
        self.set_threads(threads)
    }

    fn set_threads(mut self, threads: usize) -> RuntimeConfig {
        self.threads = threads;
        self.policy = if threads > 1 {
            GcPolicy {
                immediate_block_free: false,
                ..self.policy
            }
        } else {
            self.policy
        };
        self
    }

    /// Selects the real-thread execution strategy.
    pub fn with_sched(mut self, sched: SchedMode) -> RuntimeConfig {
        self.sched = sched;
        self
    }

    /// Replaces the GC policy (preserving thread-safety of block freeing).
    pub fn with_policy(mut self, policy: GcPolicy) -> RuntimeConfig {
        self.policy = policy;
        if self.threads > 1 {
            self.policy.immediate_block_free = false;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(RuntimeConfig::managed().mode, Mode::Managed);
        assert_eq!(RuntimeConfig::detect_only().mode, Mode::DetectOnly);
        assert_eq!(
            RuntimeConfig::no_barrier().mode,
            Mode::NoEntanglementBarrier
        );
    }

    #[test]
    fn threaded_config_defers_block_freeing() {
        let c = RuntimeConfig::managed().with_threads_exact(4);
        assert_eq!(c.threads, 4);
        assert!(!c.policy.immediate_block_free);
        let c = c.with_policy(GcPolicy::default());
        assert!(
            !c.policy.immediate_block_free,
            "preserved across policy set"
        );
    }

    #[test]
    fn with_threads_clamps_to_host_parallelism() {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap();
        let c = RuntimeConfig::managed().with_threads(max * 4);
        assert_eq!(c.threads, max, "oversubscription is clamped");
        let c = RuntimeConfig::managed().with_threads(1);
        assert_eq!(c.threads, 1, "in-range requests pass through");
        let c = RuntimeConfig::managed().with_threads_exact(max * 4);
        assert_eq!(c.threads, max * 4, "exact setter never clamps");
    }

    #[test]
    fn sched_mode_defaults_to_work_stealing() {
        assert_eq!(RuntimeConfig::managed().sched, SchedMode::WorkStealing);
        let c = RuntimeConfig::managed().with_sched(SchedMode::ScopedThreads);
        assert_eq!(c.sched, SchedMode::ScopedThreads);
    }

    #[test]
    fn dag_flag() {
        assert!(RuntimeConfig::managed().with_dag().record_dag);
        assert!(!RuntimeConfig::managed().record_dag);
    }

    #[test]
    fn telemetry_flag() {
        assert!(RuntimeConfig::managed().with_telemetry().telemetry);
        assert!(!RuntimeConfig::managed().telemetry);
    }

    #[test]
    fn heap_limit_flows_into_the_store_config() {
        assert_eq!(RuntimeConfig::managed().store.heap_limit, 0, "unlimited");
        let c = RuntimeConfig::managed().with_heap_limit(1 << 20);
        assert_eq!(c.store.heap_limit, 1 << 20);
    }

    #[test]
    fn failpoint_plan_rides_the_copy_config() {
        use mpl_fail::{FailAction, FailWhen};
        let plan = FailPlan::new(9).with("lgc/shield", FailAction::Yield, FailWhen::Nth(1));
        let c = RuntimeConfig::managed().with_failpoints(plan);
        let copied = c; // RuntimeConfig stays Copy with the plan aboard
        assert_eq!(copied.failpoints, plan);
        assert!(RuntimeConfig::managed().failpoints.is_empty());
    }

    #[test]
    fn sampler_interval() {
        assert_eq!(
            RuntimeConfig::managed().sampler_interval_ns,
            25_000_000,
            "default tick is 25ms"
        );
        let c =
            RuntimeConfig::managed().with_sampler_interval(std::time::Duration::from_millis(100));
        assert_eq!(c.sampler_interval_ns, 100_000_000);
    }

    #[test]
    #[should_panic(expected = "sampler interval must be nonzero")]
    fn sampler_interval_rejects_zero() {
        let _ = RuntimeConfig::managed().with_sampler_interval(std::time::Duration::ZERO);
    }

    #[test]
    fn watchdog_deadline() {
        let c = RuntimeConfig::managed().with_gc_watchdog(std::time::Duration::from_millis(50));
        assert_eq!(c.gc_stall_deadline_ns, 50_000_000);
        assert_eq!(RuntimeConfig::managed().gc_stall_deadline_ns, 0);
    }

    #[test]
    fn watchdog_cancels_flag() {
        assert!(!RuntimeConfig::managed().watchdog_cancels, "off by default");
        let c = RuntimeConfig::managed().with_watchdog_cancels();
        assert!(c.watchdog_cancels);
        let copied = c; // stays Copy
        assert!(copied.watchdog_cancels);
    }
}
