//! The mutator interface: what compiled Parallel ML code would call.
//!
//! A [`Mutator`] is one task's view of the runtime: allocation into its
//! own leaf heap, barriered mutable accesses (where entanglement is
//! detected and managed), immutable reads, rooting, and `fork`. The
//! barrier tier split itself (fast path vs slow path) lives in
//! `crate::barrier`; the lock-free root stack lives in `crate::roots`.
//!
//! # Rooting discipline
//!
//! Collections run inside *allocating* calls (and, under real threads,
//! concurrently in other tasks). Any [`Value`] held across an allocating
//! call — including [`Mutator::fork`] — must be registered with
//! [`Mutator::root`]; argument values of the call itself are rooted
//! automatically. Immediates never need rooting.
//!
//! # Hot-path design
//!
//! Mutator operations are the compiled program's inner loop, so each op
//! touches global structures as little as possible: a four-entry
//! task-local block cache short-circuits the block registry for repeated
//! accesses to the same object/array, the allocation fast path is a
//! single bump-pointer reservation in a cached size-class block (no lock,
//! no `Arc` clone, no per-object `Vec` — field words are staged in a
//! reused task scratch buffer), and rooting is a push onto the task's
//! private lock-free [`crate::roots::RootStack`]. Down-pointer
//! remembered-set entries are buffered task-locally (with per-object
//! dedup) and published in batches at safepoints — see
//! [`Mutator::flush_remset`] for the flush points and the soundness
//! argument.

use std::collections::HashSet;
use std::sync::Arc;

use mpl_gc::collect_local;
use mpl_heap::{
    size_class, Block, ObjKind, ObjRef, RemsetEntry, TenantBudget, Value, Word, NUM_SIZE_CLASSES,
    OBJECT_HEADER_WORDS,
};
use mpl_sched::{DagBuilder, StrandId};

use crate::cancel::{CancelToken, Cancelled};
use crate::config::Mode;
use crate::roots::RootStack;
use crate::runtime::Runtime;

/// Message used when `Mode::DetectOnly` encounters entanglement, matching
/// prior MPL's fatal entanglement report.
pub const ENTANGLEMENT_PANIC: &str =
    "entanglement detected: task accessed an object allocated by a concurrent task";

/// An allocation rejected by the heap budget
/// ([`crate::RuntimeConfig::with_heap_limit`]) after both collectors ran
/// and the live footprint still exceeded the limit — or injected by the
/// `alloc/words` failpoint.
///
/// The error unwinds out of the allocating call as a panic payload and
/// rides the fork/join propagation path (each join re-raises a branch
/// panic after its sibling parks), so every ancestor task's [`Mutator`]
/// drops and deregisters normally. [`crate::Runtime::try_run`] catches it
/// at the top and returns it as a value; the runtime stays usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes the failing allocation requested.
    pub requested: usize,
    /// The configured heap budget (0 when the failure was injected by a
    /// failpoint rather than the budget).
    pub limit: usize,
    /// Live bytes observed after the final forced collection.
    pub live_bytes: usize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.limit == 0 {
            write!(
                f,
                "allocation of {} bytes failed (injected)",
                self.requested
            )
        } else {
            write!(
                f,
                "allocation of {} bytes exceeds heap limit ({} live of {} budget) after forced collection",
                self.requested, self.live_bytes, self.limit
            )
        }
    }
}

impl std::error::Error for AllocError {}

/// Buffered remembered-set entries are published once the buffer reaches
/// this size, bounding the memory a write-heavy task can defer.
const REMSET_BUFFER_CAP: usize = 256;

/// A rooted value handle. Immediates are stored inline; objects live in
/// the creating task's lock-free root stack and survive (and track)
/// moving collections. A handle may be read from descendant tasks (the
/// creating task is suspended, so its stack is stable), which is how
/// fork branches access pre-fork values. Dereferencing is a single
/// atomic slot load — no lock, no `Arc` clone.
#[derive(Clone, Debug)]
pub struct Handle(HandleRepr);

#[derive(Clone, Debug)]
enum HandleRepr {
    Imm(Value),
    Slot(Arc<RootStack>, usize),
}

/// A watermark for bulk-releasing roots (scope exit).
#[derive(Clone, Copy, Debug)]
pub struct RootMark(usize);

/// RAII collector-safe window on a task's SATB shard: while held, the
/// concurrent collector's snapshot handshake does not wait on this task.
/// Entered around every region where the task either blocks (fork branch
/// suspension, the `cgc_gate` inside `force_cgc`/`maybe_cgc`) or runs for
/// an unbounded stretch without reaching a poll point (`run_lgc`).
///
/// Soundness: entering flushes the shard's SATB buffer and the exit
/// re-acks the current epoch, so a snapshot taken while this window is
/// open sees every pre-window logged pointer; the wrapped regions perform
/// no unlogged entangled-pointer deletions (branch bodies mutate through
/// their *own* shards, and the collectors' own heap surgery is covered by
/// the forwarding/graveyard arguments in `run_lgc`). Windows nest — the
/// shard's `safe` word is a depth counter.
struct SafeWindow<'rt> {
    st: &'rt mpl_gc::CgcState,
    shard: Arc<mpl_gc::SatbShard>,
}

impl<'rt> SafeWindow<'rt> {
    fn enter(st: &'rt mpl_gc::CgcState, shard: Arc<mpl_gc::SatbShard>) -> SafeWindow<'rt> {
        st.enter_safe(&shard);
        SafeWindow { st, shard }
    }
}

impl Drop for SafeWindow<'_> {
    fn drop(&mut self) {
        self.st.exit_safe(&self.shard);
    }
}

/// A resolved object location: current address plus its (cached) block.
struct Located {
    r: ObjRef,
    block: Arc<Block>,
}

/// Per-task execution state.
#[derive(Debug)]
pub(crate) struct TaskCtx {
    pub(crate) path: Vec<u32>,
    pub(crate) roots: Arc<RootStack>,
    pub(crate) alloc_since: usize,
    pub(crate) dag: Option<Arc<DagBuilder>>,
    pub(crate) strand: StrandId,
    pub(crate) work: u64,
    pub(crate) block_cache: [Option<(u32, Arc<Block>)>; 4],
    /// Per-size-class bump targets: the task's current allocation block
    /// for each class, refreshed from the heap after every store-path
    /// (overflow) allocation and dropped at collections.
    pub(crate) alloc_cache: [Option<Arc<Block>>; NUM_SIZE_CLASSES],
    /// Reused field staging buffers so the allocation paths never build
    /// a per-object `Vec` (taken/restored around each allocation).
    pub(crate) scratch_vals: Vec<Value>,
    pub(crate) scratch_words: Vec<Word>,
    pub(crate) pending: PendingStats,
    /// Size-proportional collection budget: collect once `alloc_since`
    /// exceeds `max(policy trigger, 2 × last survivors)`. Keeps total
    /// copying linear even when joins repeatedly merge surviving data.
    pub(crate) lgc_budget: usize,
    /// Whether this task has ever acquired a remote (entangled) pointer.
    /// Every first acquisition flows through `pin_cached`, which sets
    /// this; once set, allocations scan their pointer fields and pin any
    /// remote target (the allocation barrier), because a raw remote
    /// pointer stored into a fresh local object creates a cross-heap
    /// edge no other barrier ever sees. Disentangled tasks never set it
    /// and keep the one-branch allocation fast path.
    pub(crate) saw_remote: bool,
    /// Mutator-private remembered-set write buffer: down-pointer entries
    /// recorded by the write barrier, published in batches by
    /// [`Mutator::flush_remset`]. Entries only ever target heaps on this
    /// task's own path, which is why deferring publication to the
    /// task's own safepoints is sound (see `flush_remset`).
    pub(crate) remset_buf: Vec<(u32, RemsetEntry)>,
    /// Per-object dedup for the buffer: (dst heap, src, field) triples
    /// already buffered since the last flush. Cleared at every flush —
    /// a collection may drop a published entry (source died), so a
    /// later re-write of the same field must be able to re-insert it.
    pub(crate) remset_seen: HashSet<(u32, ObjRef, u32)>,
    /// The tenant budget the leaf heap is accounted against (resolved
    /// once at task setup; child heaps inherit it at fork). `None` for
    /// unbudgeted tasks — the common case, which pays one branch.
    pub(crate) budget: Option<Arc<TenantBudget>>,
    /// True for a tenant-session root task: its root stack is owned (and
    /// registered) by the session, not this task, so `finish_task` must
    /// not deregister it.
    pub(crate) persistent: bool,
    /// This task's SATB shard: a private modbuf the barriers log into,
    /// flushed to the collector at capacity and at safepoints, plus the
    /// safe/ack words the collector's snapshot handshake reads. Every
    /// registered shard must keep polling ([`CgcState::poll_handshake`]),
    /// sit inside a safe window, or deregister — otherwise the handshake
    /// stalls; `finish_task` deregisters unconditionally (the shard,
    /// unlike a persistent session's root stack, is per-task state).
    pub(crate) satb: Arc<mpl_gc::SatbShard>,
    /// Cooperative-cancellation token, inherited at fork (like the
    /// tenant budget). Polled at the sites that already ack SATB
    /// handshakes — every allocation and both barrier slow tiers — plus
    /// fork entry, so a tripped token unwinds within one poll interval.
    /// `None` only for contexts built outside a `Runtime::run*` entry
    /// point; runs always carry a per-run child of the runtime's root
    /// token.
    pub(crate) cancel: Option<CancelToken>,
}

/// Task-buffered counters, flushed to the global [`mpl_heap::StoreStats`]
/// at safepoints (forks, joins, collections, and every ~16 KiB of
/// allocation) so the hot path pays no global atomics.
#[derive(Debug, Default)]
pub(crate) struct PendingStats {
    pub(crate) allocs: u64,
    pub(crate) alloc_bytes: usize,
    pub(crate) barrier_reads: u64,
    pub(crate) barrier_writes: u64,
    pub(crate) read_fast: u64,
    pub(crate) read_slow: u64,
    pub(crate) write_fast: u64,
    pub(crate) write_slow: u64,
    pub(crate) entangled_reads: u64,
    pub(crate) entangled_writes: u64,
    pub(crate) remset_buffered: u64,
    pub(crate) remset_dedup_hits: u64,
}

impl PendingStats {
    fn is_empty(&self) -> bool {
        self.allocs == 0
            && self.barrier_reads == 0
            && self.barrier_writes == 0
            && self.read_fast == 0
            && self.read_slow == 0
            && self.write_fast == 0
            && self.write_slow == 0
            && self.entangled_reads == 0
            && self.entangled_writes == 0
            && self.remset_buffered == 0
            && self.remset_dedup_hits == 0
    }
}

impl TaskCtx {
    pub(crate) fn new(
        path: Vec<u32>,
        dag: Option<Arc<DagBuilder>>,
        strand: StrandId,
        rt: &Runtime,
        cancel: Option<CancelToken>,
    ) -> TaskCtx {
        let roots = Arc::new(RootStack::new());
        rt.register_roots(&roots);
        let budget = rt
            .store()
            .budget_of(*path.last().expect("task path is never empty"));
        TaskCtx {
            path,
            roots,
            alloc_since: 0,
            dag,
            strand,
            work: 0,
            block_cache: [None, None, None, None],
            alloc_cache: std::array::from_fn(|_| None),
            scratch_vals: Vec::new(),
            scratch_words: Vec::new(),
            pending: PendingStats::default(),
            lgc_budget: rt.config().policy.lgc_trigger_bytes,
            saw_remote: false,
            remset_buf: Vec::new(),
            remset_seen: HashSet::new(),
            budget,
            persistent: false,
            satb: rt.cgc_state().register_shard(),
            cancel,
        }
    }

    /// A root task resuming on a persistent tenant session: reuses the
    /// session's already-registered root stack (handles created in
    /// earlier requests stay valid) and restores the session's carried
    /// collection debt, so garbage accumulated across requests still
    /// triggers the root heap's local collections.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume(
        path: Vec<u32>,
        dag: Option<Arc<DagBuilder>>,
        strand: StrandId,
        rt: &Runtime,
        roots: Arc<RootStack>,
        alloc_since: usize,
        lgc_budget: usize,
        cancel: Option<CancelToken>,
    ) -> TaskCtx {
        let budget = rt
            .store()
            .budget_of(*path.last().expect("task path is never empty"));
        TaskCtx {
            path,
            roots,
            alloc_since,
            dag,
            strand,
            work: 0,
            block_cache: [None, None, None, None],
            alloc_cache: std::array::from_fn(|_| None),
            scratch_vals: Vec::new(),
            scratch_words: Vec::new(),
            pending: PendingStats::default(),
            lgc_budget: lgc_budget.max(rt.config().policy.lgc_trigger_bytes),
            saw_remote: false,
            remset_buf: Vec::new(),
            remset_seen: HashSet::new(),
            budget,
            persistent: true,
            satb: rt.cgc_state().register_shard(),
            cancel,
        }
    }
}

/// One task's interface to the runtime.
#[derive(Debug)]
pub struct Mutator<'rt> {
    pub(crate) rt: &'rt Runtime,
    pub(crate) ctx: TaskCtx,
}

impl<'rt> Mutator<'rt> {
    pub(crate) fn new(rt: &'rt Runtime, ctx: TaskCtx) -> Mutator<'rt> {
        Mutator { rt, ctx }
    }

    /// The runtime this mutator belongs to.
    pub fn runtime(&self) -> &'rt Runtime {
        self.rt
    }

    /// The task's root-to-leaf heap path (canonical ids).
    pub fn path(&self) -> &[u32] {
        &self.ctx.path
    }

    /// Charges `n` units of modeled computational work to the current
    /// strand (for DAG-based scheduling experiments).
    pub fn work(&mut self, n: u64) {
        self.ctx.work += n;
    }

    /// Publishes the task-buffered counters to the global
    /// [`mpl_heap::StoreStats`] now, instead of at the next safepoint.
    /// Experiment harnesses call this before sampling
    /// [`Runtime::stats`] so per-tier deltas are exact.
    pub fn sync_stats(&mut self) {
        self.flush_stats();
    }

    /// The cooperative-cancellation poll point: if this task's token (or
    /// an ancestor's) has tripped, begin unwinding with a [`Cancelled`]
    /// payload. The unwind rides the exact path an [`AllocError`] takes
    /// — caught per branch in `run_branch`, re-raised by the parent's
    /// join after heap merge and sibling-result release, and caught at
    /// the top by `Runtime::try_run*` — so every pin, SATB shard, remset
    /// buffer, and registry entry is released on the way out. Disabled
    /// cost (token live, no deadline): one branch plus one atomic load
    /// per token on the (two-deep) chain, on paths that already load the
    /// handshake atomics.
    #[inline]
    pub(crate) fn poll_cancel(&mut self) {
        let Some(token) = &self.ctx.cancel else {
            return;
        };
        if let Some(reason) = token.poll() {
            // One count per task that starts a cancellation unwind (the
            // root and each live branch of the cancelled tree).
            self.rt.store().stats().on_cancel_requested();
            mpl_fail::hit_hard("cancel/unwind");
            std::panic::panic_any(Cancelled { reason });
        }
    }

    pub(crate) fn finish_task(&mut self) {
        self.flush_work();
        self.flush_remset();
        // A session root task borrows the session's persistent stack —
        // it stays registered (a CGC root) for the session's lifetime.
        if !self.ctx.persistent {
            self.rt.unregister_roots(&self.ctx.roots);
        }
        // The SATB shard is per-task even on persistent sessions: a
        // registered shard that nobody polls would stall the collector's
        // snapshot handshake forever. Deregistration drains its buffer.
        self.rt.cgc_state().deregister_shard(&self.ctx.satb);
        self.ctx.dag = None;
    }

    fn flush_work(&mut self) {
        if let Some(dag) = &self.ctx.dag {
            if self.ctx.work > 0 {
                dag.add_work(self.ctx.strand, self.ctx.work);
            }
        }
        self.ctx.work = 0;
        self.flush_stats();
    }

    pub(crate) fn flush_stats(&mut self) {
        let p = std::mem::take(&mut self.ctx.pending);
        if p.is_empty() {
            return;
        }
        // Tenant accounting rides the same batch the global gauge uses.
        if let Some(budget) = &self.ctx.budget {
            budget.charge(p.alloc_bytes);
        }
        let stats = self.rt.store().stats();
        stats.on_alloc_batch(p.allocs, p.alloc_bytes);
        stats.on_barrier_batch(
            p.barrier_reads,
            p.barrier_writes,
            p.entangled_reads,
            p.entangled_writes,
        );
        stats.on_barrier_tiers(p.read_fast, p.read_slow, p.write_fast, p.write_slow);
        stats.on_remset_buffer_batch(p.remset_buffered, p.remset_dedup_hits);
    }

    // ---- remembered-set write buffer ------------------------------------

    /// Buffers a down-pointer remembered-set entry targeting `dst_heap`
    /// (a heap on this task's own path), deduplicating repeated writes
    /// of the same field. Publication happens at the next flush point.
    pub(crate) fn buffer_remset(&mut self, dst_heap: u32, entry: RemsetEntry) {
        if self
            .ctx
            .remset_seen
            .insert((dst_heap, entry.src, entry.field))
        {
            self.ctx.remset_buf.push((dst_heap, entry));
            self.ctx.pending.remset_buffered += 1;
            if self.ctx.remset_buf.len() >= REMSET_BUFFER_CAP {
                self.flush_remset();
            }
        } else {
            self.ctx.pending.remset_dedup_hits += 1;
        }
    }

    /// Publishes the buffered remembered-set entries into their owning
    /// heaps (batched per destination: one heap-table acquisition and
    /// one remset lock per destination heap, instead of one of each per
    /// down-pointer write).
    ///
    /// # Flush points, and why they suffice
    ///
    /// The write barrier only buffers an entry when both the source and
    /// the (deeper) target are **local** to this task, so every buffered
    /// entry targets a heap on this task's own root-to-leaf path. The
    /// collector that consumes a heap's remembered set is the LGC of
    /// that heap, which can only be run by the task whose path ends
    /// there — and the tasks owning this task's ancestor heaps are
    /// suspended at their forks for as long as this task runs.
    /// Therefore it suffices to flush:
    ///
    /// * before this task's **own local collection** ([`Mutator::run_lgc`]);
    /// * at this task's **join points** (in [`Mutator::fork`], once both
    ///   branches have merged back);
    /// * when the task **finishes or is dropped** (including panic
    ///   unwinding) — after which an ancestor may resume and collect a
    ///   heap that buffered entries pointed into;
    /// * on **capacity** ([`REMSET_BUFFER_CAP`]), which only bounds
    ///   memory — publishing early is always sound.
    ///
    /// The dedup set is cleared here: a collection rebuilds remembered
    /// sets keeping only still-valid entries, so a field written again
    /// after a flush must be re-insertable.
    pub(crate) fn flush_remset(&mut self) {
        if self.ctx.remset_buf.is_empty() {
            self.ctx.remset_seen.clear();
            return;
        }
        let _span = mpl_obs::span_guard(mpl_obs::Metric::RemsetFlush);
        let mut buf = std::mem::take(&mut self.ctx.remset_buf);
        self.ctx.remset_seen.clear();
        // Group by destination heap so each heap's lock is taken once.
        buf.sort_unstable_by_key(|(dst, _)| *dst);
        let store = self.rt.store();
        let mut start = 0;
        while start < buf.len() {
            let dst = buf[start].0;
            let end = start + buf[start..].iter().take_while(|(d, _)| *d == dst).count();
            let entries: Vec<RemsetEntry> = buf[start..end].iter().map(|(_, e)| *e).collect();
            store.remember_batch(dst, &entries);
            start = end;
        }
        buf.clear();
        self.ctx.remset_buf = buf;
    }

    pub(crate) fn leaf_heap(&self) -> u32 {
        *self.ctx.path.last().expect("task path is never empty")
    }

    // ---- hot-path plumbing ----------------------------------------------

    fn block(&mut self, id: u32) -> Arc<Block> {
        let slot = (id & 3) as usize;
        if let Some((bid, b)) = &self.ctx.block_cache[slot] {
            if *bid == id {
                return Arc::clone(b);
            }
        }
        let b = self.rt.store().blocks().get(id);
        self.ctx.block_cache[slot] = Some((id, Arc::clone(&b)));
        b
    }

    /// Like [`Mutator::locate`], but returns only the reference and leaves
    /// the block in the cache — callers borrow it with
    /// [`Mutator::cached_block`], avoiding an `Arc` clone per operation.
    pub(crate) fn locate_ref(&mut self, v: Value, what: &str) -> ObjRef {
        let mut r = match v {
            Value::Obj(r) => r,
            other => panic!("{what} expects an object, found {other:?}"),
        };
        loop {
            let slot = (r.block() & 3) as usize;
            let hit = matches!(&self.ctx.block_cache[slot], Some((bid, _)) if *bid == r.block());
            if !hit {
                let b = self.rt.store().blocks().get(r.block());
                self.ctx.block_cache[slot] = Some((r.block(), b));
            }
            let (_, block) = self.ctx.block_cache[slot].as_ref().unwrap();
            match block.get(r.word()).forward_ref() {
                Some(next) => r = next,
                None => return r,
            }
        }
    }

    /// Borrows the cached block for `r` (must have been located by
    /// [`Mutator::locate_ref`] in the same operation, with no intervening
    /// cache traffic).
    pub(crate) fn cached_block(&self, r: ObjRef) -> &Block {
        match &self.ctx.block_cache[(r.block() & 3) as usize] {
            Some((bid, b)) if *bid == r.block() => b,
            _ => unreachable!("cached_block without a preceding locate_ref"),
        }
    }

    /// Resolves a value to its current object location, chasing
    /// forwarding. Panics with `what` context on non-objects and dangling
    /// references.
    fn locate(&mut self, v: Value, what: &str) -> Located {
        let mut r = match v {
            Value::Obj(r) => r,
            other => panic!("{what} expects an object, found {other:?}"),
        };
        loop {
            let block = self.block(r.block());
            match block.get(r.word()).forward_ref() {
                Some(next) => r = next,
                None => return Located { r, block },
            }
        }
    }

    // ---- rooting --------------------------------------------------------

    /// Roots a value; the handle stays valid across collections.
    ///
    /// Any object value held across an allocating call (including
    /// [`Mutator::fork`]) must be rooted, or a local collection may move
    /// the object out from under it. Handles are also the way to pass
    /// parent data into fork branches: [`Mutator::get`] works from the
    /// creating task *and* from its descendants.
    ///
    /// Rooting is lock-free: a push onto the task's private
    /// [`crate::roots::RootStack`], published to collectors by a single
    /// release store.
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed());
    /// let v = rt.run(|m| {
    ///     let cell = m.alloc_ref(Value::Int(5));
    ///     let h = m.root(cell);
    ///     m.force_lgc(&mut []); // may move the cell; the handle tracks it
    ///     let cell = m.get(&h);
    ///     m.read_ref(cell)
    /// });
    /// assert_eq!(v, Value::Int(5));
    /// ```
    pub fn root(&mut self, v: Value) -> Handle {
        match v {
            Value::Obj(r) => {
                let slot = self.ctx.roots.push(r);
                Handle(HandleRepr::Slot(Arc::clone(&self.ctx.roots), slot))
            }
            imm => Handle(HandleRepr::Imm(imm)),
        }
    }

    /// Reads a rooted value (tracking any moves since rooting). Works from
    /// the creating task and from its descendants; a single atomic slot
    /// load either way.
    pub fn get(&self, h: &Handle) -> Value {
        match &h.0 {
            HandleRepr::Imm(v) => *v,
            HandleRepr::Slot(stack, i) => Value::Obj(stack.get(*i)),
        }
    }

    /// Overwrites a rooted slot with a new value.
    ///
    /// # Panics
    ///
    /// Panics if the handle is an immediate or the new value is not an
    /// object.
    pub fn set_root(&mut self, h: &Handle, v: Value) {
        match &h.0 {
            HandleRepr::Slot(stack, i) => {
                stack.set(*i, v.expect_obj());
            }
            HandleRepr::Imm(_) => panic!("cannot overwrite an immediate handle"),
        }
    }

    /// Returns a watermark capturing the current root-stack height.
    pub fn mark(&self) -> RootMark {
        RootMark(self.ctx.roots.len())
    }

    /// Releases every root created after `mark`.
    pub fn release(&mut self, mark: RootMark) {
        self.ctx.roots.truncate(mark.0);
    }

    // ---- allocation ------------------------------------------------------

    fn alloc_object(&mut self, kind: ObjKind, fields: &[Value]) -> Value {
        let mut vals = std::mem::take(&mut self.ctx.scratch_vals);
        vals.clear();
        vals.extend_from_slice(fields);
        let v = self.alloc_staged(kind, &mut vals);
        self.ctx.scratch_vals = vals;
        v
    }

    /// The allocation midsection, operating on the staged (scratch) field
    /// buffer so collections can treat the pending fields as movable
    /// roots.
    fn alloc_staged(&mut self, kind: ObjKind, fields: &mut [Value]) -> Value {
        self.charge_alloc(fields.len());
        // Allocation barrier: only tasks that have already acquired a
        // remote pointer (`saw_remote`) can be holding one to store, so
        // disentangled tasks pay exactly this one predictable branch.
        if self.ctx.saw_remote && self.rt.config().mode == Mode::Managed {
            self.alloc_pin_remote(fields);
        }
        let size = mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * fields.len();
        self.ensure_heap_budget(size, fields);
        if self.ctx.alloc_since >= self.ctx.lgc_budget {
            self.run_lgc(fields);
        }
        let mut words = std::mem::take(&mut self.ctx.scratch_words);
        words.clear();
        words.extend(fields.iter().map(|&v| Word::encode(v)));
        let r = self.alloc_words(kind, &words);
        self.ctx.scratch_words = words;
        Value::Obj(r)
    }

    fn charge_alloc(&mut self, fields: usize) {
        let wm = self.rt.config().work;
        self.ctx.work += wm.alloc + fields as u64 / 4;
        self.ctx.alloc_since += mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * fields;
    }

    /// The shared tail of every allocation: a bump-pointer reservation of
    /// the pre-encoded words in the cached block for the object's size
    /// class, falling back to the store when the block is full (or the
    /// object is oversized). Counters are task-buffered and flushed at
    /// safepoints.
    fn alloc_words(&mut self, kind: ObjKind, words: &[Word]) -> ObjRef {
        // Every allocation is a handshake poll point: two relaxed loads
        // unless the collector is mid-snapshot. (A pure compute loop with
        // no allocations or barriered writes can still delay a handshake
        // — the same liveness caveat as MPL's safepoint scheme.)
        self.rt.cgc_state().poll_handshake(&self.ctx.satb);
        // ...and a cancellation poll point, for the same liveness reason.
        self.poll_cancel();
        let size = mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * words.len();
        // FAST PATH: one bump in the task's cached size-class block — no
        // lock, no registry, no `Arc` clone, no per-object `Vec`.
        let nwords = OBJECT_HEADER_WORDS + words.len();
        if nwords <= self.rt.store().config().block_words {
            let class = size_class(nwords);
            if let Some(block) = &self.ctx.alloc_cache[class] {
                if let Some(r) = block.try_alloc(kind, words) {
                    self.ctx.pending.allocs += 1;
                    self.ctx.pending.alloc_bytes += size;
                    if self.ctx.pending.alloc_bytes >= 16 * 1024 || self.rt.cgc_poll_requested() {
                        self.flush_stats();
                        // Safe window: if this thread wins the gate and
                        // begins a cycle, the snapshot handshake must not
                        // wait on this task's own shard.
                        let _safe = self.safe_window();
                        self.rt.maybe_cgc();
                    }
                    return r;
                }
            }
        }
        if mpl_fail::hit("alloc/words").is_err() {
            self.rt.store().stats().on_alloc_failure();
            self.raise_alloc_error(AllocError {
                requested: size,
                limit: 0,
                live_bytes: self.rt.store().stats().snapshot().live_bytes,
            });
        }
        // The store path bumps the global gauge immediately (bypassing the
        // pending batch), so tenant accounting must follow suit here or
        // block-overflowing (large) allocations escape their budget.
        // The refill timer covers exactly the fallback work (budget
        // charge, store allocation, cache re-adoption) and not the
        // collection a safepoint may run after it — a CGC pause has its
        // own histogram and would drown the refill signal.
        let r = {
            let _t = mpl_obs::timer(mpl_obs::Metric::AllocRefill);
            if let Some(budget) = &self.ctx.budget {
                budget.charge(size);
            }
            let r = self.rt.store().alloc(self.leaf_heap(), kind, words);
            self.refresh_alloc_cache();
            r
        };
        {
            let _safe = self.safe_window();
            self.rt.maybe_cgc();
        }
        r
    }

    /// Re-adopts the leaf heap's current per-class allocation blocks as
    /// this task's bump targets (after a store-path allocation installed
    /// fresh ones).
    fn refresh_alloc_cache(&mut self) {
        let store = self.rt.store();
        let info = store.heaps().info(store.heaps().find(self.leaf_heap()));
        for (class, slot) in self.ctx.alloc_cache.iter_mut().enumerate() {
            *slot = info.alloc_block(class);
        }
    }

    /// Allocates an immutable tuple (also used for immutable arrays).
    pub fn alloc_tuple(&mut self, fields: &[Value]) -> Value {
        self.alloc_object(ObjKind::Tuple, fields)
    }

    /// Allocates a mutable cell (`ref v` in ML).
    pub fn alloc_ref(&mut self, v: Value) -> Value {
        self.alloc_object(ObjKind::Ref, &[v])
    }

    /// Allocates a mutable array of `len` copies of `init`.
    pub fn alloc_array(&mut self, len: usize, init: Value) -> Value {
        let mut vals = std::mem::take(&mut self.ctx.scratch_vals);
        vals.clear();
        vals.resize(len, init);
        let v = self.alloc_staged(ObjKind::MutArr, &mut vals);
        self.ctx.scratch_vals = vals;
        v
    }

    /// Allocates a mutable array from the given values.
    pub fn alloc_array_from(&mut self, vals: &[Value]) -> Value {
        self.alloc_object(ObjKind::MutArr, vals)
    }

    /// Allocates a raw (unboxed, barrier-free) 64-bit word array,
    /// zero-initialized.
    ///
    /// The payload is written as true zero **raw words** — not encoded
    /// `Value`s — so `raw_get` reads back `0` regardless of the tagged
    /// word encoding, and no per-element encode runs. Raw arrays hold no
    /// pointers, so the allocation barrier and collection-root scan that
    /// `alloc_tuple`/`alloc_array` perform are skipped entirely.
    pub fn alloc_raw(&mut self, len: usize) -> Value {
        self.charge_alloc(len);
        self.ensure_heap_budget(mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * len, &mut []);
        if self.ctx.alloc_since >= self.ctx.lgc_budget {
            self.run_lgc(&mut []);
        }
        let mut words = std::mem::take(&mut self.ctx.scratch_words);
        words.clear();
        words.resize(len, Word::from_bits(0));
        let r = self.alloc_words(ObjKind::RawArr, &words);
        self.ctx.scratch_words = words;
        Value::Obj(r)
    }

    /// Allocates a string as a raw array (`word0 = byte length`, bytes
    /// packed into subsequent words).
    pub fn alloc_str(&mut self, s: &str) -> Value {
        let bytes = s.as_bytes();
        let nwords = bytes.len().div_ceil(8);
        let v = self.alloc_raw(1 + nwords);
        let loc = self.locate(v, "string");
        let obj = loc.block.get(loc.r.word());
        obj.store_raw(0, bytes.len() as u64);
        for (w, piece) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..piece.len()].copy_from_slice(piece);
            obj.store_raw(1 + w, u64::from_le_bytes(buf));
        }
        v
    }

    /// Decodes a string previously allocated with [`Mutator::alloc_str`].
    ///
    /// # Panics
    ///
    /// Panics if the payload is not valid UTF-8 (corrupted string object).
    pub fn read_str(&mut self, v: Value) -> String {
        self.ctx.work += self.rt.config().work.read;
        let loc = self.locate(v, "string");
        let obj = loc.block.get(loc.r.word());
        let len = obj.load_raw(0) as usize;
        self.ctx.work += (len as u64) / 8;
        let mut bytes = Vec::with_capacity(len);
        for w in 0..len.div_ceil(8) {
            let word = obj.load_raw(1 + w).to_le_bytes();
            let take = (len - bytes.len()).min(8);
            bytes.extend_from_slice(&word[..take]);
        }
        String::from_utf8(bytes).expect("corrupted string object")
    }

    /// Number of fields of the object (tuple arity, array length).
    pub fn len(&mut self, v: Value) -> usize {
        self.ctx.work += self.rt.config().work.read;
        let r = self.locate_ref(v, "length query");
        self.cached_block(r).get(r.word()).len()
    }

    // ---- immutable reads (no barrier) ------------------------------------

    /// Reads field `i` of an immutable tuple. No entanglement barrier: a
    /// tuple's fields are fixed at allocation and can only reference older
    /// objects, so they can never *create* entanglement.
    pub fn tuple_get(&mut self, t: Value, i: usize) -> Value {
        self.ctx.work += self.rt.config().work.read;
        let r = self.locate_ref(t, "tuple read");
        let obj = self.cached_block(r).get(r.word());
        debug_assert_eq!(obj.kind(), ObjKind::Tuple, "tuple_get on {:?}", obj.kind());
        let v = obj.field(i);
        self.fix_stale(v)
    }

    // ---- barriered mutable accesses ---------------------------------------
    //
    // The barrier implementations (fast/slow tier split, pin protocol,
    // remembered-set maintenance) live in `crate::barrier`.

    /// Dereferences a mutable cell (`!r`).
    pub fn read_ref(&mut self, r: Value) -> Value {
        self.mut_read(r, 0)
    }

    /// Assigns a mutable cell (`r := v`).
    pub fn write_ref(&mut self, r: Value, v: Value) {
        self.mut_write(r, 0, v)
    }

    /// Compare-and-swap on a mutable cell. Returns `Err(actual)` on
    /// failure.
    pub fn ref_cas(&mut self, r: Value, expected: Value, new: Value) -> Result<(), Value> {
        self.mut_cas(r, 0, expected, new)
    }

    /// Reads element `i` of a mutable array.
    pub fn arr_get(&mut self, a: Value, i: usize) -> Value {
        self.mut_read(a, i)
    }

    /// Writes element `i` of a mutable array.
    pub fn arr_set(&mut self, a: Value, i: usize, v: Value) {
        self.mut_write(a, i, v)
    }

    /// Compare-and-swap on a mutable array element.
    pub fn arr_cas(
        &mut self,
        a: Value,
        i: usize,
        expected: Value,
        new: Value,
    ) -> Result<(), Value> {
        self.mut_cas(a, i, expected, new)
    }

    // ---- raw (unboxed) arrays: mutable but pointer-free, no barrier -------

    /// Reads a raw 64-bit word.
    pub fn raw_get(&mut self, a: Value, i: usize) -> u64 {
        self.ctx.work += self.rt.config().work.read;
        let r = self.locate_ref(a, "raw read");
        self.cached_block(r).get(r.word()).load_raw(i)
    }

    /// Writes a raw 64-bit word.
    pub fn raw_set(&mut self, a: Value, i: usize, bits: u64) {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw write");
        self.cached_block(r).get(r.word()).store_raw(i, bits);
    }

    /// Compare-and-swap on a raw word; true on success.
    pub fn raw_cas(&mut self, a: Value, i: usize, expected: u64, new: u64) -> bool {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw cas");
        self.cached_block(r)
            .get(r.word())
            .cas_raw(i, expected, new)
            .is_ok()
    }

    /// Atomic fetch-add on a raw word; returns the previous bits.
    pub fn raw_fetch_add(&mut self, a: Value, i: usize, delta: u64) -> u64 {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw fetch_add");
        self.cached_block(r).get(r.word()).fetch_add_raw(i, delta)
    }

    // ---- fork-join ---------------------------------------------------------

    /// Runs `f` and `g` as parallel subtasks with fresh child heaps and
    /// returns both results; the child heaps merge into this task's heap
    /// at the join, unpinning every object whose entanglement ends here.
    ///
    /// Values captured from the parent must be passed through rooted
    /// [`Handle`]s — a raw [`Value`] may be stale after a collection.
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed());
    /// let v = rt.run(|m| {
    ///     let (a, b) = m.fork(|_| Value::Int(20), |_| Value::Int(22));
    ///     match (a, b) {
    ///         (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
    ///         _ => unreachable!(),
    ///     }
    /// });
    /// assert_eq!(v, Value::Int(42));
    /// ```
    pub fn fork<F, G>(&mut self, f: F, g: G) -> (Value, Value)
    where
        F: FnOnce(&mut Mutator<'_>) -> Value + Send,
        G: FnOnce(&mut Mutator<'_>) -> Value + Send,
    {
        self.ctx.work += self.rt.config().work.fork;
        // Fork entry is a poll point: a tripped tree stops spawning new
        // branches and unwinds here instead of fanning out doomed work.
        self.poll_cancel();
        self.flush_work();
        // Publish buffered remembered-set entries before suspending:
        // forks and joins are this task's natural safepoints.
        self.flush_remset();
        let parent_heap = self.leaf_heap();
        let store = self.rt.store();
        let (lh, rh) = store.fork_heaps(parent_heap);
        let (ls, rs) = match &self.ctx.dag {
            Some(dag) => dag.fork(self.ctx.strand),
            None => (StrandId(0), StrandId(0)),
        };
        let mut lpath = self.ctx.path.clone();
        lpath.push(lh);
        let mut rpath = self.ctx.path.clone();
        rpath.push(rh);
        let dag = self.ctx.dag.clone();
        // Branches inherit the cancellation token (like the tenant
        // budget): one tripped token unwinds the whole tree.
        let lcancel = self.ctx.cancel.clone();
        let rcancel = self.ctx.cancel.clone();

        let threads = self.rt.config().threads;
        let sched = self.rt.config().sched;
        // The parent is suspended (or running branch bodies under their
        // own task contexts) until the join: open a safe window so a
        // concurrent collector's snapshot handshake does not wait on the
        // parent's shard — a suspended task can never poll.
        let fork_safe = self.safe_window();
        let ((lv, lend, lslot), (rv, rend, rslot)) =
            if threads > 1 && sched == mpl_sched::SchedMode::WorkStealing {
                // Work-stealing path: offer the right branch to thieves on
                // this worker's deque and run the left branch inline
                // (help-first). If nobody steals it, `try_join` pops it back
                // and runs it inline — an un-stolen fork costs two deque
                // operations, not a thread spawn. Branch bodies rebuild
                // their task context from the captured heap paths, so which
                // worker executes a branch is invisible to the heap
                // hierarchy.
                let rt = self.rt;
                let ldag = dag.clone();
                let left = move || run_branch(rt, lpath, ldag, ls, lcancel, f);
                let right = move || run_branch(rt, rpath, dag, rs, rcancel, g);
                match mpl_sched::try_join(left, right) {
                    Ok(pair) => pair,
                    // Not on a pool worker (e.g. a second concurrent `run`
                    // that lost the driver slot): run sequentially.
                    Err((left, right)) => (left(), right()),
                }
            } else {
                let token = if threads > 1 && sched == mpl_sched::SchedMode::ScopedThreads {
                    self.rt.tokens().try_acquire()
                } else {
                    None
                };
                let pair = if token.is_some() {
                    let rt = self.rt;
                    let ldag = dag.clone();
                    std::thread::scope(|scope| {
                        let lj = scope.spawn(move || run_branch(rt, lpath, ldag, ls, lcancel, f));
                        let right = run_branch(rt, rpath, dag, rs, rcancel, g);
                        let left = match lj.join() {
                            Ok(v) => v,
                            Err(p) => std::panic::resume_unwind(p),
                        };
                        (left, right)
                    })
                } else {
                    let left = run_branch(self.rt, lpath, dag.clone(), ls, lcancel, f);
                    let right = run_branch(self.rt, rpath, dag, rs, rcancel, g);
                    (left, right)
                };
                drop(token);
                pair
            };

        // The join merge below mutates heap structure under this task's
        // identity again: close the suspension window first.
        drop(fork_safe);

        // Cleanup precedes any re-raise: the join must merge both child
        // heaps (sealing their entangled indexes and applying
        // unpin-at-join) and the parked sibling result must be released
        // even when a branch panicked — otherwise a shed request leaks
        // pins and pending-slot roots for the runtime's lifetime.
        let join = self.rt.store().join(parent_heap, lh, rh);
        self.rt.unpark_result(lslot);
        self.rt.unpark_result(rslot);
        if let Some(dag) = &self.ctx.dag {
            self.ctx.strand = dag.join(lend, rend);
        }
        let (lv, rv) = match (lv, rv) {
            (Ok(l), Ok(r)) => (l, r),
            (Err(p), _) | (_, Err(p)) => std::panic::resume_unwind(p),
        };
        if self.ctx.path.len() == 1 {
            // Root-level join: every other task has completed, so retired
            // blocks are unreachable by construction.
            self.rt.graveyard().drain(self.rt.store());
        }
        // Merged data counts toward this task's collection debt: garbage
        // produced inside the children must not dodge the collector just
        // because their heaps dissolved into ours. Collecting a *merged*
        // heap is only safe when no concurrent task can race its
        // forwarding: always under the sequential executor, and at
        // root-level joins (global quiescence) under real threads. Inner
        // merged-heap collection under concurrency would need the
        // mutator handshakes full MPL performs; we defer it to the next
        // quiescent point instead (documented deviation, DESIGN.md §2).
        self.ctx.alloc_since = self.ctx.alloc_since.saturating_add(join.merged_bytes);
        let quiescent = self.rt.config().threads <= 1 || self.ctx.path.len() == 1;
        if quiescent && self.ctx.alloc_since >= self.ctx.lgc_budget {
            let mut lr = vec![lv, rv];
            self.run_lgc(&mut lr);
            return (lr[0], lr[1]);
        }
        // Joins are safepoints: honor any pin-driven CGC request. CGC is
        // non-moving, but the child results must be *reachable* during
        // its root scan, so root them for the duration.
        if self.rt.cgc_poll_requested() {
            let wm = self.mark();
            let _l = self.root(lv);
            let _r = self.root(rv);
            {
                let _safe = self.safe_window();
                self.rt.maybe_cgc();
            }
            self.release(wm);
        }
        (lv, rv)
    }

    /// Forces a local collection now (tests and experiments). `extra`
    /// values are treated as roots and updated.
    pub fn force_lgc(&mut self, extra: &mut [Value]) {
        self.run_lgc(extra);
    }

    // ---- internals ----------------------------------------------------------

    /// Opens a collector-safe window on this task's SATB shard (see
    /// [`SafeWindow`]); the window closes when the returned guard drops.
    fn safe_window(&self) -> SafeWindow<'rt> {
        SafeWindow::enter(self.rt.cgc_state(), Arc::clone(&self.ctx.satb))
    }

    /// The memory-pressure escalation ladder, run before each allocation
    /// when a heap budget is configured: flush the gauge and re-check,
    /// then force a local collection (with `extra` as updated roots),
    /// then a full concurrent cycle, retrying the budget check after
    /// each. If the live footprint still exceeds the budget, the
    /// allocation fails with a recoverable [`AllocError`] raised as a
    /// panic payload. Raising here is sound: both collectors have fully
    /// completed and released their locks before the raise, the pending
    /// object has not been written anywhere, and the unwinding task's
    /// [`Mutator`] drop flushes its buffers and deregisters its roots.
    ///
    /// Called before field encoding, where the not-yet-allocated pointer
    /// fields can still ride through the moving collection as roots —
    /// after encoding they would go stale.
    /// True when the global heap limit or this task's tenant budget
    /// would be exceeded by an allocation of `size` bytes.
    fn over_budget(&self, size: usize) -> bool {
        self.rt.store().over_limit(size)
            || self
                .ctx
                .budget
                .as_ref()
                .is_some_and(|b| b.would_exceed(size))
    }

    fn ensure_heap_budget(&mut self, size: usize, extra: &mut [Value]) {
        let rt = self.rt;
        if !self.over_budget(size) {
            return;
        }
        // The gauges lag task-buffered stats; make them current before
        // paying for a collection.
        self.flush_stats();
        if !self.over_budget(size) {
            return;
        }
        let stats = rt.store().stats();
        if let Some(b) = &self.ctx.budget {
            if b.would_exceed(size) {
                b.on_forced_gc();
            }
        }
        stats.on_gc_forced_by_pressure();
        self.run_lgc(extra);
        stats.on_alloc_retry();
        if !self.over_budget(size) {
            return;
        }
        stats.on_gc_forced_by_pressure();
        {
            // `force_cgc` blocks on the collection gate and then runs the
            // snapshot handshake; without a safe window this task's own
            // shard would stall it (or deadlock it, if another thread's
            // handshake is already waiting on us while we wait on the
            // gate it holds).
            let _safe = self.safe_window();
            rt.force_cgc();
        }
        stats.on_alloc_retry();
        if !self.over_budget(size) {
            return;
        }
        stats.on_alloc_failure();
        // Attribute the failure to the constraint still violated: the
        // tenant budget (the serving layer's shed signal) if it is the
        // binding one, else the global limit.
        if let Some(b) = self.ctx.budget.clone() {
            if b.would_exceed(size) {
                b.on_shed();
                self.raise_alloc_error(AllocError {
                    requested: size,
                    limit: b.limit(),
                    live_bytes: b.live_bytes(),
                });
            }
        }
        let live = rt.store().stats().snapshot().live_bytes;
        self.raise_alloc_error(AllocError {
            requested: size,
            limit: rt.store().config().heap_limit,
            live_bytes: live,
        });
    }

    /// Raises a recoverable allocation failure, first escalating it to
    /// this run's cancellation token so sibling branches stop at their
    /// next poll point instead of computing work the doomed join will
    /// discard. `Runtime::try_run*` maps both the original payload and
    /// any sibling's `Cancelled`-with-alloc-reason back to
    /// [`crate::RunError::Alloc`], so callers see one deterministic
    /// outcome regardless of which branch's payload wins the join race.
    fn raise_alloc_error(&self, e: AllocError) -> ! {
        if let Some(t) = &self.ctx.cancel {
            t.trip_alloc(e.clone());
        }
        std::panic::panic_any(e)
    }

    pub(crate) fn run_lgc(&mut self, extra: &mut [Value]) {
        self.flush_stats();
        // The buffered remembered-set entries targeting this task's own
        // heaps become collection roots: publish them first (the GC
        // handshake flush point).
        self.flush_remset();
        // The collection can run for an unbounded stretch without
        // reaching a poll point, and the sliced-cycle finish below blocks
        // on the collection gate: keep the shard safe throughout. Sound
        // for the same reason concurrent CGC marking is sound against
        // LGC at all — entangled-space objects are never moved or freed
        // locally, and a CGC tracer racing the move of a *local* object
        // resolves through forwarding (retired blocks are graveyard-held
        // until quiescence).
        let _safe = self.safe_window();
        // A local collection moves objects and (eagerly) frees blocks; a
        // paused incremental CGC holds object refs in its mark stack, so
        // finish that cycle first. (Full MPL repairs the marker's state
        // instead; serializing keeps the interaction sound here.)
        if self.rt.config().cgc_slice_objects > 0 && self.rt.cgc_state().cycle_active() {
            self.rt.force_cgc();
        }
        let heap = self.leaf_heap();
        // Snapshot this task's root stack (owner read: nobody else
        // pushes), collect, then write the updated locations back with
        // atomic slot stores. A concurrent CGC root scan may interleave
        // and read a pre-collection reference; that is sound — the old
        // location forwards to the new one, and retired fromspace blocks
        // outlive the cycle (the graveyard drains only at quiescence).
        let nroots = self.ctx.roots.len();
        let mut roots: Vec<ObjRef> = Vec::with_capacity(nroots + extra.len());
        self.ctx.roots.extend_snapshot(&mut roots);
        let mut extra_slots = Vec::new();
        for (i, v) in extra.iter().enumerate() {
            if let Value::Obj(r) = v {
                roots.push(*r);
                extra_slots.push(i);
            }
        }
        let out = collect_local(
            self.rt.store(),
            heap,
            &mut roots,
            self.rt.graveyard(),
            self.rt.config().policy.immediate_block_free,
        );
        for (i, r) in roots[..nroots].iter().enumerate() {
            self.ctx.roots.set(i, *r);
        }
        for (k, &i) in extra_slots.iter().enumerate() {
            extra[i] = Value::Obj(roots[nroots + k]);
        }
        self.ctx.alloc_since = 0;
        // Size-proportional budget: next collection once we allocate
        // about as much as survived this one.
        let survivors = (out.copied_bytes + out.retained_entangled_bytes) as usize;
        self.ctx.lgc_budget = self.rt.config().policy.lgc_trigger_bytes.max(2 * survivors);
        // The collection replaced the per-class allocation blocks and may
        // have freed cached blocks.
        self.ctx.alloc_cache = std::array::from_fn(|_| None);
        self.ctx.block_cache = [None, None, None, None];
        // Collection work is deliberately NOT charged to the strand: in
        // MPL, local collections are distributed across (otherwise idle)
        // processors, so they do not serialize the computation the way
        // charging them to the recorded mutator strand would. Wall-clock
        // measurements (T_1) still include the full collection cost.
        let _ = out;
    }
}

impl Drop for Mutator<'_> {
    /// Flushes buffered state and deregisters the root stack even when
    /// the task body panics (e.g. a `DetectOnly` entanglement abort that
    /// a test harness catches): buffered remembered-set entries must
    /// reach their heaps before any ancestor resumes and collects, and a
    /// leaked registry entry would keep dead roots alive for the
    /// concurrent collector forever. Idempotent after `finish_task`.
    fn drop(&mut self) {
        self.finish_task();
    }
}

fn run_branch<F>(
    rt: &Runtime,
    path: Vec<u32>,
    dag: Option<Arc<DagBuilder>>,
    strand: StrandId,
    cancel: Option<CancelToken>,
    body: F,
) -> (std::thread::Result<Value>, StrandId, Option<usize>)
where
    F: FnOnce(&mut Mutator<'_>) -> Value,
{
    let ctx = TaskCtx::new(path, dag, strand, rt, cancel);
    let mut m = Mutator::new(rt, ctx);
    // A panicking branch (entanglement abort, AllocError, injected
    // fault, cancellation) is caught here and re-raised by the parent's
    // join *after* both child heaps merged and the sibling's parked
    // result was released — the caught payload rides back as a value so
    // the fork can run its cleanup unconditionally. Branch entry is a
    // poll point, so a branch stolen after the trip unwinds immediately.
    let v = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.poll_cancel();
        body(&mut m)
    }));
    // Park the result before dropping the task's roots so a concurrent
    // collection between branch completion and the join still sees it.
    let slot = match &v {
        Ok(v) => rt.park_result(*v),
        Err(_) => None,
    };
    let end = m.ctx.strand;
    m.finish_task();
    (v, end, slot)
}
