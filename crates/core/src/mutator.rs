//! The mutator interface: what compiled Parallel ML code would call.
//!
//! A [`Mutator`] is one task's view of the runtime: allocation into its
//! own leaf heap, barriered mutable accesses (where entanglement is
//! detected and managed), immutable reads, rooting, and `fork`.
//!
//! # Rooting discipline
//!
//! Collections run inside *allocating* calls (and, under real threads,
//! concurrently in other tasks). Any [`Value`] held across an allocating
//! call — including [`Mutator::fork`] — must be registered with
//! [`Mutator::root`]; argument values of the call itself are rooted
//! automatically. Immediates never need rooting.
//!
//! # Hot-path design
//!
//! Mutator operations are the compiled program's inner loop, so each op
//! touches global structures as little as possible: a one-entry
//! task-local chunk cache short-circuits the chunk registry for repeated
//! accesses to the same object/array, the allocation fast path is a
//! single bump in a cached chunk, and locality checks use a fused
//! canonicalize-and-depth query against the task's heap path.

use std::sync::Arc;

use parking_lot::Mutex;

use mpl_gc::collect_local;
use mpl_heap::events::{self, EventKind};
use mpl_heap::{Chunk, ObjKind, ObjRef, Object, RemsetEntry, Value, Word};
use mpl_sched::{DagBuilder, StrandId};

use crate::config::Mode;
use crate::runtime::{Runtime, ShadowStack};

/// Message used when `Mode::DetectOnly` encounters entanglement, matching
/// prior MPL's fatal entanglement report.
pub const ENTANGLEMENT_PANIC: &str =
    "entanglement detected: task accessed an object allocated by a concurrent task";

/// A rooted value handle. Immediates are stored inline; objects live in
/// the creating task's shadow stack and survive (and track) moving
/// collections. A handle may be read from descendant tasks (the creating
/// task is suspended, so its stack is stable), which is how fork branches
/// access pre-fork values.
#[derive(Clone, Debug)]
pub struct Handle(HandleRepr);

#[derive(Clone, Debug)]
enum HandleRepr {
    Imm(Value),
    Slot(ShadowStack, usize),
}

/// A watermark for bulk-releasing roots (scope exit).
#[derive(Clone, Copy, Debug)]
pub struct RootMark(usize);

/// A resolved object location: current address plus its (cached) chunk.
struct Located {
    r: ObjRef,
    chunk: Arc<Chunk>,
}

/// Per-task execution state.
#[derive(Debug)]
pub(crate) struct TaskCtx {
    path: Vec<u32>,
    shadow: ShadowStack,
    alloc_since: usize,
    dag: Option<Arc<DagBuilder>>,
    strand: StrandId,
    work: u64,
    chunk_cache: [Option<(u32, Arc<Chunk>)>; 4],
    alloc_cache: Option<Arc<Chunk>>,
    pending: PendingStats,
    /// Size-proportional collection budget: collect once `alloc_since`
    /// exceeds `max(policy trigger, 2 × last survivors)`. Keeps total
    /// copying linear even when joins repeatedly merge surviving data.
    lgc_budget: usize,
    /// Whether this task has ever acquired a remote (entangled) pointer.
    /// Every first acquisition flows through `pin_cached`, which sets
    /// this; once set, allocations scan their pointer fields and pin any
    /// remote target (the allocation barrier), because a raw remote
    /// pointer stored into a fresh local object creates a cross-heap
    /// edge no other barrier ever sees. Disentangled tasks never set it
    /// and keep the one-branch allocation fast path.
    saw_remote: bool,
}

/// Task-buffered counters, flushed to the global [`mpl_heap::StoreStats`]
/// at safepoints (forks, joins, collections, and every ~16 KiB of
/// allocation) so the hot path pays no global atomics.
#[derive(Debug, Default)]
struct PendingStats {
    allocs: u64,
    alloc_bytes: usize,
    barrier_reads: u64,
    barrier_writes: u64,
    entangled_reads: u64,
    entangled_writes: u64,
}

impl TaskCtx {
    pub(crate) fn new(
        path: Vec<u32>,
        dag: Option<Arc<DagBuilder>>,
        strand: StrandId,
        rt: &Runtime,
    ) -> TaskCtx {
        let shadow: ShadowStack = Arc::new(Mutex::new(Vec::new()));
        rt.register_shadow(&shadow);
        TaskCtx {
            path,
            shadow,
            alloc_since: 0,
            dag,
            strand,
            work: 0,
            chunk_cache: [None, None, None, None],
            alloc_cache: None,
            pending: PendingStats::default(),
            lgc_budget: rt.config().policy.lgc_trigger_bytes,
            saw_remote: false,
        }
    }
}

/// One task's interface to the runtime.
#[derive(Debug)]
pub struct Mutator<'rt> {
    rt: &'rt Runtime,
    ctx: TaskCtx,
}

impl<'rt> Mutator<'rt> {
    pub(crate) fn new(rt: &'rt Runtime, ctx: TaskCtx) -> Mutator<'rt> {
        Mutator { rt, ctx }
    }

    /// The runtime this mutator belongs to.
    pub fn runtime(&self) -> &'rt Runtime {
        self.rt
    }

    /// The task's root-to-leaf heap path (canonical ids).
    pub fn path(&self) -> &[u32] {
        &self.ctx.path
    }

    /// Charges `n` units of modeled computational work to the current
    /// strand (for DAG-based scheduling experiments).
    pub fn work(&mut self, n: u64) {
        self.ctx.work += n;
    }

    pub(crate) fn finish_task(&mut self) {
        self.flush_work();
        self.rt.unregister_shadow(&self.ctx.shadow);
        self.ctx.dag = None;
    }

    fn flush_work(&mut self) {
        if let Some(dag) = &self.ctx.dag {
            if self.ctx.work > 0 {
                dag.add_work(self.ctx.strand, self.ctx.work);
            }
        }
        self.ctx.work = 0;
        self.flush_stats();
    }

    fn flush_stats(&mut self) {
        let p = std::mem::take(&mut self.ctx.pending);
        if p.allocs == 0
            && p.barrier_reads == 0
            && p.barrier_writes == 0
            && p.entangled_reads == 0
            && p.entangled_writes == 0
        {
            return;
        }
        let stats = self.rt.store().stats();
        stats.on_alloc_batch(p.allocs, p.alloc_bytes);
        stats.on_barrier_batch(
            p.barrier_reads,
            p.barrier_writes,
            p.entangled_reads,
            p.entangled_writes,
        );
    }

    fn leaf_heap(&self) -> u32 {
        *self.ctx.path.last().expect("task path is never empty")
    }

    // ---- hot-path plumbing ----------------------------------------------

    fn chunk(&mut self, id: u32) -> Arc<Chunk> {
        let slot = (id & 3) as usize;
        if let Some((cid, c)) = &self.ctx.chunk_cache[slot] {
            if *cid == id {
                return Arc::clone(c);
            }
        }
        let c = self.rt.store().chunks().get(id);
        self.ctx.chunk_cache[slot] = Some((id, Arc::clone(&c)));
        c
    }

    /// Like [`Mutator::locate`], but returns only the reference and leaves
    /// the chunk in the cache — callers borrow it with
    /// [`Mutator::cached_chunk`], avoiding an `Arc` clone per operation.
    fn locate_ref(&mut self, v: Value, what: &str) -> ObjRef {
        let mut r = match v {
            Value::Obj(r) => r,
            other => panic!("{what} expects an object, found {other:?}"),
        };
        loop {
            let slot = (r.chunk() & 3) as usize;
            let hit = matches!(&self.ctx.chunk_cache[slot], Some((cid, _)) if *cid == r.chunk());
            if !hit {
                let c = self.rt.store().chunks().get(r.chunk());
                self.ctx.chunk_cache[slot] = Some((r.chunk(), c));
            }
            let (_, chunk) = self.ctx.chunk_cache[slot].as_ref().unwrap();
            match chunk.get(r.slot()).forward_ref() {
                Some(next) => r = next,
                None => return r,
            }
        }
    }

    /// Borrows the cached chunk for `r` (must have been located by
    /// [`Mutator::locate_ref`] in the same operation, with no intervening
    /// cache traffic).
    fn cached_chunk(&self, r: ObjRef) -> &Chunk {
        match &self.ctx.chunk_cache[(r.chunk() & 3) as usize] {
            Some((cid, c)) if *cid == r.chunk() => c,
            _ => unreachable!("cached_chunk without a preceding locate_ref"),
        }
    }

    /// Resolves a value to its current object location, chasing
    /// forwarding. Panics with `what` context on non-objects and dangling
    /// references.
    fn locate(&mut self, v: Value, what: &str) -> Located {
        let mut r = match v {
            Value::Obj(r) => r,
            other => panic!("{what} expects an object, found {other:?}"),
        };
        loop {
            let chunk = self.chunk(r.chunk());
            match chunk.get(r.slot()).forward_ref() {
                Some(next) => r = next,
                None => return Located { r, chunk },
            }
        }
    }

    // ---- rooting --------------------------------------------------------

    /// Roots a value; the handle stays valid across collections.
    ///
    /// Any object value held across an allocating call (including
    /// [`Mutator::fork`]) must be rooted, or a local collection may move
    /// the object out from under it. Handles are also the way to pass
    /// parent data into fork branches: [`Mutator::get`] works from the
    /// creating task *and* from its descendants.
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed());
    /// let v = rt.run(|m| {
    ///     let cell = m.alloc_ref(Value::Int(5));
    ///     let h = m.root(cell);
    ///     m.force_lgc(&mut []); // may move the cell; the handle tracks it
    ///     let cell = m.get(&h);
    ///     m.read_ref(cell)
    /// });
    /// assert_eq!(v, Value::Int(5));
    /// ```
    pub fn root(&mut self, v: Value) -> Handle {
        match v {
            Value::Obj(r) => {
                let mut shadow = self.ctx.shadow.lock();
                shadow.push(r);
                let slot = shadow.len() - 1;
                drop(shadow);
                Handle(HandleRepr::Slot(Arc::clone(&self.ctx.shadow), slot))
            }
            imm => Handle(HandleRepr::Imm(imm)),
        }
    }

    /// Reads a rooted value (tracking any moves since rooting). Works from
    /// the creating task and from its descendants.
    pub fn get(&self, h: &Handle) -> Value {
        match &h.0 {
            HandleRepr::Imm(v) => *v,
            HandleRepr::Slot(stack, i) => Value::Obj(stack.lock()[*i]),
        }
    }

    /// Overwrites a rooted slot with a new value.
    ///
    /// # Panics
    ///
    /// Panics if the handle is an immediate or the new value is not an
    /// object.
    pub fn set_root(&mut self, h: &Handle, v: Value) {
        match &h.0 {
            HandleRepr::Slot(stack, i) => {
                stack.lock()[*i] = v.expect_obj();
            }
            HandleRepr::Imm(_) => panic!("cannot overwrite an immediate handle"),
        }
    }

    /// Returns a watermark capturing the current root-stack height.
    pub fn mark(&self) -> RootMark {
        RootMark(self.ctx.shadow.lock().len())
    }

    /// Releases every root created after `mark`.
    pub fn release(&mut self, mark: RootMark) {
        self.ctx.shadow.lock().truncate(mark.0);
    }

    // ---- allocation ------------------------------------------------------

    fn alloc_object(&mut self, kind: ObjKind, mut fields: Vec<Value>) -> Value {
        let wm = self.rt.config().work;
        self.ctx.work += wm.alloc + fields.len() as u64 / 4;
        let est = mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * fields.len();
        self.ctx.alloc_since += est;
        // Allocation barrier: only tasks that have already acquired a
        // remote pointer (`saw_remote`) can be holding one to store, so
        // disentangled tasks pay exactly this one predictable branch.
        if self.ctx.saw_remote && self.rt.config().mode == Mode::Managed {
            self.alloc_pin_remote(&mut fields);
        }
        if self.ctx.alloc_since >= self.ctx.lgc_budget {
            self.run_lgc(&mut fields);
        }
        let words: Vec<Word> = fields.iter().map(|&v| Word::encode(v)).collect();
        let mut obj = Object::new(kind, words);
        let size = obj.size_bytes();
        // Fast path: bump into the cached allocation chunk; counters are
        // task-buffered and flushed at safepoints.
        if let Some(chunk) = &self.ctx.alloc_cache {
            match chunk.try_alloc(obj) {
                Ok(r) => {
                    self.ctx.pending.allocs += 1;
                    self.ctx.pending.alloc_bytes += size;
                    if self.ctx.pending.alloc_bytes >= 16 * 1024 || self.rt.cgc_poll_requested() {
                        self.flush_stats();
                        self.rt.maybe_cgc();
                    }
                    return Value::Obj(r);
                }
                Err(back) => obj = back,
            }
        }
        let r = self.rt.store().alloc_object(self.leaf_heap(), obj);
        self.ctx.alloc_cache = self
            .rt
            .store()
            .heaps()
            .info(self.rt.store().heaps().find(self.leaf_heap()))
            .alloc_chunk();
        self.rt.maybe_cgc();
        Value::Obj(r)
    }

    /// Allocates an immutable tuple (also used for immutable arrays).
    pub fn alloc_tuple(&mut self, fields: &[Value]) -> Value {
        self.alloc_object(ObjKind::Tuple, fields.to_vec())
    }

    /// Allocates a mutable cell (`ref v` in ML).
    pub fn alloc_ref(&mut self, v: Value) -> Value {
        self.alloc_object(ObjKind::Ref, vec![v])
    }

    /// Allocates a mutable array of `len` copies of `init`.
    pub fn alloc_array(&mut self, len: usize, init: Value) -> Value {
        self.alloc_object(ObjKind::MutArr, vec![init; len])
    }

    /// Allocates a mutable array from the given values.
    pub fn alloc_array_from(&mut self, vals: &[Value]) -> Value {
        self.alloc_object(ObjKind::MutArr, vals.to_vec())
    }

    /// Allocates a raw (unboxed, barrier-free) 64-bit word array,
    /// zero-initialized.
    pub fn alloc_raw(&mut self, len: usize) -> Value {
        self.alloc_object(ObjKind::RawArr, vec![Value::Int(0); len])
    }

    /// Allocates a string as a raw array (`word0 = byte length`, bytes
    /// packed into subsequent words).
    pub fn alloc_str(&mut self, s: &str) -> Value {
        let bytes = s.as_bytes();
        let nwords = bytes.len().div_ceil(8);
        let v = self.alloc_raw(1 + nwords);
        let loc = self.locate(v, "string");
        let obj = loc.chunk.get(loc.r.slot());
        obj.store_raw(0, bytes.len() as u64);
        for (w, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            obj.store_raw(1 + w, u64::from_le_bytes(buf));
        }
        v
    }

    /// Decodes a string previously allocated with [`Mutator::alloc_str`].
    ///
    /// # Panics
    ///
    /// Panics if the payload is not valid UTF-8 (corrupted string object).
    pub fn read_str(&mut self, v: Value) -> String {
        let loc = self.locate(v, "string");
        let obj = loc.chunk.get(loc.r.slot());
        let len = obj.load_raw(0) as usize;
        let mut bytes = Vec::with_capacity(len);
        for w in 0..len.div_ceil(8) {
            let word = obj.load_raw(1 + w).to_le_bytes();
            let take = (len - bytes.len()).min(8);
            bytes.extend_from_slice(&word[..take]);
        }
        String::from_utf8(bytes).expect("corrupted string object")
    }

    /// Number of fields of the object (tuple arity, array length).
    pub fn len(&mut self, v: Value) -> usize {
        let r = self.locate_ref(v, "length query");
        self.cached_chunk(r).get(r.slot()).len()
    }

    // ---- immutable reads (no barrier) ------------------------------------

    /// Reads field `i` of an immutable tuple. No entanglement barrier: a
    /// tuple's fields are fixed at allocation and can only reference older
    /// objects, so they can never *create* entanglement.
    pub fn tuple_get(&mut self, t: Value, i: usize) -> Value {
        self.ctx.work += self.rt.config().work.read;
        let r = self.locate_ref(t, "tuple read");
        let obj = self.cached_chunk(r).get(r.slot());
        debug_assert_eq!(obj.kind(), ObjKind::Tuple, "tuple_get on {:?}", obj.kind());
        let v = obj.field(i);
        self.fix_stale(v)
    }

    // ---- barriered mutable accesses ---------------------------------------

    /// Dereferences a mutable cell (`!r`).
    pub fn read_ref(&mut self, r: Value) -> Value {
        self.mut_read(r, 0)
    }

    /// Assigns a mutable cell (`r := v`).
    pub fn write_ref(&mut self, r: Value, v: Value) {
        self.mut_write(r, 0, v)
    }

    /// Compare-and-swap on a mutable cell. Returns `Err(actual)` on
    /// failure.
    pub fn ref_cas(&mut self, r: Value, expected: Value, new: Value) -> Result<(), Value> {
        self.mut_cas(r, 0, expected, new)
    }

    /// Reads element `i` of a mutable array.
    pub fn arr_get(&mut self, a: Value, i: usize) -> Value {
        self.mut_read(a, i)
    }

    /// Writes element `i` of a mutable array.
    pub fn arr_set(&mut self, a: Value, i: usize, v: Value) {
        self.mut_write(a, i, v)
    }

    /// Compare-and-swap on a mutable array element.
    pub fn arr_cas(
        &mut self,
        a: Value,
        i: usize,
        expected: Value,
        new: Value,
    ) -> Result<(), Value> {
        self.mut_cas(a, i, expected, new)
    }

    // ---- raw (unboxed) arrays: mutable but pointer-free, no barrier -------

    /// Reads a raw 64-bit word.
    pub fn raw_get(&mut self, a: Value, i: usize) -> u64 {
        self.ctx.work += self.rt.config().work.read;
        let r = self.locate_ref(a, "raw read");
        self.cached_chunk(r).get(r.slot()).load_raw(i)
    }

    /// Writes a raw 64-bit word.
    pub fn raw_set(&mut self, a: Value, i: usize, bits: u64) {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw write");
        self.cached_chunk(r).get(r.slot()).store_raw(i, bits);
    }

    /// Compare-and-swap on a raw word; true on success.
    pub fn raw_cas(&mut self, a: Value, i: usize, expected: u64, new: u64) -> bool {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw cas");
        self.cached_chunk(r)
            .get(r.slot())
            .cas_raw(i, expected, new)
            .is_ok()
    }

    /// Atomic fetch-add on a raw word; returns the previous bits.
    pub fn raw_fetch_add(&mut self, a: Value, i: usize, delta: u64) -> u64 {
        self.ctx.work += self.rt.config().work.write;
        let r = self.locate_ref(a, "raw fetch_add");
        self.cached_chunk(r).get(r.slot()).fetch_add_raw(i, delta)
    }

    // ---- fork-join ---------------------------------------------------------

    /// Runs `f` and `g` as parallel subtasks with fresh child heaps and
    /// returns both results; the child heaps merge into this task's heap
    /// at the join, unpinning every object whose entanglement ends here.
    ///
    /// Values captured from the parent must be passed through rooted
    /// [`Handle`]s — a raw [`Value`] may be stale after a collection.
    ///
    /// # Example
    ///
    /// ```
    /// use mpl_runtime::{Runtime, RuntimeConfig, Value};
    ///
    /// let rt = Runtime::new(RuntimeConfig::managed());
    /// let v = rt.run(|m| {
    ///     let (a, b) = m.fork(|_| Value::Int(20), |_| Value::Int(22));
    ///     match (a, b) {
    ///         (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
    ///         _ => unreachable!(),
    ///     }
    /// });
    /// assert_eq!(v, Value::Int(42));
    /// ```
    pub fn fork<F, G>(&mut self, f: F, g: G) -> (Value, Value)
    where
        F: FnOnce(&mut Mutator<'_>) -> Value + Send,
        G: FnOnce(&mut Mutator<'_>) -> Value + Send,
    {
        self.ctx.work += self.rt.config().work.fork;
        self.flush_work();
        let parent_heap = self.leaf_heap();
        let store = self.rt.store();
        let (lh, rh) = store.fork_heaps(parent_heap);
        let (ls, rs) = match &self.ctx.dag {
            Some(dag) => dag.fork(self.ctx.strand),
            None => (StrandId(0), StrandId(0)),
        };
        let mut lpath = self.ctx.path.clone();
        lpath.push(lh);
        let mut rpath = self.ctx.path.clone();
        rpath.push(rh);
        let dag = self.ctx.dag.clone();

        let threads = self.rt.config().threads;
        let sched = self.rt.config().sched;
        let ((lv, lend, lslot), (rv, rend, rslot)) =
            if threads > 1 && sched == mpl_sched::SchedMode::WorkStealing {
                // Work-stealing path: offer the right branch to thieves on
                // this worker's deque and run the left branch inline
                // (help-first). If nobody steals it, `try_join` pops it back
                // and runs it inline — an un-stolen fork costs two deque
                // operations, not a thread spawn. Branch bodies rebuild
                // their task context from the captured heap paths, so which
                // worker executes a branch is invisible to the heap
                // hierarchy.
                let rt = self.rt;
                let ldag = dag.clone();
                let left = move || run_branch(rt, lpath, ldag, ls, f);
                let right = move || run_branch(rt, rpath, dag, rs, g);
                match mpl_sched::try_join(left, right) {
                    Ok(pair) => pair,
                    // Not on a pool worker (e.g. a second concurrent `run`
                    // that lost the driver slot): run sequentially.
                    Err((left, right)) => (left(), right()),
                }
            } else {
                let token = if threads > 1 && sched == mpl_sched::SchedMode::ScopedThreads {
                    self.rt.tokens().try_acquire()
                } else {
                    None
                };
                let pair = if token.is_some() {
                    let rt = self.rt;
                    let ldag = dag.clone();
                    std::thread::scope(|scope| {
                        let lj = scope.spawn(move || run_branch(rt, lpath, ldag, ls, f));
                        let right = run_branch(rt, rpath, dag, rs, g);
                        let left = match lj.join() {
                            Ok(v) => v,
                            Err(p) => std::panic::resume_unwind(p),
                        };
                        (left, right)
                    })
                } else {
                    let left = run_branch(self.rt, lpath, dag.clone(), ls, f);
                    let right = run_branch(self.rt, rpath, dag, rs, g);
                    (left, right)
                };
                drop(token);
                pair
            };

        let join = self.rt.store().join(parent_heap, lh, rh);
        self.rt.unpark_result(lslot);
        self.rt.unpark_result(rslot);
        if let Some(dag) = &self.ctx.dag {
            self.ctx.strand = dag.join(lend, rend);
        }
        if self.ctx.path.len() == 1 {
            // Root-level join: every other task has completed, so retired
            // chunks are unreachable by construction.
            self.rt.graveyard().drain(self.rt.store());
        }
        // Merged data counts toward this task's collection debt: garbage
        // produced inside the children must not dodge the collector just
        // because their heaps dissolved into ours. Collecting a *merged*
        // heap is only safe when no concurrent task can race its
        // forwarding: always under the sequential executor, and at
        // root-level joins (global quiescence) under real threads. Inner
        // merged-heap collection under concurrency would need the
        // mutator handshakes full MPL performs; we defer it to the next
        // quiescent point instead (documented deviation, DESIGN.md §2).
        self.ctx.alloc_since = self.ctx.alloc_since.saturating_add(join.merged_bytes);
        let quiescent = self.rt.config().threads <= 1 || self.ctx.path.len() == 1;
        if quiescent && self.ctx.alloc_since >= self.ctx.lgc_budget {
            let mut lr = vec![lv, rv];
            self.run_lgc(&mut lr);
            return (lr[0], lr[1]);
        }
        // Joins are safepoints: honor any pin-driven CGC request. CGC is
        // non-moving, but the child results must be *reachable* during
        // its root scan, so root them for the duration.
        if self.rt.cgc_poll_requested() {
            let wm = self.mark();
            let _l = self.root(lv);
            let _r = self.root(rv);
            self.rt.maybe_cgc();
            self.release(wm);
        }
        (lv, rv)
    }

    /// Forces a local collection now (tests and experiments). `extra`
    /// values are treated as roots and updated.
    pub fn force_lgc(&mut self, extra: &mut [Value]) {
        self.run_lgc(extra);
    }

    // ---- internals ----------------------------------------------------------

    /// Pins an already-located object at `level`, registering it on first
    /// pin. Avoids a registry round-trip on the (common) already-pinned
    /// steady state.
    /// Pins the object at `r` (which must be cache-resident from a
    /// preceding `locate_ref`) at `level`.
    fn pin_cached(&mut self, r: ObjRef, level: u16) -> ObjRef {
        use mpl_heap::PinOutcome;
        // Every remote acquisition funnels through here (read barrier,
        // write barrier, observe, allocation barrier): from now on this
        // task may hold raw remote pointers, so its allocations must be
        // scanned (see `alloc_pin_remote`).
        self.ctx.saw_remote = true;
        let chunk = self.cached_chunk(r);
        let obj = chunk.get(r.slot());
        // Steady state: already pinned at (or below) this level — a single
        // header load, no CAS.
        let hdr = obj.header();
        if hdr.is_pinned() && hdr.pin_level() <= level && !hdr.is_forwarded() {
            return r;
        }
        let owner = chunk.owner();
        let size = obj.size_bytes();
        match obj.try_pin(level) {
            PinOutcome::AlreadyPinned { .. } => r,
            PinOutcome::NewlyPinned => {
                let store = self.rt.store();
                store.heaps().register_entangled(owner, r, level);
                self.cached_chunk(r).add_pinned(1);
                store.stats().on_pin(size);
                events::emit_obj(EventKind::Pin, r, u32::from(level));
                self.rt.cgc_state().satb_log(r);
                self.rt.request_cgc_poll();
                r
            }
            PinOutcome::Forwarded(next) => {
                let (pinned, newly) = self.rt.store().pin(next, level);
                if newly {
                    self.rt.cgc_state().satb_log(pinned);
                }
                pinned
            }
        }
    }

    /// The allocation barrier (entangled tasks only): a task holding raw
    /// remote pointers may store one into an object it is allocating,
    /// creating a cross-heap edge that neither the read/write barriers
    /// nor the remembered set ever see — the target's heap could then
    /// dead-mark it while this edge still reaches it (the historical
    /// "traced a dead object" race). Pinning each remote pointee at the
    /// heaps' LCA records the edge exactly as the write barrier records
    /// a remote store; the pin resolves at that join like any other.
    fn alloc_pin_remote(&mut self, fields: &mut [Value]) {
        for slot in fields.iter_mut() {
            let raw = *slot;
            let Value::Obj(_) = raw else { continue };
            let t = self.locate_ref(raw, "allocation barrier");
            let owner = self.cached_chunk(t).owner();
            let (_, _, lca) = self.rt.store().heaps().path_relation(&self.ctx.path, owner);
            if let Some(level) = lca {
                self.ctx.pending.entangled_writes += 1;
                let pinned = self.pin_cached(t, level);
                events::emit_obj(EventKind::AllocPin, pinned, u32::from(level));
                *slot = Value::Obj(pinned);
            } else if Value::Obj(t) != raw {
                *slot = Value::Obj(t); // chased forwarding: keep the fresh location
            }
        }
    }

    fn fix_stale(&mut self, v: Value) -> Value {
        match v {
            Value::Obj(_) => {
                let loc = self.locate(v, "stale fix");
                Value::Obj(loc.r)
            }
            imm => imm,
        }
    }

    fn mut_read(&mut self, objv: Value, idx: usize) -> Value {
        self.ctx.work += self.rt.config().work.read;
        let src = self.locate_ref(objv, "mutable read");
        let obj = self.cached_chunk(src).get(src.slot());
        debug_assert!(
            obj.kind().is_mutable_boxed(),
            "mutable read on {:?}",
            obj.kind()
        );
        let raw = obj.field(idx);
        let hdr = obj.header();
        let mode = self.rt.config().mode;
        if mode == Mode::NoEntanglementBarrier {
            return self.fix_stale(raw);
        }
        self.ctx.pending.barrier_reads += 1;
        // Entanglement-candidates fast path (ICFP 2022): an object that
        // never received a down-pointer write and is not pinned can only
        // hold pointers up its own path — no remote check needed. Every
        // remote acquisition necessarily flows through a suspect or
        // pinned object, so nothing is missed.
        if self.rt.config().suspects && !hdr.is_suspect() && !hdr.is_pinned() {
            return raw;
        }
        let Value::Obj(_) = raw else { return raw };
        let t = self.locate_ref(raw, "read target");
        let (_, _, lca) = self
            .rt
            .store()
            .heaps()
            .path_relation(&self.ctx.path, self.cached_chunk(t).owner());
        let Some(level) = lca else {
            // Local target: repair a stale source field if we chased
            // forwarding (rare; re-locating the source is fine).
            if Value::Obj(t) != raw {
                let src = self.locate_ref(objv, "mutable read");
                let _ = self
                    .cached_chunk(src)
                    .get(src.slot())
                    .cas_field(idx, raw, Value::Obj(t));
            }
            return Value::Obj(t);
        };
        // Entangled read: the paper's central event.
        if mode == Mode::DetectOnly {
            panic!("{ENTANGLEMENT_PANIC}");
        }
        self.ctx.pending.entangled_reads += 1;
        let pinned = self.pin_cached(t, level);
        if Value::Obj(pinned) != raw {
            let src = self.locate_ref(objv, "mutable read");
            let _ = self
                .cached_chunk(src)
                .get(src.slot())
                .cas_field(idx, raw, Value::Obj(pinned));
        }
        Value::Obj(pinned)
    }

    fn mut_write(&mut self, objv: Value, idx: usize, v: Value) {
        let r = self.write_barrier(objv, idx, v);
        let obj = self.cached_chunk(r).get(r.slot());
        if self.rt.cgc_state().is_marking() {
            if let Some(old) = obj.field_word(idx).pointer() {
                self.rt.cgc_state().satb_log(old);
            }
        }
        obj.set_field(idx, v);
    }

    fn mut_cas(
        &mut self,
        objv: Value,
        idx: usize,
        expected: Value,
        new: Value,
    ) -> Result<(), Value> {
        let r = self.write_barrier(objv, idx, new);
        let obj = self.cached_chunk(r).get(r.slot());
        if self.rt.cgc_state().is_marking() {
            if let Value::Obj(old) = expected {
                self.rt.cgc_state().satb_log(old);
            }
        }
        // A CAS is also a read: the observed value may expose a remote
        // pointer on failure.
        match obj.cas_field(idx, expected, new) {
            Ok(()) => Ok(()),
            Err(actual) => Err(self.observe_read(actual)),
        }
    }

    /// The write barrier: detects entangled writes, pins pointees that
    /// become cross-visible, and maintains the down-pointer remembered
    /// set. Returns the resolved target, guaranteed cache-resident.
    fn write_barrier(&mut self, objv: Value, idx: usize, v: Value) -> ObjRef {
        self.ctx.work += self.rt.config().work.write;
        let src = self.locate_ref(objv, "mutable write");
        debug_assert!(
            self.cached_chunk(src)
                .get(src.slot())
                .kind()
                .is_mutable_boxed(),
            "mutable write on immutable object"
        );
        let mode = self.rt.config().mode;
        let store = self.rt.store();
        self.ctx.pending.barrier_writes += 1;
        // Fast exit: under managed semantics, storing an immediate cannot
        // create entanglement (no pointer crosses), so the locality checks
        // are skipped entirely. DetectOnly must still check (any remote
        // write is a detected entanglement in prior MPL).
        if mode == Mode::Managed && !matches!(v, Value::Obj(_)) {
            return src;
        }
        let (o_heap, o_depth, o_lca) = store
            .heaps()
            .path_relation(&self.ctx.path, self.cached_chunk(src).owner());
        let o_local = o_lca.is_none();
        if !o_local {
            match mode {
                Mode::DetectOnly => panic!("{ENTANGLEMENT_PANIC}"),
                Mode::NoEntanglementBarrier => {}
                Mode::Managed => {
                    self.ctx.pending.entangled_writes += 1;
                    if let Value::Obj(_) = v {
                        let t = self.locate_ref(v, "written value");
                        // The written pointer becomes visible to the
                        // remote object's owner: pin at the heaps' LCA.
                        let t_heap = store.heaps().find(self.cached_chunk(t).owner());
                        let level = store.heaps().lca_of(o_heap, t_heap);
                        let _ = self.pin_cached(t, level);
                    }
                }
            }
            return self.locate_ref(objv, "mutable write");
        }
        if let Value::Obj(_) = v {
            let t = self.locate_ref(v, "written value");
            let (t_heap, t_depth, t_lca) = store
                .heaps()
                .path_relation(&self.ctx.path, self.cached_chunk(t).owner());
            let t_local = t_lca.is_none();
            if t_local {
                if t_depth > o_depth {
                    // Down-pointer: root for the deeper heap's collections,
                    // and the written-to object becomes an entanglement
                    // candidate — its reads must check. (Re-locate: the
                    // target lookup above may have evicted the source's
                    // cache slot.)
                    let src = self.locate_ref(objv, "mutable write");
                    self.cached_chunk(src).get(src.slot()).mark_suspect();
                    store.remember(
                        t_heap,
                        RemsetEntry {
                            src,
                            field: idx as u32,
                        },
                    );
                }
            } else if mode == Mode::Managed {
                // Storing an (already remote, hence pinned-at-acquisition)
                // pointer: ensure its level covers this object's readers,
                // and mark the holder a candidate.
                self.ctx.pending.entangled_writes += 1;
                let level = store.heaps().lca_of(o_heap, t_heap);
                let _ = self.pin_cached(t, level);
                let src = self.locate_ref(objv, "mutable write");
                self.cached_chunk(src).get(src.slot()).mark_suspect();
                return src;
            } else if mode == Mode::DetectOnly {
                panic!("{ENTANGLEMENT_PANIC}");
            }
            return self.locate_ref(objv, "mutable write");
        }
        src
    }

    /// Applies the read-barrier's entanglement handling to a value
    /// observed from a failed CAS.
    fn observe_read(&mut self, actual: Value) -> Value {
        let mode = self.rt.config().mode;
        if mode == Mode::NoEntanglementBarrier {
            return self.fix_stale(actual);
        }
        let Value::Obj(_) = actual else { return actual };
        let t = self.locate_ref(actual, "cas observation");
        let (_, _, lca) = self
            .rt
            .store()
            .heaps()
            .path_relation(&self.ctx.path, self.cached_chunk(t).owner());
        let Some(level) = lca else {
            return Value::Obj(t);
        };
        if mode == Mode::DetectOnly {
            panic!("{ENTANGLEMENT_PANIC}");
        }
        self.ctx.pending.entangled_reads += 1;
        Value::Obj(self.pin_cached(t, level))
    }

    fn run_lgc(&mut self, extra: &mut [Value]) {
        self.flush_stats();
        // A local collection moves objects and (eagerly) frees chunks; a
        // paused incremental CGC holds object refs in its mark stack, so
        // finish that cycle first. (Full MPL repairs the marker's state
        // instead; serializing keeps the interaction sound here.)
        if self.rt.config().cgc_slice_objects > 0 && self.rt.cgc_state().cycle_active() {
            self.rt.force_cgc();
        }
        let heap = self.leaf_heap();
        let mut shadow = self.ctx.shadow.lock();
        let shadow_len = shadow.len();
        let mut roots: Vec<ObjRef> = shadow.clone();
        let mut extra_slots = Vec::new();
        for (i, v) in extra.iter().enumerate() {
            if let Value::Obj(r) = v {
                roots.push(*r);
                extra_slots.push(i);
            }
        }
        let out = collect_local(
            self.rt.store(),
            heap,
            &mut roots,
            self.rt.graveyard(),
            self.rt.config().policy.immediate_chunk_free,
        );
        shadow.copy_from_slice(&roots[..shadow_len]);
        drop(shadow);
        for (k, &i) in extra_slots.iter().enumerate() {
            extra[i] = Value::Obj(roots[shadow_len + k]);
        }
        self.ctx.alloc_since = 0;
        // Size-proportional budget: next collection once we allocate
        // about as much as survived this one.
        let survivors = (out.copied_bytes + out.retained_entangled_bytes) as usize;
        self.ctx.lgc_budget = self.rt.config().policy.lgc_trigger_bytes.max(2 * survivors);
        // The collection replaced the allocation chunk and may have freed
        // cached chunks.
        self.ctx.alloc_cache = None;
        self.ctx.chunk_cache = [None, None, None, None];
        // Collection work is deliberately NOT charged to the strand: in
        // MPL, local collections are distributed across (otherwise idle)
        // processors, so they do not serialize the computation the way
        // charging them to the recorded mutator strand would. Wall-clock
        // measurements (T_1) still include the full collection cost.
        let _ = out;
    }
}

fn run_branch<F>(
    rt: &Runtime,
    path: Vec<u32>,
    dag: Option<Arc<DagBuilder>>,
    strand: StrandId,
    body: F,
) -> (Value, StrandId, Option<usize>)
where
    F: FnOnce(&mut Mutator<'_>) -> Value,
{
    let ctx = TaskCtx::new(path, dag, strand, rt);
    let mut m = Mutator::new(rt, ctx);
    let v = body(&mut m);
    // Park the result before dropping the task's roots so a concurrent
    // collection between branch completion and the join still sees it.
    let slot = rt.park_result(v);
    let end = m.ctx.strand;
    m.finish_task();
    (v, end, slot)
}
