//! The entanglement barrier layer: read/write/CAS barriers with an
//! explicit fast-path/slow-path tier split, the pin protocol, and
//! down-pointer remembered-set maintenance.
//!
//! # Tier split
//!
//! Every barriered access is classified into exactly one of two tiers,
//! counted separately in [`mpl_heap::StatsSnapshot`]:
//!
//! * **Fast tier** (`barrier_read_fast` / `barrier_write_fast`): the
//!   access completed using only per-block side metadata and the
//!   task-local block cache — **zero lock acquisitions, zero `Arc`
//!   clones, zero heap-table or registry queries**. The read fast path
//!   is the paper's entanglement-candidates check: one load of the
//!   block's `slow` bitmap (suspect ∪ pinned, maintained by
//!   `mark_suspect`/`try_pin`) for an object already resident in the
//!   block cache. The write fast paths are (1) storing an immediate
//!   under managed semantics, and (2) a pointer store where source and
//!   target both provably live in this task's own leaf heap — the
//!   target classified by the SFT-style block table
//!   ([`mpl_heap::SftTable::owner_of`], one shifted load), the source by
//!   cached block owner; heap ids are globally unique and a leaf stays
//!   canonical while its task runs, so locality can neither create
//!   entanglement nor a down-pointer.
//!
//! * **Slow tier** (`barrier_read_slow` / `barrier_write_slow`): the
//!   full machinery — locate the target, query the heap table for the
//!   path relation / LCA, pin, buffer remembered-set entries. The slow
//!   tier is semantically complete on its own; the fast tier is purely
//!   an elision. [`crate::RuntimeConfig::force_slow_path`] disables
//!   every fast-tier exit so a property test can check the two tiers
//!   agree.
//!
//! Remembered-set entries are not published directly: the write barrier
//! hands them to [`Mutator::buffer_remset`] (task-private, deduplicated),
//! and batches flush at the task's safepoints — see
//! `Mutator::flush_remset` in `crate::mutator` for the flush points and
//! soundness argument.

use mpl_heap::events::{self, EventKind};
use mpl_heap::{ObjRef, RemsetEntry, Value};

use crate::config::Mode;
use crate::mutator::{Mutator, ENTANGLEMENT_PANIC};

/// 1-in-k sampling rate for entanglement-provenance recording: at the
/// slow tier's cost (heap-table queries, possible pin CAS) a 1/64 sample
/// adds under one ring write per 64 entangled accesses while still
/// filling the 2048-slot ring within milliseconds on entanglement-heavy
/// workloads.
const PROVENANCE_ONE_IN: u64 = 64;

/// Seed feeding the pure `mpl_fail::decides` hash for the provenance
/// sampling decision — fixed (not plan-derived) so the sample stream is
/// reproducible for a given access ordinal sequence whether or not a
/// chaos plan is armed.
const PROVENANCE_SEED: u64 = 0x70726f76;

impl Mutator<'_> {
    /// Entanglement provenance (sampled): records a
    /// `(reader depth, owner depth, size class, newly pinned?)` tuple
    /// into the `mpl-obs` provenance ring for roughly 1 in
    /// [`PROVENANCE_ONE_IN`] slow-tier entangled accesses. The decision
    /// reuses `mpl-fail`'s seeded `decides` hash over a process-global
    /// access ordinal, so which accesses get sampled is deterministic in
    /// the ordinal sequence; with telemetry disabled the whole thing is
    /// one relaxed load.
    fn provenance_sample(&mut self, target: ObjRef, owner_depth: u16, newly_pinned: bool) {
        if !mpl_obs::enabled() {
            return;
        }
        use std::sync::atomic::{AtomicU64, Ordering};
        static ORDINAL: AtomicU64 = AtomicU64::new(0);
        let n = ORDINAL.fetch_add(1, Ordering::Relaxed);
        if !mpl_fail::decides(
            PROVENANCE_SEED,
            "barrier/provenance",
            mpl_fail::FailWhen::OneIn(PROVENANCE_ONE_IN),
            n,
        ) {
            return;
        }
        mpl_obs::provenance_record(mpl_obs::ProvenanceSample {
            reader_depth: self.ctx.path.len() as u16,
            owner_depth,
            size_class: self.cached_block(target).size_class() as u8,
            pinned: newly_pinned,
        });
    }
    /// Re-resolves a possibly stale (forwarded) object value.
    pub(crate) fn fix_stale(&mut self, v: Value) -> Value {
        match v {
            Value::Obj(_) => Value::Obj(self.locate_ref(v, "stale fix")),
            imm => imm,
        }
    }

    /// Pins the object at `r` (which must be cache-resident from a
    /// preceding `locate_ref`) at `level`, registering it on first pin.
    /// Avoids a registry round-trip on the (common) already-pinned
    /// steady state.
    pub(crate) fn pin_cached(&mut self, r: ObjRef, level: u16) -> ObjRef {
        use mpl_heap::PinOutcome;
        // Every remote acquisition funnels through here (read barrier,
        // write barrier, observe, allocation barrier): from now on this
        // task may hold raw remote pointers, so its allocations must be
        // scanned (see `alloc_pin_remote`).
        self.ctx.saw_remote = true;
        let block = self.cached_block(r);
        let obj = block.get(r.word());
        // Steady state: already pinned at (or below) this level — a single
        // header load, no CAS.
        let hdr = obj.header();
        if hdr.is_pinned() && hdr.pin_level() <= level && !hdr.is_forwarded() {
            return r;
        }
        let owner = block.owner();
        let size = obj.size_bytes();
        match obj.try_pin(level) {
            PinOutcome::AlreadyPinned { .. } => r,
            PinOutcome::NewlyPinned => {
                let store = self.rt.store();
                store.heaps().register_entangled(owner, r, level);
                self.cached_block(r).add_pinned(1);
                store.stats().on_pin(size);
                events::emit_obj(EventKind::Pin, r, u32::from(level));
                self.rt.cgc_state().satb_log_shard(&self.ctx.satb, r);
                self.rt.request_cgc_poll();
                r
            }
            PinOutcome::Forwarded(next) => {
                let (pinned, newly) = self.rt.store().pin(next, level);
                if newly {
                    self.rt.cgc_state().satb_log_shard(&self.ctx.satb, pinned);
                }
                pinned
            }
        }
    }

    /// The allocation barrier (entangled tasks only): a task holding raw
    /// remote pointers may store one into an object it is allocating,
    /// creating a cross-heap edge that neither the read/write barriers
    /// nor the remembered set ever see — the target's heap could then
    /// dead-mark it while this edge still reaches it (the historical
    /// "traced a dead object" race). Pinning each remote pointee at the
    /// heaps' LCA records the edge exactly as the write barrier records
    /// a remote store; the pin resolves at that join like any other.
    pub(crate) fn alloc_pin_remote(&mut self, fields: &mut [Value]) {
        for slot in fields.iter_mut() {
            let raw = *slot;
            let Value::Obj(_) = raw else { continue };
            let t = self.locate_ref(raw, "allocation barrier");
            let owner = self.cached_block(t).owner();
            let (_, _, lca) = self.rt.store().heaps().path_relation(&self.ctx.path, owner);
            if let Some(level) = lca {
                self.ctx.pending.entangled_writes += 1;
                let pinned = self.pin_cached(t, level);
                events::emit_obj(EventKind::AllocPin, pinned, u32::from(level));
                *slot = Value::Obj(pinned);
            } else if Value::Obj(t) != raw {
                *slot = Value::Obj(t); // chased forwarding: keep the fresh location
            }
        }
    }

    pub(crate) fn mut_read(&mut self, objv: Value, idx: usize) -> Value {
        self.ctx.work += self.rt.config().work.read;
        let src = self.locate_ref(objv, "mutable read");
        let obj = self.cached_block(src).get(src.word());
        debug_assert!(
            obj.kind().is_mutable_boxed(),
            "mutable read on {:?}",
            obj.kind()
        );
        let raw = obj.field(idx);
        let slow = obj.is_slow();
        let cfg = self.rt.config();
        if cfg.mode == Mode::NoEntanglementBarrier {
            return self.fix_stale(raw);
        }
        self.ctx.pending.barrier_reads += 1;
        // FAST TIER, entanglement-candidates check (ICFP 2022): an object
        // that never received a down-pointer write and is not pinned can
        // only hold pointers up its own path — no remote check needed.
        // Every remote acquisition necessarily flows through a suspect or
        // pinned object, so nothing is missed. One shifted load of the
        // block's `slow` side-metadata bitmap (suspect ∪ pinned); no
        // table, no lock, no Arc clone, no header traffic.
        if !cfg.force_slow_path && cfg.suspects && !slow {
            self.ctx.pending.read_fast += 1;
            return raw;
        }
        // An immediate loaded from a suspect/pinned object still never
        // touches the heap table: fast tier by construction. (Under
        // `force_slow_path` it counts as slow so the diagnostic mode
        // reports zero fast-tier entries.)
        let Value::Obj(_) = raw else {
            if cfg.force_slow_path {
                self.ctx.pending.read_slow += 1;
            } else {
                self.ctx.pending.read_fast += 1;
            }
            return raw;
        };
        // SLOW TIER: locate the target and query the heap table. Slow
        // tiers are handshake poll points: a read-heavy entangled loop
        // may not allocate for a long stretch. The same argument makes
        // them cancellation poll points.
        self.rt.cgc_state().poll_handshake(&self.ctx.satb);
        self.poll_cancel();
        self.ctx.pending.read_slow += 1;
        mpl_fail::hit_hard("barrier/read_slow");
        let _t = mpl_obs::timer(mpl_obs::Metric::BarrierSlow);
        let t = self.locate_ref(raw, "read target");
        let (_, t_depth, lca) = self
            .rt
            .store()
            .heaps()
            .path_relation(&self.ctx.path, self.cached_block(t).owner());
        let Some(level) = lca else {
            // Local target: repair a stale source field if we chased
            // forwarding (rare; re-locating the source is fine).
            if Value::Obj(t) != raw {
                let src = self.locate_ref(objv, "mutable read");
                let _ = self
                    .cached_block(src)
                    .get(src.word())
                    .cas_field(idx, raw, Value::Obj(t));
            }
            return Value::Obj(t);
        };
        // Entangled read: the paper's central event.
        if cfg.mode == Mode::DetectOnly {
            panic!("{ENTANGLEMENT_PANIC}");
        }
        self.ctx.pending.entangled_reads += 1;
        let newly = mpl_obs::enabled() && !self.cached_block(t).get(t.word()).header().is_pinned();
        let pinned = self.pin_cached(t, level);
        self.provenance_sample(pinned, t_depth, newly);
        if Value::Obj(pinned) != raw {
            let src = self.locate_ref(objv, "mutable read");
            let _ = self
                .cached_block(src)
                .get(src.word())
                .cas_field(idx, raw, Value::Obj(pinned));
        }
        Value::Obj(pinned)
    }

    pub(crate) fn mut_write(&mut self, objv: Value, idx: usize, v: Value) {
        let r = self.write_barrier(objv, idx, v);
        let obj = self.cached_block(r).get(r.word());
        // Deletion barrier: log the overwritten pointer *before* the
        // store. `is_marking` is an Acquire load of the flag the
        // collector raises before its snapshot handshake; a mutator that
        // misses the flag here has not yet acked the handshake epoch, so
        // the snapshot has not been taken and the old value is still
        // reachable from the roots scan. See the epoch protocol in
        // `mpl_gc::cgc`.
        if self.rt.cgc_state().is_marking() {
            if let Some(old) = obj.field_word(idx).pointer() {
                self.rt.cgc_state().satb_log_shard(&self.ctx.satb, old);
            }
        }
        obj.set_field(idx, v);
    }

    pub(crate) fn mut_cas(
        &mut self,
        objv: Value,
        idx: usize,
        expected: Value,
        new: Value,
    ) -> Result<(), Value> {
        let r = self.write_barrier(objv, idx, new);
        let obj = self.cached_block(r).get(r.word());
        if self.rt.cgc_state().is_marking() {
            if let Value::Obj(old) = expected {
                self.rt.cgc_state().satb_log_shard(&self.ctx.satb, old);
            }
        }
        // A CAS is also a read: the observed value may expose a remote
        // pointer on failure.
        match obj.cas_field(idx, expected, new) {
            Ok(()) => Ok(()),
            Err(actual) => Err(self.observe_read(actual)),
        }
    }

    /// The write barrier: detects entangled writes, pins pointees that
    /// become cross-visible, and maintains the down-pointer remembered
    /// set. Returns the resolved target, guaranteed cache-resident.
    fn write_barrier(&mut self, objv: Value, idx: usize, v: Value) -> ObjRef {
        self.ctx.work += self.rt.config().work.write;
        let src = self.locate_ref(objv, "mutable write");
        debug_assert!(
            self.cached_block(src)
                .get(src.word())
                .kind()
                .is_mutable_boxed(),
            "mutable write on immutable object"
        );
        let cfg = self.rt.config();
        let mode = cfg.mode;
        let store = self.rt.store();
        self.ctx.pending.barrier_writes += 1;
        // FAST TIER exit 1: under managed semantics, storing an immediate
        // cannot create entanglement (no pointer crosses), so the
        // locality checks are skipped entirely. DetectOnly must still
        // check (any remote write is a detected entanglement in prior
        // MPL).
        if !cfg.force_slow_path && mode == Mode::Managed && !matches!(v, Value::Obj(_)) {
            self.ctx.pending.write_fast += 1;
            return src;
        }
        // FAST TIER exit 2: a pointer store where source and target both
        // live in this task's own leaf heap. Block owner ids are written
        // once at block allocation and heap ids are never reused, so
        // `owner == leaf` proves leaf-heap residency without touching the
        // heap table; equal depths mean no down-pointer and locality
        // means no entanglement, in every mode. (Forwarding never leaves
        // a heap, so the check holds even for a stale target ref — and
        // the slow tier stores the caller's `v` unresolved in the local
        // case too.) The target is classified by the SFT block table —
        // one shifted load into the side-metadata segment array, no
        // registry lock, and no cache traffic that could evict the
        // source's slot (which callers need resident).
        if !cfg.force_slow_path && matches!(v, Value::Obj(_)) {
            let leaf = self.leaf_heap();
            if let Value::Obj(t) = v {
                if self.cached_block(src).owner() == leaf
                    && store.sft().owner_of(t.block()) == Some(leaf)
                {
                    self.ctx.pending.write_fast += 1;
                    return src;
                }
            }
        }
        // SLOW TIER: full locate + path-relation machinery. (Re-locate
        // the source: fast-exit-2 probing may have evicted it.) Also a
        // handshake — and cancellation — poll point, like the read slow
        // tier.
        self.rt.cgc_state().poll_handshake(&self.ctx.satb);
        self.poll_cancel();
        self.ctx.pending.write_slow += 1;
        mpl_fail::hit_hard("barrier/write_slow");
        let _t = mpl_obs::timer(mpl_obs::Metric::BarrierSlow);
        let src = self.locate_ref(objv, "mutable write");
        let (o_heap, o_depth, o_lca) = store
            .heaps()
            .path_relation(&self.ctx.path, self.cached_block(src).owner());
        let o_local = o_lca.is_none();
        if !o_local {
            match mode {
                Mode::DetectOnly => panic!("{ENTANGLEMENT_PANIC}"),
                Mode::NoEntanglementBarrier => {}
                Mode::Managed => {
                    self.ctx.pending.entangled_writes += 1;
                    if let Value::Obj(_) = v {
                        let t = self.locate_ref(v, "written value");
                        // The written pointer becomes visible to the
                        // remote object's owner: pin at the heaps' LCA.
                        let t_heap = store.heaps().find(self.cached_block(t).owner());
                        let level = store.heaps().lca_of(o_heap, t_heap);
                        let _ = self.pin_cached(t, level);
                    }
                }
            }
            return self.locate_ref(objv, "mutable write");
        }
        if let Value::Obj(_) = v {
            let t = self.locate_ref(v, "written value");
            let (t_heap, t_depth, t_lca) = store
                .heaps()
                .path_relation(&self.ctx.path, self.cached_block(t).owner());
            let t_local = t_lca.is_none();
            if t_local {
                if t_depth > o_depth {
                    // Down-pointer: root for the deeper heap's collections,
                    // and the written-to object becomes an entanglement
                    // candidate — its reads must check. (Re-locate: the
                    // target lookup above may have evicted the source's
                    // cache slot.) The entry goes to the task-private
                    // buffer, published at the next safepoint flush.
                    let src = self.locate_ref(objv, "mutable write");
                    self.cached_block(src).get(src.word()).mark_suspect();
                    self.buffer_remset(
                        t_heap,
                        RemsetEntry {
                            src,
                            field: idx as u32,
                        },
                    );
                }
            } else if mode == Mode::Managed {
                // Storing an (already remote, hence pinned-at-acquisition)
                // pointer: ensure its level covers this object's readers,
                // and mark the holder a candidate.
                self.ctx.pending.entangled_writes += 1;
                let level = store.heaps().lca_of(o_heap, t_heap);
                let newly =
                    mpl_obs::enabled() && !self.cached_block(t).get(t.word()).header().is_pinned();
                let pinned = self.pin_cached(t, level);
                self.provenance_sample(pinned, t_depth, newly);
                let src = self.locate_ref(objv, "mutable write");
                self.cached_block(src).get(src.word()).mark_suspect();
                return src;
            } else if mode == Mode::DetectOnly {
                panic!("{ENTANGLEMENT_PANIC}");
            }
            return self.locate_ref(objv, "mutable write");
        }
        src
    }

    /// Applies the read-barrier's entanglement handling to a value
    /// observed from a failed CAS.
    fn observe_read(&mut self, actual: Value) -> Value {
        let mode = self.rt.config().mode;
        if mode == Mode::NoEntanglementBarrier {
            return self.fix_stale(actual);
        }
        let Value::Obj(_) = actual else { return actual };
        let t = self.locate_ref(actual, "cas observation");
        let (_, t_depth, lca) = self
            .rt
            .store()
            .heaps()
            .path_relation(&self.ctx.path, self.cached_block(t).owner());
        let Some(level) = lca else {
            return Value::Obj(t);
        };
        if mode == Mode::DetectOnly {
            panic!("{ENTANGLEMENT_PANIC}");
        }
        self.ctx.pending.entangled_reads += 1;
        let newly = mpl_obs::enabled() && !self.cached_block(t).get(t.word()).header().is_pinned();
        let pinned = self.pin_cached(t, level);
        self.provenance_sample(pinned, t_depth, newly);
        Value::Obj(pinned)
    }
}
