//! The entanglement-managed runtime.
//!
//! A [`Runtime`] owns the store, the collectors' shared state, and the
//! task-root registry the concurrent collector draws from. Programs run
//! against a [`crate::mutator::Mutator`] obtained from [`Runtime::run`].

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mpl_gc::{collect_local, CgcState, Graveyard};
use mpl_heap::{ObjRef, StatsSnapshot, Store, TenantBudget, Value};
use mpl_sched::{Dag, DagBuilder, Executor, SchedMode, SchedSnapshot, StrandId, TokenPool};

use crate::cancel::{CancelReason, CancelToken, Cancelled, RunError};
use crate::config::RuntimeConfig;
use crate::mutator::{Mutator, TaskCtx};
use crate::roots::RootStack;

thread_local! {
    /// True while this thread holds `cgc_gate` and is driving a
    /// collection. A worker driving CGC packets can help-steal an
    /// unrelated mutator job whose safepoint asks for a collection;
    /// without this guard that nested request would block on the gate
    /// this very thread holds.
    static IN_GC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII set/clear of [`IN_GC`] for the gate-holding collection bodies.
struct InGcGuard;

impl InGcGuard {
    fn enter() -> Self {
        IN_GC.with(|g| g.set(true));
        InGcGuard
    }
}

impl Drop for InGcGuard {
    fn drop(&mut self) {
        IN_GC.with(|g| g.set(false));
    }
}

/// The exporter documents produced by [`Runtime::telemetry_report`].
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// `chrome://tracing`-loadable trace-event JSON: one track per
    /// worker with GC-phase/scheduler/remset spans, plus counter tracks
    /// from the sampler.
    pub chrome_trace: String,
    /// Prometheus text-exposition document: runtime counters and gauges
    /// plus the pause/latency histograms.
    pub prometheus: String,
    /// Machine-readable JSON document: the same counters and gauges,
    /// histogram percentile summaries (p50/p90/p99/p999/max in
    /// nanoseconds), and the sampler's gauge series — what the E12 SLO
    /// reporter and CI assertions parse instead of scraping text.
    pub json: String,
}

/// A persistent tenant execution context on one [`Runtime`]: a dedicated
/// root heap (with an optional [`TenantBudget`] attached, inherited by
/// every heap forked under it), plus a root stack that survives across
/// [`Runtime::run_session`] calls so [`crate::mutator::Handle`]s created
/// in one request stay valid — and stay CGC roots — in the next.
///
/// Collection debt (`alloc_since` / the size-proportional LGC budget) is
/// carried across requests: garbage accumulated in the tenant's root
/// heap over many small requests still triggers local collections, which
/// is what keeps a minutes-long serving run's memory flat.
#[derive(Debug)]
pub struct TenantSession {
    root_heap: u32,
    roots: Arc<RootStack>,
    budget: Option<Arc<TenantBudget>>,
    alloc_debt: std::sync::atomic::AtomicUsize,
    lgc_budget: std::sync::atomic::AtomicUsize,
}

impl TenantSession {
    /// The tenant's root heap id.
    pub fn root_heap(&self) -> u32 {
        self.root_heap
    }

    /// The tenant's budget handle, if one was configured.
    pub fn budget(&self) -> Option<&Arc<TenantBudget>> {
        self.budget.as_ref()
    }
}

/// The runtime: store + collectors + scheduler state.
#[derive(Debug)]
pub struct Runtime {
    store: Store,
    config: RuntimeConfig,
    cgc_state: CgcState,
    graveyard: Graveyard,
    tokens: TokenPool,
    /// Registry of live tasks' root stacks. The mutex guards only the
    /// registry vector (register/unregister at task start/finish); the
    /// stacks themselves are lock-free and read in place by the
    /// concurrent collector's root scan.
    roots: Mutex<Vec<Arc<RootStack>>>,
    pending: Mutex<Vec<Option<ObjRef>>>,
    dag: Mutex<Option<Arc<DagBuilder>>>,
    last_dag: Mutex<Option<Dag>>,
    cgc_gate: Mutex<()>,
    /// Pinned footprint after the previous concurrent collection; the
    /// next one triggers only once the footprint has doubled (amortizing
    /// full-graph marking against entangled allocation volume).
    cgc_baseline: std::sync::atomic::AtomicUsize,
    cgc_poll: std::sync::atomic::AtomicBool,
    /// The telemetry sampler thread (present iff `config.telemetry`).
    /// Declared before `executor` so it stops (and drops its executor
    /// handle) before the pool is torn down.
    sampler: Option<mpl_obs::Sampler>,
    /// Registry token for this runtime's failpoint plan (present iff the
    /// plan is non-empty); the slots are removed on drop.
    failpoint_owner: Option<u64>,
    /// The GC stall watchdog thread (present iff
    /// `config.gc_stall_deadline_ns > 0`).
    watchdog: Option<Watchdog>,
    /// The runtime's root cancellation token. Every `run*` entry point
    /// threads a fresh *child* of this token through its task tree —
    /// never the root itself — so a per-run trip (deadline expiry,
    /// alloc-error escalation) can't poison later runs, while
    /// cancelling the root still reaches every run in flight. The
    /// token's kick unparks the worker pool so parked workers notice a
    /// trip immediately.
    root_cancel: CancelToken,
    /// The persistent work-stealing pool; present iff `threads > 1` and
    /// `sched == SchedMode::WorkStealing`. Workers live as long as the
    /// runtime and are re-used across `run` calls. Shared (`Arc`) so the
    /// sampler thread can read scheduler counters without borrowing the
    /// runtime.
    executor: Option<Arc<Executor>>,
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Runtime {
        if config.audit {
            mpl_gc::audit::enable(); // balanced by Drop
        }
        // Process-wide telemetry opt-in via MPL_TELEMETRY, then the
        // per-runtime refcounted switch (balanced by Drop).
        mpl_obs::init_from_env();
        if config.telemetry {
            mpl_obs::enable();
        }
        // Process-wide fault-injection opt-in via MPL_FAILPOINTS, then
        // this runtime's own plan (uninstalled by Drop). An empty plan
        // never touches the registry, so the disabled cost stays one
        // relaxed load per site.
        mpl_fail::init_from_env();
        let failpoint_owner =
            (!config.failpoints.is_empty()).then(|| mpl_fail::install(&config.failpoints));
        // Give each pool worker its own event ring. Registered before the
        // pool exists so the first worker to start is already covered.
        mpl_sched::set_worker_start_hook(mpl_gc::audit::register_worker);
        // Task-boundary markers in the event rings: lets an audit dump
        // reconstruct which jobs surrounded a failure.
        mpl_sched::set_job_finish_hook(mpl_gc::audit::note_job_boundary);
        let executor = if config.threads > 1 && config.sched == SchedMode::WorkStealing {
            Some(Arc::new(Executor::new(config.threads)))
        } else {
            None
        };
        let store = Store::new(config.store);
        // Root cancellation token: the kick wakes the pool's parked
        // workers so a trip is noticed within one steal probe instead of
        // a full park interval. `Weak` so the token never extends the
        // pool's lifetime past the runtime's.
        let root_cancel = match &executor {
            Some(e) => {
                let weak = Arc::downgrade(e);
                CancelToken::with_kick(move || {
                    if let Some(e) = weak.upgrade() {
                        e.unpark_all();
                    }
                })
            }
            None => CancelToken::new(),
        };
        let sampler = config.telemetry.then(|| {
            spawn_sampler(
                &store,
                executor.clone(),
                config.threads.max(1),
                Duration::from_nanos(config.sampler_interval_ns.max(1)),
            )
        });
        let watchdog = (config.gc_stall_deadline_ns > 0).then(|| {
            let cancel = config.watchdog_cancels.then(|| root_cancel.clone());
            spawn_watchdog(&store, config, cancel)
        });
        Runtime {
            store,
            cgc_state: CgcState::new(),
            graveyard: Graveyard::new(),
            tokens: TokenPool::new(config.threads.max(1)),
            roots: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            dag: Mutex::new(None),
            last_dag: Mutex::new(None),
            cgc_gate: Mutex::new(()),
            cgc_baseline: std::sync::atomic::AtomicUsize::new(0),
            cgc_poll: std::sync::atomic::AtomicBool::new(false),
            sampler,
            failpoint_owner,
            watchdog,
            executor,
            root_cancel,
            config,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The runtime's root cancellation token. Cancelling it cancels
    /// every run currently in flight (each run polls a child of this
    /// token) and makes every *future* run on this runtime fail
    /// immediately with [`RunError::Cancelled`] — it is the shutdown
    /// switch, not a per-request knob. For per-request deadlines use
    /// [`Runtime::try_run_deadline`] /
    /// [`Runtime::try_run_session_deadline`].
    pub fn root_cancel(&self) -> &CancelToken {
        &self.root_cancel
    }

    /// Number of times this runtime's GC stall watchdog has fired
    /// (zero when no watchdog is configured). Per-runtime — unlike
    /// `mpl_gc::stall::reports()`, which is process-global and
    /// accumulates across runtimes.
    pub fn watchdog_reports(&self) -> u64 {
        self.watchdog
            .as_ref()
            .map(|w| w.reports.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records a server request whose deadline expired (exported as
    /// `requests_timed_out`). Called by dispatchers layered on top of
    /// the runtime, so the counter lives next to the GC/cancel counters
    /// it correlates with.
    pub fn note_request_timeout(&self) {
        self.store.stats().on_request_timeout();
    }

    /// Records a server retry attempt launched after a timeout
    /// (exported as `request_retries`).
    pub fn note_request_retry(&self) {
        self.store.stats().on_request_retry();
    }

    /// Records a circuit breaker opening (exported as `breaker_open`).
    pub fn note_breaker_open(&self) {
        self.store.stats().on_breaker_open();
    }

    /// A snapshot of the cost-metric counters, with the scheduler's
    /// counters overlaid when the work-stealing executor is active and
    /// the (process-global) GC audit counters overlaid always.
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.store.stats().snapshot();
        if let Some(e) = &self.executor {
            let sched = e.stats();
            s.sched_pushes = sched.pushes;
            s.sched_steals = sched.steals;
            s.sched_sequentialized = sched.sequentialized;
            s.sched_parks = sched.parks;
            s.sched_unparks = sched.unparks;
        }
        let audit = mpl_gc::audit::counters();
        s.audit_runs = audit.audits_run;
        s.audit_objects_checked = audit.objects_checked;
        s.audit_events = audit.events_recorded;
        s.audit_ring_overflows = audit.ring_overflows;
        s.failpoint_fires = mpl_fail::fires();
        s
    }

    /// A snapshot of the work-stealing scheduler's counters (zeros when
    /// the pool is not active).
    pub fn sched_stats(&self) -> SchedSnapshot {
        self.executor
            .as_deref()
            .map(Executor::stats)
            .unwrap_or_default()
    }

    pub(crate) fn cgc_state(&self) -> &CgcState {
        &self.cgc_state
    }

    pub(crate) fn graveyard(&self) -> &Graveyard {
        &self.graveyard
    }

    pub(crate) fn tokens(&self) -> &TokenPool {
        &self.tokens
    }

    /// Runs a program to completion on this runtime and returns its result.
    ///
    /// The closure receives the root task's [`Mutator`]. With
    /// `config.threads > 1`, forks inside the program may execute on real
    /// threads; otherwise execution is deterministic depth-first.
    pub fn run<F>(&self, f: F) -> Value
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        let root_heap = self.store.new_root_heap();
        self.run_root(root_heap, None, self.root_cancel.child(), f)
    }

    /// The shared body of [`Runtime::run`] and [`Runtime::run_session`]:
    /// runs `f` as a root task on `root_heap`, with the cleanup a
    /// panicking program needs running unconditionally — the task's
    /// buffered remsets flush and its root-stack registration drops
    /// (`finish_task`), the graveyard drains, and a half-built DAG
    /// recording is discarded — before the payload is re-raised. By the
    /// time a panic reaches here every fork inside `f` has already
    /// joined (joins complete both branches and merge their heaps before
    /// re-raising), so the program is quiescent and draining is safe.
    fn run_root<F>(
        &self,
        root_heap: u32,
        session: Option<&TenantSession>,
        cancel: CancelToken,
        f: F,
    ) -> Value
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        use std::sync::atomic::Ordering;
        // Install this thread as the pool's driver (worker 0) so forks
        // push onto a deque instead of spawning threads. If another
        // thread is mid-`run` and holds the slot, forks from this call
        // fall back to inline sequential execution — correct, just not
        // parallel.
        let _driver = self.executor.as_deref().and_then(Executor::install_driver);
        let dag = if self.config.record_dag {
            let (builder, root_strand) = DagBuilder::new();
            let arc = Arc::new(builder);
            *self.dag.lock() = Some(Arc::clone(&arc));
            Some((arc, root_strand))
        } else {
            None
        };
        let (dag_arc, strand) = match dag {
            Some((a, s)) => (Some(a), s),
            None => (None, StrandId(0)),
        };
        let ctx = match session {
            Some(s) => TaskCtx::resume(
                vec![root_heap],
                dag_arc,
                strand,
                self,
                Arc::clone(&s.roots),
                s.alloc_debt.load(Ordering::Relaxed),
                s.lgc_budget.load(Ordering::Relaxed),
                Some(cancel),
            ),
            None => TaskCtx::new(vec![root_heap], dag_arc, strand, self, Some(cancel)),
        };
        let mut m = Mutator::new(self, ctx);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut m)));
        if let Some(s) = session {
            // Carry the collection debt into the next request on this
            // session (even after a shed: the garbage is still there).
            s.alloc_debt.store(m.ctx.alloc_since, Ordering::Relaxed);
            s.lgc_budget.store(m.ctx.lgc_budget, Ordering::Relaxed);
        }
        m.finish_task();
        drop(m);
        // An anonymous run's root heap dies with the run: collect it now,
        // rooting only the escaping result value, so repeated runs (and
        // cancellation storms) don't strand their garbage forever.
        // Session heaps persist by design — their sessions' maintenance
        // collections own them.
        let result = if session.is_none() {
            match result {
                Ok(v) => Ok(self.reclaim_root_heap(root_heap, v)),
                Err(p) => {
                    let _ = self.reclaim_root_heap(root_heap, Value::Unit);
                    Err(p)
                }
            }
        } else {
            result
        };
        self.graveyard.drain(&self.store);
        if let Some(builder) = self.dag.lock().take() {
            match Arc::try_unwrap(builder) {
                Ok(builder) => *self.last_dag.lock() = Some(builder.finish()),
                // A panic can leave strands un-joined; the partial
                // recording is useless — drop it rather than poisoning
                // the next run.
                Err(_) => *self.last_dag.lock() = None,
            }
        }
        match result {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The end-of-run collection of an anonymous run's root heap: the
    /// returned value (if it is an object) is the only root, so exactly
    /// the escaping result graph survives — everything else the run
    /// allocated is reclaimed, and entangled leftovers are deferred to
    /// the concurrent collector's next cycle via the shield phase.
    /// Returns the (possibly moved) result value.
    fn reclaim_root_heap(&self, root_heap: u32, v: Value) -> Value {
        // A paused sliced CGC cycle holds object refs in its mark stack;
        // finish it before moving objects (same serialization force_lgc
        // performs).
        if self.config.cgc_slice_objects > 0 && self.cgc_state.cycle_active() {
            self.force_cgc();
        }
        let mut roots: Vec<ObjRef> = Vec::new();
        if let Value::Obj(r) = v {
            roots.push(r);
        }
        collect_local(
            &self.store,
            root_heap,
            &mut roots,
            &self.graveyard,
            self.config.policy.immediate_block_free,
        );
        match v {
            Value::Obj(_) => Value::Obj(roots[0]),
            other => other,
        }
    }

    /// Like [`Runtime::run`], but returns failures as a typed
    /// [`RunError`] value instead of unwinding:
    ///
    /// - [`RunError::Alloc`] — a heap-budget rejection
    ///   ([`RuntimeConfig::with_heap_limit`], a tenant budget) or an
    ///   injected `alloc/words` failure.
    /// - [`RunError::Cancelled`] — the run's cancel token tripped
    ///   (deadline, explicit [`Runtime::root_cancel`] cancel, watchdog
    ///   escalation) and the tree unwound at a poll point.
    /// - [`RunError::Panic`] — the closure panicked with an ordinary
    ///   string payload; the message is preserved. Exotic non-string
    ///   payloads are re-raised unchanged.
    ///
    /// The runtime remains fully usable after an `Err`: the failing
    /// task's [`Mutator`] drop already flushed its buffers and removed
    /// its root-stack registration, and joins re-raise the error only
    /// after the sibling branch parks, so no worker or registry entry
    /// leaks.
    pub fn try_run<F>(&self, f: F) -> Result<Value, RunError>
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        self.try_run_with(self.root_cancel.child(), None, f)
    }

    /// Like [`Runtime::try_run`], but the run's cancel token trips
    /// `deadline` from now (tightened by any ancestor deadline). A run
    /// that outlives the deadline unwinds at its next poll point —
    /// allocation, slow-tier barrier, fork — and comes back as
    /// [`RunError::Cancelled`] with [`CancelReason::Deadline`].
    pub fn try_run_deadline<F>(&self, deadline: Duration, f: F) -> Result<Value, RunError>
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        self.try_run_with(self.root_cancel.child_with_deadline(deadline), None, f)
    }

    /// The shared body of every `try_run*` variant: runs `f` under
    /// `token`, catches the unwind, and classifies the payload into a
    /// [`RunError`]. Cancellation outcomes close the
    /// cancellation-latency window (`cancel_unwind` histogram: token
    /// trip → run fully unwound) and bump the `cancel_unwound` counter.
    fn try_run_with<F>(
        &self,
        token: CancelToken,
        session: Option<&TenantSession>,
        f: F,
    ) -> Result<Value, RunError>
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match session {
            Some(s) => self.run_root(s.root_heap, Some(s), token.clone(), f),
            None => {
                let root_heap = self.store.new_root_heap();
                self.run_root(root_heap, None, token.clone(), f)
            }
        }));
        let payload = match run {
            Ok(v) => return Ok(v),
            Err(payload) => payload,
        };
        let payload = match payload.downcast::<crate::mutator::AllocError>() {
            Ok(e) => {
                note_alloc_error(&e);
                return Err(RunError::Alloc(*e));
            }
            Err(other) => other,
        };
        let payload = match payload.downcast::<Cancelled>() {
            Ok(c) => {
                self.store.stats().on_cancel_unwound();
                if let Some((_, trip_ns)) = token.trip_info() {
                    mpl_obs::record_duration(
                        mpl_obs::Metric::CancelUnwind,
                        mpl_obs::now_ns().saturating_sub(trip_ns),
                    );
                }
                // A sibling of the branch that actually hit the
                // allocation failure can reach the join first and
                // surface the escalated trip instead of the original
                // payload; fold both races into the same outcome so
                // callers see one deterministic error kind.
                return Err(match c.reason {
                    CancelReason::Alloc(e) => {
                        note_alloc_error(&e);
                        RunError::Alloc(e)
                    }
                    reason => RunError::Cancelled(Cancelled { reason }),
                });
            }
            Err(other) => other,
        };
        let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
            Some((*s).to_string())
        } else {
            payload.downcast_ref::<String>().cloned()
        };
        match msg {
            Some(msg) => Err(RunError::Panic(msg)),
            None => std::panic::resume_unwind(payload),
        }
    }

    /// The computation DAG recorded by the most recent `run` (if
    /// `record_dag` was set).
    pub fn take_dag(&self) -> Option<Dag> {
        self.last_dag.lock().take()
    }

    // ---- persistent tenant sessions ------------------------------------

    /// Creates a persistent tenant session: a dedicated root heap with a
    /// [`TenantBudget`] of `budget_bytes` attached (`0` = unlimited,
    /// accounting only), and a root stack that outlives individual
    /// [`Runtime::run_session`] calls. The budget is inherited by every
    /// heap forked under the session's root, so the tenant's whole
    /// request DAGs are accounted against it.
    pub fn new_tenant(&self, name: &str, budget_bytes: usize) -> TenantSession {
        let root_heap = self.store.new_root_heap();
        let budget = TenantBudget::new(name, budget_bytes);
        self.store.set_heap_budget(root_heap, Arc::clone(&budget));
        let roots = Arc::new(RootStack::new());
        // Registered for the session's lifetime: objects rooted in one
        // request stay CGC roots until `retire_session`.
        self.register_roots(&roots);
        TenantSession {
            root_heap,
            roots,
            budget: Some(budget),
            alloc_debt: std::sync::atomic::AtomicUsize::new(0),
            lgc_budget: std::sync::atomic::AtomicUsize::new(self.config.policy.lgc_trigger_bytes),
        }
    }

    /// Runs one request on a tenant session. Like [`Runtime::run`], but
    /// the root task executes on the session's persistent root heap and
    /// root stack: handles rooted in earlier requests resolve, objects
    /// they reference survive collections, and the session's carried
    /// collection debt keeps the root heap's LGC firing across requests.
    ///
    /// Requests on the *same* session must not run concurrently (the
    /// root stack is single-owner); different sessions are independent.
    pub fn run_session<F>(&self, session: &TenantSession, f: F) -> Value
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        self.run_root(
            session.root_heap,
            Some(session),
            self.root_cancel.child(),
            f,
        )
    }

    /// Like [`Runtime::run_session`], but returns failures as a typed
    /// [`RunError`] — the admission-control path a serving layer sheds
    /// requests on ([`RunError::Alloc`]: tenant budget exhausted,
    /// global limit hit, or an injected allocation fault) and the
    /// timeout path it bounds request latency with
    /// ([`RunError::Cancelled`]). The session remains usable
    /// afterwards.
    pub fn try_run_session<F>(&self, session: &TenantSession, f: F) -> Result<Value, RunError>
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        self.try_run_with(self.root_cancel.child(), Some(session), f)
    }

    /// Like [`Runtime::try_run_session`], but the request's cancel
    /// token trips `deadline` from now — the per-request timeout a
    /// serving layer puts on tenant work. A request that outlives the
    /// deadline unwinds at its next poll point with the session's heap
    /// coherent and its carried collection debt intact.
    pub fn try_run_session_deadline<F>(
        &self,
        session: &TenantSession,
        deadline: Duration,
        f: F,
    ) -> Result<Value, RunError>
    where
        F: FnOnce(&mut Mutator<'_>) -> Value,
    {
        self.try_run_with(
            self.root_cancel.child_with_deadline(deadline),
            Some(session),
            f,
        )
    }

    /// Retires a tenant session: deregisters its persistent root stack,
    /// letting the concurrent collector reclaim everything only the
    /// session kept alive. The session's heaps remain valid (heap ids
    /// are never reused) but nothing roots them anymore.
    pub fn retire_session(&self, session: &TenantSession) {
        self.unregister_roots(&session.roots);
    }

    /// Number of root stacks currently registered with the concurrent
    /// collector (live tasks + persistent sessions). Diagnostics: a
    /// completed request must leave exactly the persistent sessions.
    pub fn live_root_stacks(&self) -> usize {
        self.roots.lock().len()
    }

    /// Number of branch results currently parked for the concurrent
    /// collector. Diagnostics: zero between requests — a leak here keeps
    /// dead objects alive forever.
    pub fn parked_results(&self) -> usize {
        self.pending.lock().iter().flatten().count()
    }

    // ---- task-root registry (CGC root set) -----------------------------

    pub(crate) fn register_roots(&self, s: &Arc<RootStack>) {
        self.roots.lock().push(Arc::clone(s));
    }

    pub(crate) fn unregister_roots(&self, s: &Arc<RootStack>) {
        let mut roots = self.roots.lock();
        if let Some(pos) = roots.iter().position(|x| Arc::ptr_eq(x, s)) {
            roots.swap_remove(pos);
        }
    }

    /// Parks a branch result so the concurrent collector sees it between a
    /// branch's completion and the parent's join. Returns a slot index.
    pub(crate) fn park_result(&self, v: Value) -> Option<usize> {
        let r = v.as_obj()?;
        let mut pending = self.pending.lock();
        if let Some(idx) = pending.iter().position(|p| p.is_none()) {
            pending[idx] = Some(r);
            Some(idx)
        } else {
            pending.push(Some(r));
            Some(pending.len() - 1)
        }
    }

    pub(crate) fn unpark_result(&self, idx: Option<usize>) {
        if let Some(idx) = idx {
            self.pending.lock()[idx] = None;
        }
    }

    /// The concurrent collector's root set, packetized: one `ScanRoots`
    /// packet per registered task stack (parked branch results ride as
    /// one more), seeding the collector's grey queue so root scanning
    /// itself fans out across workers.
    ///
    /// Lock-free with respect to the mutators: each stack is snapshot by
    /// atomic slot reads ([`RootStack::extend_snapshot`]) while its owner
    /// keeps pushing — only the small registry mutex is held. A stale
    /// beyond-`len` slot resolves safely because retired blocks are
    /// graveyard-held until quiescence. Invoked by the collector *after*
    /// the snapshot handshake, which is what makes the per-stack
    /// snapshots sound against a mutator moving a value between a shared
    /// slot and its own stack at the snapshot boundary: post-handshake,
    /// every mutator's SATB logging is observably on, so any value that
    /// leaves a scanned location is logged.
    pub(crate) fn cgc_root_packets(&self) -> Vec<Vec<ObjRef>> {
        let mut packets: Vec<Vec<ObjRef>> = Vec::new();
        for s in self.roots.lock().iter() {
            let mut p = Vec::new();
            s.extend_snapshot(&mut p);
            if !p.is_empty() {
                packets.push(p);
            }
        }
        let pending: Vec<ObjRef> = self.pending.lock().iter().flatten().copied().collect();
        if !pending.is_empty() {
            packets.push(pending);
        }
        packets
    }

    /// Requests a CGC eligibility check at the caller's next safepoint.
    ///
    /// The pin path calls this: pinned-footprint growth happens on *reads*,
    /// which are not safepoints (callers may hold unrooted values across
    /// them), so the collection itself must wait for the next allocation
    /// or fork/join.
    pub(crate) fn request_cgc_poll(&self) {
        self.cgc_poll
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// True if some task pinned since the last CGC eligibility check.
    pub(crate) fn cgc_poll_requested(&self) -> bool {
        self.cgc_poll.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs (or, with `cgc_slice_objects`, advances) the concurrent
    /// collector if the pinned footprint warrants it and no other
    /// collection is in flight.
    pub(crate) fn maybe_cgc(&self) {
        use std::sync::atomic::Ordering;
        self.cgc_poll.store(false, Ordering::Relaxed);
        let slice = self.config.cgc_slice_objects;

        // The collector's trace/sweep packets run as scheduler jobs; a
        // worker that help-steals a *mutator* job while driving packets
        // can reach this safepoint re-entrantly. A nested collection on
        // the same thread would self-deadlock on `cgc_gate`, so bail.
        if IN_GC.with(|g| g.get()) {
            return;
        }

        // An in-flight incremental cycle is advanced regardless of the
        // trigger: the snapshot is already taken.
        if slice > 0 && self.cgc_state.cycle_active() {
            if let Some(_gate) = self.cgc_gate.try_lock() {
                let _reent = InGcGuard::enter();
                let start = std::time::Instant::now();
                let span = mpl_obs::span_start();
                let done = mpl_gc::cgc_step(&self.store, &self.cgc_state, slice);
                self.store
                    .stats()
                    .on_cgc_pause(start.elapsed().as_nanos() as u64);
                // `on_cgc_pause` fed the histogram; timeline entry only.
                mpl_obs::span_only(mpl_obs::Metric::CgcPause, span);
                if done.is_some() {
                    self.cgc_baseline
                        .store(self.stats().pinned_bytes, Ordering::Relaxed);
                }
            }
            return;
        }

        let pinned = self.stats().pinned_bytes;
        if !self.config.policy.should_cgc(pinned) {
            return;
        }
        // Amortize: a full cycle marks the live graph, so only collect
        // once the pinned footprint doubled since the last cycle.
        let baseline = self.cgc_baseline.load(Ordering::Relaxed);
        if pinned < baseline.saturating_mul(2) {
            return;
        }
        if let Some(_gate) = self.cgc_gate.try_lock() {
            let _reent = InGcGuard::enter();
            // Trace/sweep packets fan out via `try_join`, which needs a
            // worker context; a runtime-less caller (tests, embedders)
            // installs itself as the pool driver for the cycle.
            let _driver = (!mpl_sched::on_worker_thread())
                .then(|| self.executor.as_deref().and_then(Executor::install_driver))
                .flatten();
            let start = std::time::Instant::now();
            let span = mpl_obs::span_start();
            if slice > 0 {
                // Begin the sliced cycle: handshake, then snapshot roots.
                mpl_gc::cgc_begin(&self.store, &self.cgc_state, || self.cgc_root_packets());
                if mpl_gc::cgc_step(&self.store, &self.cgc_state, slice).is_some() {
                    self.cgc_baseline
                        .store(self.stats().pinned_bytes, Ordering::Relaxed);
                }
            } else {
                mpl_gc::collect_entangled(&self.store, &self.cgc_state, || self.cgc_root_packets());
                self.cgc_baseline
                    .store(self.stats().pinned_bytes, Ordering::Relaxed);
            }
            self.store
                .stats()
                .on_cgc_pause(start.elapsed().as_nanos() as u64);
            mpl_obs::span_only(mpl_obs::Metric::CgcPause, span);
        }
    }

    /// Validates the whole heap: panics with a report if any reachable
    /// pointer field dangles (tests and debugging).
    pub fn assert_heap_sound(&self) {
        mpl_gc::assert_heap_sound(&self.store);
    }

    /// Takes a structured snapshot of the heap hierarchy (debugging and
    /// operational visibility).
    pub fn heap_report(&self) -> mpl_heap::StoreReport {
        mpl_heap::report(&self.store)
    }

    /// Takes an on-demand heap census: a lock-free walk over the block
    /// registry's side metadata (obj-start/mark/line bitmaps and the
    /// per-block gauges) rolled up into per-size-class occupancy and
    /// fragmentation, per-tenant live-bytes attribution, and an
    /// aggregation of the sampled entanglement-provenance ring. Safe to
    /// call while mutators run — each block's rows are individually
    /// consistent but the whole is a racing snapshot, so totals can drift
    /// from the live-bytes gauge by in-flight allocation; on a quiescent
    /// runtime they agree exactly (the census proptest pins this down).
    /// Works with telemetry disabled; only the provenance section needs
    /// [`RuntimeConfig::telemetry`] to have samples in it.
    pub fn heap_census(&self) -> mpl_obs::HeapCensus {
        self.store.census()
    }

    /// Forces a concurrent collection (tests and experiments).
    pub fn force_cgc(&self) {
        // Re-entrant force from a help-stolen mutator job on the
        // collecting thread: the blocking gate below would self-deadlock.
        // The outer collection is already reclaiming; returning is the
        // same outcome the caller would see racing any other collector.
        if IN_GC.with(|g| g.get()) {
            return;
        }
        let _gate = self.cgc_gate.lock();
        let _reent = InGcGuard::enter();
        let _driver = (!mpl_sched::on_worker_thread())
            .then(|| self.executor.as_deref().and_then(Executor::install_driver))
            .flatten();
        let start = std::time::Instant::now();
        let span = mpl_obs::span_start();
        if self.cgc_state.cycle_active() {
            // Finish the in-flight sliced cycle.
            while mpl_gc::cgc_step(&self.store, &self.cgc_state, usize::MAX).is_none() {}
        } else {
            mpl_gc::collect_entangled(&self.store, &self.cgc_state, || self.cgc_root_packets());
        }
        self.store
            .stats()
            .on_cgc_pause(start.elapsed().as_nanos() as u64);
        mpl_obs::span_only(mpl_obs::Metric::CgcPause, span);
    }

    /// The sampler's retained gauge history (empty unless
    /// [`RuntimeConfig::telemetry`] is set).
    pub fn telemetry_samples(&self) -> Vec<mpl_obs::Sample> {
        self.sampler
            .as_ref()
            .map(mpl_obs::Sampler::samples)
            .unwrap_or_default()
    }

    /// Renders both telemetry exporter documents: the Chrome trace-event
    /// JSON timeline (spans + sampler counter tracks) and the Prometheus
    /// text-format document (runtime counters/gauges + pause/latency
    /// histograms). Histograms and spans are process-global — under
    /// multiple concurrently-telemetered runtimes the report covers all
    /// of them; counters and sampler gauges are this runtime's own.
    pub fn telemetry_report(&self) -> TelemetryReport {
        let samples = self.telemetry_samples();
        let spans = mpl_obs::snapshot_spans();
        let stats = self.stats();
        let census = self.heap_census();
        TelemetryReport {
            chrome_trace: mpl_obs::chrome_trace(&spans, &samples),
            prometheus: build_prometheus(&stats, samples.last(), Some(&census)),
            json: build_json(
                &stats,
                &samples,
                Some(&census),
                self.config.sampler_interval_ns,
            ),
        }
    }
}

/// Flight-recorder hook for a surfaced [`AllocError`]: records the event
/// and dumps the ring. An `AllocError` reaching `try_run` is an
/// admission-control outcome (a serving layer sheds on it constantly),
/// so both calls are no-ops with telemetry disabled and the dump count
/// is bounded per process (`mpl_obs::dump_flight`).
fn note_alloc_error(e: &crate::mutator::AllocError) {
    mpl_obs::flight_record(
        mpl_obs::FlightKind::Event,
        mpl_obs::EV_ALLOC_ERROR,
        e.requested as u64,
        e.limit as u64,
    );
    if let Some(path) = mpl_obs::dump_flight("alloc-error") {
        eprintln!("mpl-runtime: flight recorder dumped to {}", path.display());
    }
}

/// The GC stall watchdog thread: polls the process-global GC phase clock
/// ([`mpl_gc::stall`]) and, when a phase has been in flight longer than
/// the configured deadline, flags it on stderr and dumps the audit event
/// rings plus a Prometheus counter snapshot — the post-mortem a hung
/// chaos run would otherwise take to the grave.
#[derive(Debug)]
struct Watchdog {
    stop: Arc<std::sync::atomic::AtomicBool>,
    /// Stalls this runtime's watchdog flagged (one per stalled phase,
    /// like the process-global `mpl_gc::stall::reports()` — but scoped
    /// to this runtime so tests and operators can attribute a report).
    reports: Arc<std::sync::atomic::AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn stop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn spawn_watchdog(store: &Store, config: RuntimeConfig, cancel: Option<CancelToken>) -> Watchdog {
    let deadline_ns = config.gc_stall_deadline_ns;
    let stats = store.stats_shared();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let reports = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let reports2 = Arc::clone(&reports);
    // Poll a few times per deadline; clamp so a tiny deadline doesn't
    // spin and a huge one still notices `stop` promptly.
    let tick = Duration::from_nanos((deadline_ns / 4).clamp(1_000_000, 100_000_000));
    let handle = std::thread::Builder::new()
        .name("mpl-gc-watchdog".into())
        .spawn(move || {
            // Re-arm only after the flagged phase completes, so one stall
            // produces one report instead of one per tick.
            let mut flagged = false;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(tick);
                match mpl_gc::stall::current() {
                    Some((phase, age_ns)) if age_ns > deadline_ns => {
                        if !flagged {
                            flagged = true;
                            mpl_gc::stall::note_report();
                            reports2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            // Opt-in escalation: a stalled collector
                            // means in-flight runs are likely wedged
                            // behind it — trip the runtime root so
                            // every run unwinds at its next poll point
                            // instead of hanging forever.
                            if let Some(token) = &cancel {
                                token.trip_watchdog();
                            }
                            eprintln!(
                                "mpl-gc-watchdog: phase '{phase}' in flight for {:.3}s \
                                 (deadline {:.3}s); dumping audit rings + telemetry",
                                age_ns as f64 / 1e9,
                                deadline_ns as f64 / 1e9,
                            );
                            mpl_gc::audit::dump_events();
                            let mut snap = stats.snapshot();
                            snap.failpoint_fires = mpl_fail::fires();
                            eprintln!("{}", build_prometheus(&snap, None, None));
                            // Post-mortem artifacts behind the same
                            // stderr report: a stall event in the flight
                            // ring, the ring as a binary dump, and a
                            // Chrome-trace snapshot of recent spans. All
                            // no-ops with telemetry disabled, and dumps
                            // are bounded per process (`dump_flight`).
                            mpl_obs::flight_record(
                                mpl_obs::FlightKind::Event,
                                mpl_obs::EV_WATCHDOG_STALL,
                                age_ns,
                                deadline_ns,
                            );
                            if let Some(path) = mpl_obs::dump_flight("watchdog-stall") {
                                eprintln!(
                                    "mpl-gc-watchdog: flight recorder dumped to {}",
                                    path.display()
                                );
                                let trace = mpl_obs::chrome_trace(&mpl_obs::snapshot_spans(), &[]);
                                let trace_path = path.with_extension("trace.json");
                                match std::fs::write(&trace_path, trace) {
                                    Ok(()) => eprintln!(
                                        "mpl-gc-watchdog: chrome trace written to {}",
                                        trace_path.display()
                                    ),
                                    Err(e) => {
                                        eprintln!("mpl-gc-watchdog: chrome trace write failed: {e}")
                                    }
                                }
                            }
                        }
                    }
                    _ => flagged = false,
                }
            }
        })
        .expect("spawn mpl-gc-watchdog");
    Watchdog {
        stop,
        reports,
        handle: Some(handle),
    }
}

/// Spawns the telemetry sampler: every tick (the configured
/// [`RuntimeConfig::sampler_interval_ns`]) diffs the runtime counters
/// (`StatsSnapshot::delta`) into allocation rates and combines the
/// scheduler's park counter with [`mpl_sched::PARK_INTERVAL`] into a
/// worker-utilization estimate (time not spent parked).
fn spawn_sampler(
    store: &Store,
    executor: Option<Arc<Executor>>,
    threads: usize,
    interval: Duration,
) -> mpl_obs::Sampler {
    let stats = store.stats_shared();
    let mut prev = stats.snapshot();
    let mut prev_parks = executor.as_deref().map(|e| e.stats().parks).unwrap_or(0);
    mpl_obs::Sampler::spawn(interval, move |dt| {
        let cur = stats.snapshot();
        let d = cur.delta(&prev);
        prev = cur;
        let parks = executor.as_deref().map(|e| e.stats().parks).unwrap_or(0);
        let parked_intervals = parks.saturating_sub(prev_parks);
        prev_parks = parks;
        let secs = dt.as_secs_f64().max(1e-9);
        // Parks are fixed-length sleeps, so parked time ≈ count × interval;
        // utilization is the busy remainder across the pool. With no pool
        // (sequential execution) the single mutator thread counts as busy.
        let parked_secs = parked_intervals as f64 * mpl_sched::PARK_INTERVAL.as_secs_f64();
        let utilization = (1.0 - parked_secs / (threads as f64 * secs)).clamp(0.0, 1.0);
        mpl_obs::Sample {
            t_ns: mpl_obs::now_ns(),
            alloc_bytes_per_s: d.alloc_bytes as f64 / secs,
            allocs_per_s: d.allocs as f64 / secs,
            live_bytes: d.live_bytes as u64,
            pinned_bytes: d.pinned_bytes as u64,
            worker_utilization: utilization,
        }
    })
}

/// Assembles the Prometheus document: every `StatsSnapshot` counter and
/// gauge under the `mpl_` prefix, the duration histograms from the
/// telemetry registry, and the latest sampler rates.
fn build_prometheus(
    s: &StatsSnapshot,
    last_sample: Option<&mpl_obs::Sample>,
    census: Option<&mpl_obs::HeapCensus>,
) -> String {
    let mut w = mpl_obs::PromWriter::new();
    for (name, help, v) in [
        ("mpl_allocs_total", "Objects allocated", s.allocs),
        ("mpl_alloc_bytes_total", "Bytes allocated", s.alloc_bytes),
        (
            "mpl_barrier_reads_total",
            "Barriered mutable reads",
            s.barrier_reads,
        ),
        (
            "mpl_barrier_writes_total",
            "Barriered mutable writes",
            s.barrier_writes,
        ),
        (
            "mpl_barrier_read_fast_total",
            "Reads completed on the fast tier",
            s.barrier_read_fast,
        ),
        (
            "mpl_barrier_read_slow_total",
            "Reads that entered the slow tier",
            s.barrier_read_slow,
        ),
        (
            "mpl_barrier_write_fast_total",
            "Writes completed on the fast tier",
            s.barrier_write_fast,
        ),
        (
            "mpl_barrier_write_slow_total",
            "Writes that entered the slow tier",
            s.barrier_write_slow,
        ),
        (
            "mpl_entangled_reads_total",
            "Entangled reads (remote objects pinned)",
            s.entangled_reads,
        ),
        (
            "mpl_entangled_writes_total",
            "Entangled writes",
            s.entangled_writes,
        ),
        ("mpl_pins_total", "Objects pinned", s.pins),
        ("mpl_unpins_total", "Objects unpinned", s.unpins),
        (
            "mpl_remset_inserts_total",
            "Remembered-set insertions",
            s.remset_inserts,
        ),
        (
            "mpl_remset_flushes_total",
            "Remembered-set buffer flushes",
            s.remset_flushes,
        ),
        ("mpl_lgc_runs_total", "Local collections", s.lgc_runs),
        (
            "mpl_lgc_copied_bytes_total",
            "Bytes evacuated by local collections",
            s.lgc_copied_bytes,
        ),
        (
            "mpl_lgc_reclaimed_bytes_total",
            "Bytes reclaimed by local collections",
            s.lgc_reclaimed_bytes,
        ),
        ("mpl_cgc_runs_total", "Concurrent collections", s.cgc_runs),
        (
            "mpl_cgc_swept_bytes_total",
            "Bytes swept by concurrent collections",
            s.cgc_swept_bytes,
        ),
        (
            "mpl_cgc_packets_total",
            "CGC work packets executed on scheduler workers",
            s.cgc_packets,
        ),
        (
            "mpl_cgc_packet_retries_total",
            "CGC packets re-enqueued after an injected or real panic",
            s.cgc_packet_retries,
        ),
        (
            "mpl_blocks_allocated_total",
            "Size-class blocks handed out by the registry",
            s.blocks_allocated,
        ),
        (
            "mpl_blocks_freed_total",
            "Blocks returned to the registry (LGC, CGC, joins)",
            s.blocks_freed,
        ),
        (
            "mpl_lines_swept_total",
            "Lines reclaimed by line-mark sweeps",
            s.lines_swept,
        ),
        (
            "mpl_lgc_dead_traced_total",
            "Corruption canary: traces reaching dead objects",
            s.lgc_dead_traced,
        ),
        (
            "mpl_sched_pushes_total",
            "Jobs pushed to worker deques",
            s.sched_pushes,
        ),
        (
            "mpl_sched_steals_total",
            "Successful steals",
            s.sched_steals,
        ),
        (
            "mpl_sched_sequentialized_total",
            "Forks resolved inline (popped back)",
            s.sched_sequentialized,
        ),
        (
            "mpl_sched_parks_total",
            "Worker park intervals",
            s.sched_parks,
        ),
        (
            "mpl_gc_forced_by_pressure_total",
            "Collections forced by the heap budget",
            s.gc_forced_by_pressure,
        ),
        (
            "mpl_alloc_retries_total",
            "Allocation retries after a forced collection",
            s.alloc_retries,
        ),
        (
            "mpl_alloc_failures_total",
            "Allocations rejected (budget exhausted or injected)",
            s.alloc_failures,
        ),
        (
            "mpl_failpoint_fires_total",
            "Fault-injection failpoint fires (process-global)",
            s.failpoint_fires,
        ),
        (
            "mpl_cancel_requested_total",
            "Tasks that observed a cancel-token trip and began unwinding",
            s.cancel_requested,
        ),
        (
            "mpl_cancel_unwound_total",
            "Runs that fully unwound as cancelled",
            s.cancel_unwound,
        ),
        (
            "mpl_requests_timed_out_total",
            "Serve requests that exhausted their deadline",
            s.requests_timed_out,
        ),
        (
            "mpl_request_retries_total",
            "Serve request retry attempts after a timeout",
            s.request_retries,
        ),
        (
            "mpl_breaker_open_total",
            "Per-tenant circuit-breaker open transitions",
            s.breaker_open,
        ),
    ] {
        w.counter(name, help, v);
    }
    w.gauge("mpl_live_bytes", "Live bytes", s.live_bytes as f64);
    w.gauge(
        "mpl_max_live_bytes",
        "Live-bytes high-water mark",
        s.max_live_bytes as f64,
    );
    w.gauge(
        "mpl_pinned_bytes",
        "Pinned (entangled) bytes",
        s.pinned_bytes as f64,
    );
    w.gauge(
        "mpl_max_pinned_bytes",
        "Pinned-bytes high-water mark",
        s.max_pinned_bytes as f64,
    );
    if let Some(sample) = last_sample {
        w.gauge(
            "mpl_alloc_bytes_per_second",
            "Allocation rate over the last sampler interval",
            sample.alloc_bytes_per_s,
        );
        w.gauge(
            "mpl_worker_utilization",
            "Estimated fraction of worker time spent running jobs",
            sample.worker_utilization,
        );
    }
    if let Some(census) = census {
        census.write_prometheus(&mut w);
    }
    for (metric, snap) in mpl_obs::metric_snapshots() {
        w.histogram_ns_as_seconds(
            &format!("mpl_{}_seconds", metric.name()),
            metric.help(),
            &snap,
        );
    }
    w.finish()
}

/// Assembles the machine-readable JSON telemetry document: counters,
/// gauges, per-metric histogram percentile summaries (nanoseconds), and
/// the sampler's gauge series. Consumed by the E12 SLO reporter and CI
/// assertions (live-bytes slope, pause percentiles) instead of scraping
/// the Prometheus text.
fn build_json(
    s: &StatsSnapshot,
    samples: &[mpl_obs::Sample],
    census: Option<&mpl_obs::HeapCensus>,
    sampler_interval_ns: u64,
) -> String {
    let mut w = mpl_obs::JsonWriter::new();
    w.begin_object();
    w.field_u64("sampler_interval_ns", sampler_interval_ns);
    w.key("counters").begin_object();
    for (name, v) in [
        ("allocs", s.allocs),
        ("alloc_bytes", s.alloc_bytes),
        ("barrier_reads", s.barrier_reads),
        ("barrier_writes", s.barrier_writes),
        ("barrier_read_fast", s.barrier_read_fast),
        ("barrier_read_slow", s.barrier_read_slow),
        ("barrier_write_fast", s.barrier_write_fast),
        ("barrier_write_slow", s.barrier_write_slow),
        ("entangled_reads", s.entangled_reads),
        ("entangled_writes", s.entangled_writes),
        ("pins", s.pins),
        ("unpins", s.unpins),
        ("remset_inserts", s.remset_inserts),
        ("remset_flushes", s.remset_flushes),
        ("lgc_runs", s.lgc_runs),
        ("lgc_copied_bytes", s.lgc_copied_bytes),
        ("lgc_reclaimed_bytes", s.lgc_reclaimed_bytes),
        ("cgc_runs", s.cgc_runs),
        ("cgc_swept_bytes", s.cgc_swept_bytes),
        ("cgc_packets", s.cgc_packets),
        ("cgc_packet_retries", s.cgc_packet_retries),
        ("blocks_allocated", s.blocks_allocated),
        ("blocks_freed", s.blocks_freed),
        ("lines_swept", s.lines_swept),
        ("lgc_dead_traced", s.lgc_dead_traced),
        ("sched_pushes", s.sched_pushes),
        ("sched_steals", s.sched_steals),
        ("sched_sequentialized", s.sched_sequentialized),
        ("sched_parks", s.sched_parks),
        ("gc_forced_by_pressure", s.gc_forced_by_pressure),
        ("alloc_retries", s.alloc_retries),
        ("alloc_failures", s.alloc_failures),
        ("failpoint_fires", s.failpoint_fires),
        ("audit_runs", s.audit_runs),
        ("audit_objects_checked", s.audit_objects_checked),
        ("cancel_requested", s.cancel_requested),
        ("cancel_unwound", s.cancel_unwound),
        ("requests_timed_out", s.requests_timed_out),
        ("request_retries", s.request_retries),
        ("breaker_open", s.breaker_open),
    ] {
        w.field_u64(name, v);
    }
    w.end_object();
    w.key("gauges").begin_object();
    w.field_u64("live_bytes", s.live_bytes as u64);
    w.field_u64("max_live_bytes", s.max_live_bytes as u64);
    w.field_u64("pinned_bytes", s.pinned_bytes as u64);
    w.field_u64("max_pinned_bytes", s.max_pinned_bytes as u64);
    w.end_object();
    w.key("histograms_ns").begin_object();
    for (metric, snap) in mpl_obs::metric_snapshots() {
        w.key(metric.name()).begin_object();
        w.field_u64("count", snap.count);
        w.field_u64("p50", snap.percentile(0.50));
        w.field_u64("p90", snap.percentile(0.90));
        w.field_u64("p99", snap.percentile(0.99));
        w.field_u64("p999", snap.percentile(0.999));
        w.field_u64("max", snap.max);
        w.field_f64("mean", snap.mean());
        w.end_object();
    }
    w.end_object();
    if let Some(census) = census {
        // Rendered by the census itself; spliced in verbatim so the
        // schema stays owned by one place (`HeapCensus::to_json`).
        w.key("census").value_raw(&census.to_json());
    }
    w.key("samples").begin_array();
    for sample in samples {
        w.begin_object();
        w.field_u64("t_ns", sample.t_ns);
        w.field_u64("live_bytes", sample.live_bytes);
        w.field_u64("pinned_bytes", sample.pinned_bytes);
        w.field_f64("alloc_bytes_per_s", sample.alloc_bytes_per_s);
        w.field_f64("worker_utilization", sample.worker_utilization);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if let Some(watchdog) = &mut self.watchdog {
            watchdog.stop();
        }
        if let Some(owner) = self.failpoint_owner {
            // Remove this runtime's slots; env-installed failpoints (a
            // different owner) stay armed for the process lifetime.
            mpl_fail::uninstall(owner);
        }
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        if self.config.telemetry {
            // Balance the `enable` in `Runtime::new` (refcounted
            // process-wide, like auditing).
            mpl_obs::disable();
        }
        if self.config.audit {
            // Balance the `enable` in `Runtime::new`: auditing is
            // refcounted process-wide so concurrently-live audited
            // runtimes (the parallel test harness) compose.
            mpl_gc::audit::disable();
        }
    }
}
