//! Cooperative cancellation: hierarchical tokens, deadlines, and the
//! typed run-outcome error.
//!
//! A [`CancelToken`] is a small shared cell that a task tree polls at
//! points it already visits for other reasons (every allocation, both
//! barrier slow tiers, fork entry — the same sites that ack SATB
//! handshakes), so the disabled cost is one relaxed load on paths that
//! already load an atomic. Tokens form a tree: a child inherits its
//! parent's trip state and the tighter of the two deadlines, so
//! cancelling a runtime's root token cancels every run in flight, while
//! a per-request deadline token cancels only that request's DAG.
//!
//! Tripping is first-writer-wins: exactly one trip records the trip
//! timestamp (the start of the cancellation-latency window) and fires
//! the *kick* — a callback the runtime uses to unpark sleeping
//! scheduler workers so a parked pool notices the trip in microseconds
//! instead of a full park interval.
//!
//! Cancellation *delivery* is an ordinary unwind: the polling task
//! raises a [`Cancelled`] payload with `panic_any`, which rides the
//! exact path an [`AllocError`] already takes through fork/join —
//! heaps merge, pins release, SATB shards drain, remset buffers flush,
//! budgets credit — so the heap is coherent when `Runtime::try_run*`
//! catches the payload and returns [`RunError::Cancelled`].

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::mutator::AllocError;

/// No deadline: the sentinel value of `effective_deadline_ns`.
const NO_DEADLINE: u64 = u64::MAX;

// Trip reason codes stored in `Inner::state` (0 = live).
const CODE_EXPLICIT: u32 = 1;
const CODE_DEADLINE: u32 = 2;
const CODE_WATCHDOG: u32 = 3;
const CODE_ALLOC: u32 = 4;

/// Why a [`CancelToken`] tripped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (on this token or an ancestor).
    Explicit,
    /// The token's deadline (or an ancestor's) expired.
    Deadline,
    /// The runtime's GC stall watchdog fired with
    /// `RuntimeConfig::with_watchdog_cancels` enabled.
    Watchdog,
    /// An `AllocError` in one branch escalated to cancel its siblings,
    /// so the whole run fails fast instead of computing doomed work.
    Alloc(AllocError),
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Explicit => write!(f, "explicit cancel"),
            CancelReason::Deadline => write!(f, "deadline expired"),
            CancelReason::Watchdog => write!(f, "gc stall watchdog"),
            CancelReason::Alloc(e) => write!(f, "alloc-error escalation ({e})"),
        }
    }
}

/// The cancellation unwind payload (and the value inside
/// [`RunError::Cancelled`]). Raised with `std::panic::panic_any` at a
/// poll point; rides the fork/join panic path and is caught by
/// `Runtime::try_run*`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the task tree was cancelled.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cancelled: {}", self.reason)
    }
}

impl Error for Cancelled {}

/// Typed outcome of a failed `Runtime::try_run*` call. Callers (and
/// `mpl-serve`'s shed accounting) can now tell a budget shed from a
/// timeout from a crash instead of conflating all three.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The run exceeded a heap/tenant budget and surfaced a recoverable
    /// allocation failure. The session/heap is intact.
    Alloc(AllocError),
    /// The run was cancelled (deadline, explicit, watchdog, or
    /// alloc-escalation — see [`CancelReason`]). The heap is coherent;
    /// effects the cancelled tree published before its trip remain.
    Cancelled(Cancelled),
    /// The closure panicked with an unrecognized payload. The panic
    /// message (or a placeholder for non-string payloads) is preserved.
    Panic(String),
}

impl RunError {
    /// The `AllocError`, if this outcome is (or escalated from) one.
    /// Cancellations caused by a sibling's allocation failure report the
    /// originating error here too.
    pub fn alloc_error(&self) -> Option<&AllocError> {
        match self {
            RunError::Alloc(e) => Some(e),
            RunError::Cancelled(Cancelled {
                reason: CancelReason::Alloc(e),
            }) => Some(e),
            _ => None,
        }
    }

    /// True for cancellation outcomes (any [`CancelReason`]).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, RunError::Cancelled(_))
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Alloc(e) => write!(f, "{e}"),
            RunError::Cancelled(c) => write!(f, "{c}"),
            RunError::Panic(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

impl Error for RunError {}

impl From<AllocError> for RunError {
    fn from(e: AllocError) -> RunError {
        RunError::Alloc(e)
    }
}

/// Shared trip cell. `state` is the whole protocol: 0 = live, else a
/// reason code written once by the winning trip (release; readers
/// acquire so the `alloc` payload and `trip_ns` are visible).
struct Inner {
    state: AtomicU32,
    /// Tightest deadline on the path to the root (ns on the
    /// `mpl_obs::now_ns` clock); immutable after construction because
    /// ancestors' deadlines are too. [`NO_DEADLINE`] when none.
    effective_deadline_ns: u64,
    /// `now_ns` at the winning trip (0 until tripped).
    trip_ns: AtomicU64,
    parent: Option<Arc<Inner>>,
    /// Escalated allocation error, set before the state CAS by the trip
    /// that carries one.
    alloc: OnceLock<AllocError>,
    /// Fired once by the winning trip: the runtime installs "unpark all
    /// scheduler workers" here. Inherited by children.
    kick: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Inner {
    fn reason_of(&self, code: u32) -> CancelReason {
        match code {
            CODE_EXPLICIT => CancelReason::Explicit,
            CODE_DEADLINE => CancelReason::Deadline,
            CODE_WATCHDOG => CancelReason::Watchdog,
            _ => CancelReason::Alloc(self.alloc.get().cloned().unwrap_or(AllocError {
                requested: 0,
                limit: 0,
                live_bytes: 0,
            })),
        }
    }

    /// First-writer-wins trip. Returns true iff this call won; the
    /// winner stamps `trip_ns` and fires the kick.
    fn trip(&self, code: u32, alloc: Option<AllocError>) -> bool {
        if let Some(e) = alloc {
            let _ = self.alloc.set(e);
        }
        let won = self
            .state
            .compare_exchange(0, code, Ordering::Release, Ordering::Acquire)
            .is_ok();
        if won {
            self.trip_ns.store(mpl_obs::now_ns(), Ordering::Release);
            if let Some(kick) = &self.kick {
                kick();
            }
        }
        won
    }
}

/// A hierarchical cooperative-cancellation token. Cheap to clone (one
/// `Arc`); cheap to poll (one relaxed load when live and deadline-free).
/// See the module docs for the protocol.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field(
                "deadline",
                &(self.inner.effective_deadline_ns != NO_DEADLINE),
            )
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    fn build(
        parent: Option<&CancelToken>,
        deadline_ns: u64,
        kick: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> CancelToken {
        let inherited = parent.map_or(NO_DEADLINE, |p| p.inner.effective_deadline_ns);
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU32::new(0),
                effective_deadline_ns: deadline_ns.min(inherited),
                trip_ns: AtomicU64::new(0),
                parent: parent.map(|p| Arc::clone(&p.inner)),
                alloc: OnceLock::new(),
                kick: kick.or_else(|| parent.and_then(|p| p.inner.kick.clone())),
            }),
        }
    }

    /// A fresh root token: no parent, no deadline, no kick.
    pub fn new() -> CancelToken {
        CancelToken::build(None, NO_DEADLINE, None)
    }

    /// A root token whose winning trip fires `kick` (children inherit
    /// it). The runtime uses this to unpark sleeping workers on trip.
    pub fn with_kick(kick: impl Fn() + Send + Sync + 'static) -> CancelToken {
        CancelToken::build(None, NO_DEADLINE, Some(Arc::new(kick)))
    }

    /// A child token: trips when this parent (or any ancestor) trips,
    /// and can be tripped independently without affecting the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken::build(Some(self), NO_DEADLINE, None)
    }

    /// A child token that also trips `deadline` from now. The effective
    /// deadline is the tighter of this and every ancestor's.
    pub fn child_with_deadline(&self, deadline: Duration) -> CancelToken {
        let at =
            mpl_obs::now_ns().saturating_add(deadline.as_nanos().min(u128::from(u64::MAX)) as u64);
        CancelToken::build(Some(self), at, None)
    }

    /// Requests cancellation of this token's subtree. Returns true iff
    /// this call tripped it (false if already tripped).
    pub fn cancel(&self) -> bool {
        self.inner.trip(CODE_EXPLICIT, None)
    }

    /// Trips this token because the GC stall watchdog fired.
    pub(crate) fn trip_watchdog(&self) -> bool {
        self.inner.trip(CODE_WATCHDOG, None)
    }

    /// Trips this token because a branch hit a recoverable allocation
    /// failure, so sibling branches stop instead of computing doomed
    /// work. The originating error travels with the reason.
    pub(crate) fn trip_alloc(&self, e: AllocError) -> bool {
        self.inner.trip(CODE_ALLOC, Some(e))
    }

    /// The poll point. Returns the trip reason if this token — or an
    /// ancestor — has tripped, tripping the deadline lazily if it
    /// expired. Cost when live: one acquire load, plus a clock read
    /// only when a deadline is set, plus one load per ancestor
    /// (the chain is at most runtime-root → run-child in practice).
    #[inline]
    pub fn poll(&self) -> Option<CancelReason> {
        let s = self.inner.state.load(Ordering::Acquire);
        if s != 0 {
            return Some(self.inner.reason_of(s));
        }
        if self.inner.effective_deadline_ns != NO_DEADLINE
            && mpl_obs::now_ns() >= self.inner.effective_deadline_ns
        {
            self.inner.trip(CODE_DEADLINE, None);
            return Some(CancelReason::Deadline);
        }
        let mut cur = self.inner.parent.as_deref();
        while let Some(p) = cur {
            let s = p.state.load(Ordering::Acquire);
            if s != 0 {
                return Some(p.reason_of(s));
            }
            cur = p.parent.as_deref();
        }
        None
    }

    /// True if [`poll`](Self::poll) would report a trip (and trips an
    /// expired deadline as a side effect, like `poll`).
    pub fn is_cancelled(&self) -> bool {
        self.poll().is_some()
    }

    /// The winning trip's reason and timestamp (`mpl_obs::now_ns`
    /// clock), from whichever token on the path to the root tripped
    /// first. `None` while live. The timestamp opens the
    /// cancellation-latency window the `cancel_unwind` histogram
    /// closes.
    pub fn trip_info(&self) -> Option<(CancelReason, u64)> {
        let mut cur = Some(&self.inner);
        while let Some(i) = cur {
            let s = i.state.load(Ordering::Acquire);
            if s != 0 {
                return Some((i.reason_of(s), i.trip_ns.load(Ordering::Acquire)));
            }
            cur = i.parent.as_ref();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fresh_token_is_live_and_cheap_to_poll() {
        let t = CancelToken::new();
        assert_eq!(t.poll(), None);
        assert!(!t.is_cancelled());
        assert_eq!(t.trip_info(), None);
    }

    #[test]
    fn explicit_cancel_wins_once_and_reaches_children() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(root.cancel(), "first trip wins");
        assert!(!root.cancel(), "second trip loses");
        assert_eq!(child.poll(), Some(CancelReason::Explicit));
        assert_eq!(grandchild.poll(), Some(CancelReason::Explicit));
        let (reason, at) = grandchild.trip_info().expect("tripped");
        assert_eq!(reason, CancelReason::Explicit);
        assert!(at > 0);
    }

    #[test]
    fn child_cancel_does_not_leak_to_parent() {
        let root = CancelToken::new();
        let child = root.child();
        assert!(child.cancel());
        assert_eq!(root.poll(), None);
        assert!(child.is_cancelled());
    }

    #[test]
    fn deadline_trips_lazily_on_poll() {
        let root = CancelToken::new();
        let t = root.child_with_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.poll(), Some(CancelReason::Deadline));
        assert_eq!(t.trip_info().unwrap().0, CancelReason::Deadline);
        // Sibling with its own generous deadline is unaffected.
        let s = root.child_with_deadline(Duration::from_secs(3600));
        assert_eq!(s.poll(), None);
    }

    #[test]
    fn child_inherits_tighter_ancestor_deadline() {
        let root = CancelToken::new();
        let tight = root.child_with_deadline(Duration::from_nanos(1));
        let loose = tight.child_with_deadline(Duration::from_secs(3600));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(loose.poll(), Some(CancelReason::Deadline));
    }

    #[test]
    fn alloc_escalation_carries_the_error() {
        let t = CancelToken::new();
        let e = AllocError {
            requested: 64,
            limit: 32,
            live_bytes: 16,
        };
        assert!(t.trip_alloc(e.clone()));
        match t.poll() {
            Some(CancelReason::Alloc(got)) => assert_eq!(got, e),
            other => panic!("expected alloc reason, got {other:?}"),
        }
        let err = RunError::Cancelled(Cancelled {
            reason: CancelReason::Alloc(e.clone()),
        });
        assert_eq!(err.alloc_error(), Some(&e));
        assert!(err.is_cancelled());
    }

    #[test]
    fn kick_fires_exactly_once_and_is_inherited() {
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let root = CancelToken::with_kick(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        let child = root.child();
        assert!(child.cancel());
        assert!(!child.cancel());
        assert_eq!(fired.load(Ordering::SeqCst), 1, "child inherited kick");
        // A fresh child of the same root has its own trip cell; its
        // trip fires the shared kick again (one kick per winning trip).
        let other = root.child();
        assert!(other.cancel());
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn run_error_display_and_conversions() {
        let alloc = AllocError {
            requested: 8,
            limit: 4,
            live_bytes: 2,
        };
        let e: RunError = alloc.clone().into();
        assert!(e.to_string().contains("allocation"));
        assert_eq!(e.alloc_error(), Some(&alloc));
        let c = RunError::Cancelled(Cancelled {
            reason: CancelReason::Deadline,
        });
        assert!(c.to_string().contains("deadline"));
        let p = RunError::Panic("boom".into());
        assert!(p.to_string().contains("boom"));
        assert!(!p.is_cancelled());
    }
}
