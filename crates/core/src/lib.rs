//! # mpl-runtime — entanglement-managed parallel functional runtime
//!
//! The primary contribution of *"Efficient Parallel Functional Programming
//! with Effects"* (Arora, Westrick, Acar; PLDI 2023), reproduced in Rust:
//! a fork-join runtime whose memory manager is a **hierarchy of heaps**
//! mirroring the task tree, extended with **entanglement management** so
//! that programs may use mutation (memory effects) without restriction:
//!
//! * every task allocates into its own leaf heap with no synchronization;
//! * mutable reads/writes pass through a constant-time barrier that
//!   detects *remote* objects (allocated by a concurrent task) and
//!   **pins** them at their entanglement level;
//! * pinned objects are shielded from the moving local collector
//!   ([`mpl_gc::lgc`]) and reclaimed by a concurrent non-moving collector
//!   ([`mpl_gc::cgc`]); joins unpin;
//! * disentangled objects never pay anything beyond the barrier check.
//!
//! # Quickstart
//!
//! ```
//! use mpl_runtime::{Runtime, RuntimeConfig, Value};
//!
//! let rt = Runtime::new(RuntimeConfig::managed());
//! let result = rt.run(|m| {
//!     // A shared mutable cell...
//!     let cell = m.alloc_ref(Value::Int(0));
//!     let c = m.root(cell);
//!     // ...updated by two parallel tasks (an effect!).
//!     m.fork(
//!         |m| {
//!             let cell = m.get(&c);
//!             let boxed = m.alloc_tuple(&[Value::Int(21)]);
//!             m.write_ref(cell, boxed);
//!             Value::Unit
//!         },
//!         |m| {
//!             let cell = m.get(&c);
//!             // May observe the sibling's allocation: an entangled read,
//!             // managed transparently by pinning.
//!             let _ = m.read_ref(cell);
//!             Value::Unit
//!         },
//!     );
//!     let cell = m.get(&c);
//!     let boxed = m.read_ref(cell);
//!     if let Value::Obj(_) = boxed { m.tuple_get(boxed, 0) } else { Value::Int(-1) }
//! });
//! assert_eq!(result, Value::Int(21));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod barrier;
pub mod cancel;
pub mod config;
pub mod mutator;
mod roots;
pub mod runtime;

pub use cancel::{CancelReason, CancelToken, Cancelled, RunError};
pub use config::{Mode, RuntimeConfig, WorkModel};
pub use mutator::{AllocError, Handle, Mutator, RootMark, ENTANGLEMENT_PANIC};
pub use runtime::{Runtime, TelemetryReport, TenantSession};

// Re-export the fault-injection plan types so harnesses configure
// failpoints without naming the leaf crate.
pub use mpl_fail::{FailAction, FailPlan, FailWhen, Failpoint};

// Re-export the value types users interact with.
pub use mpl_gc::GcPolicy;
pub use mpl_heap::{
    to_dot as heap_dot, BudgetSnapshot, ObjKind, ObjRef, StatsSnapshot, StoreConfig, TenantBudget,
    Value,
};
pub use mpl_sched::{simulate, sweep, Dag, SchedMode, SchedSnapshot, SimParams, SimResult};
