//! Lock-free task root stacks.
//!
//! Every task owns a [`RootStack`]: the set of object references it has
//! rooted via [`crate::mutator::Mutator::root`]. The stack used to be an
//! `Arc<Mutex<Vec<ObjRef>>>`, which put a lock acquisition on every root
//! push/pop and every handle dereference — pure mutator-side overhead,
//! since the only concurrent readers (the concurrent collector's root
//! scan, and descendants reading a suspended parent's handles) never
//! need mutual exclusion, only a consistent prefix.
//!
//! # Design
//!
//! A `RootStack` is a segmented stack of `AtomicU64` slots (packed
//! [`ObjRef`]s) with a published length:
//!
//! * **Segments** double in size (32, 64, 128, …) and are allocated
//!   lazily by the owner behind `OnceLock`s, so a slot's address never
//!   changes once written — growing the stack never moves earlier
//!   entries, which is what lets readers run without locks.
//! * **Owner-only structure mutation**: only the owning task pushes,
//!   truncates, or allocates segments. A push writes the slot first,
//!   then publishes it with a `Release` store of `len`.
//! * **Readers** (`iter_snapshot`, `Handle` dereferences from
//!   descendants, the CGC root assembly) take an `Acquire` load of `len`
//!   and read slots atomically. They observe a consistent prefix of the
//!   stack: every slot below the observed length was fully written
//!   before the length was published.
//! * **Slot updates** (`set`) are single atomic stores, used by
//!   `set_root` and by the local collector's post-evacuation writeback.
//!   A concurrent reader sees either the old or the new reference; both
//!   denote the same object (the old location forwards to the new one),
//!   so either is a sound root.
//!
//! The result: rooting, handle reads, and root-stack publication to
//! collectors are all lock-free and `Arc`-clone-free on the access path
//! (the one `Arc` clone happens at `root()` when the handle is created).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use mpl_heap::ObjRef;

/// Slots in the first segment; segment `k` holds `SEG0 << k` slots.
const SEG0: usize = 32;
const SEG0_BITS: u32 = SEG0.trailing_zeros();
/// Number of doubling segments: capacity `SEG0 << (NSEGS - 1)` slots
/// total (2^30 roots), far beyond any real program's live root count.
const NSEGS: usize = 26;

fn pack(r: ObjRef) -> u64 {
    (u64::from(r.block()) << 32) | u64::from(r.word())
}

fn unpack(bits: u64) -> ObjRef {
    ObjRef::new((bits >> 32) as u32, bits as u32)
}

/// Maps a slot index to its (segment, offset) pair.
fn locate(i: usize) -> (usize, usize) {
    let p = i + SEG0;
    let hibit = usize::BITS - 1 - p.leading_zeros();
    let seg = (hibit - SEG0_BITS) as usize;
    (seg, p ^ (1usize << hibit))
}

/// A lock-free, owner-mutated, concurrently-readable stack of rooted
/// object references. See the module docs for the protocol.
pub(crate) struct RootStack {
    len: AtomicUsize,
    segs: [OnceLock<Box<[AtomicU64]>>; NSEGS],
}

impl RootStack {
    pub(crate) fn new() -> RootStack {
        RootStack {
            len: AtomicUsize::new(0),
            segs: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    fn slot(&self, i: usize) -> &AtomicU64 {
        let (seg, off) = locate(i);
        let seg = self.segs[seg]
            .get()
            .expect("root-stack slot read below len must be allocated");
        &seg[off]
    }

    /// Current length. `Acquire`: every slot below it is initialized.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Pushes a root and returns its slot index. Owner-only.
    pub(crate) fn push(&self, r: ObjRef) -> usize {
        let i = self.len.load(Ordering::Relaxed);
        let (seg, off) = locate(i);
        assert!(seg < NSEGS, "root stack overflow ({i} live roots)");
        let segment =
            self.segs[seg].get_or_init(|| (0..(SEG0 << seg)).map(|_| AtomicU64::new(0)).collect());
        segment[off].store(pack(r), Ordering::Relaxed);
        // Publish: readers that observe the new length also observe the
        // slot write above.
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Reads slot `i`. Sound from any thread for `i < len()`: the slot
    /// holds either the value published at push time or a later `set` —
    /// both valid (possibly forwarding-stale) references.
    pub(crate) fn get(&self, i: usize) -> ObjRef {
        unpack(self.slot(i).load(Ordering::Relaxed))
    }

    /// Overwrites slot `i` atomically. Used by `set_root` (possibly from
    /// a descendant task while the owner is suspended at its fork) and
    /// by the local collector's root writeback.
    pub(crate) fn set(&self, i: usize, r: ObjRef) {
        self.slot(i).store(pack(r), Ordering::Relaxed);
    }

    /// Drops every root at index `>= new_len`. Owner-only. Stale slot
    /// contents above the new length are left in place; they are never
    /// read again except by a racing reader that loaded the old length,
    /// for which the old values are still sound (conservative) roots.
    pub(crate) fn truncate(&self, new_len: usize) {
        debug_assert!(new_len <= self.len.load(Ordering::Relaxed));
        self.len.store(new_len, Ordering::Release);
    }

    /// Copies the current contents into `out`. Lock-free; concurrent
    /// `set`s may interleave, which is sound for collector root scans
    /// (every observed value denotes a live object).
    pub(crate) fn extend_snapshot(&self, out: &mut Vec<ObjRef>) {
        let n = self.len();
        out.reserve(n);
        for i in 0..n {
            out.push(self.get(i));
        }
    }
}

impl fmt::Debug for RootStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RootStack")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn segment_addressing_is_dense_and_doubling() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(SEG0 - 1), (0, SEG0 - 1));
        assert_eq!(locate(SEG0), (1, 0));
        assert_eq!(locate(3 * SEG0 - 1), (1, 2 * SEG0 - 1));
        assert_eq!(locate(3 * SEG0), (2, 0));
        // Every index maps to a unique (seg, off) within bounds.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let (seg, off) = locate(i);
            assert!(off < SEG0 << seg, "offset in bounds at {i}");
            assert!(seen.insert((seg, off)), "unique at {i}");
        }
    }

    #[test]
    fn push_get_set_truncate() {
        let s = RootStack::new();
        for i in 0..1000u32 {
            let idx = s.push(ObjRef::new(i, i + 1));
            assert_eq!(idx as u32, i);
        }
        assert_eq!(s.len(), 1000);
        assert_eq!(s.get(999), ObjRef::new(999, 1000));
        s.set(0, ObjRef::new(7, 9));
        assert_eq!(s.get(0), ObjRef::new(7, 9));
        s.truncate(10);
        assert_eq!(s.len(), 10);
        let mut snap = Vec::new();
        s.extend_snapshot(&mut snap);
        assert_eq!(snap.len(), 10);
        assert_eq!(snap[3], ObjRef::new(3, 4));
        // Push after truncate reuses slots.
        s.push(ObjRef::new(42, 42));
        assert_eq!(s.get(10), ObjRef::new(42, 42));
    }

    #[test]
    fn packing_roundtrips_extreme_refs() {
        for r in [
            ObjRef::new(0, 0),
            ObjRef::new(1, 0),
            ObjRef::new(0x7FFF_FFFF, 0x7FFF_FFFF),
        ] {
            assert_eq!(unpack(pack(r)), r);
        }
    }

    #[test]
    fn concurrent_readers_see_consistent_prefixes() {
        let s = Arc::new(RootStack::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = s.len();
                        for i in 0..n {
                            let r = s.get(i);
                            // Writer pushes ObjRef::new(i, i+1): a reader
                            // below the published length must never see
                            // an uninitialized slot.
                            assert_eq!(r.block() + 1, r.word(), "slot {i} of {n}");
                        }
                    }
                })
            })
            .collect();
        for i in 0..50_000u32 {
            s.push(ObjRef::new(i, i + 1));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.len(), 50_000);
    }
}
