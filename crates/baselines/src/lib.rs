//! # mpl-baselines — comparison runtimes
//!
//! The stand-ins for the paper's cross-system comparison (experiment E6)
//! and sequential-overhead baselines (E2):
//!
//! * [`seq`] — a **sequential** single-heap runtime with mark-sweep
//!   collection and zero barriers: the MLton stand-in defining `T_s` and
//!   `R_s`.
//! * [`global`] — a **shared-heap parallel** runtime: global allocation
//!   lock, stop-the-world collection over all task roots — the
//!   Java/OCaml-style monolithic-GC stand-in.
//!
//! Native Rust implementations of individual benchmarks (the C++/Go
//! stand-in) live next to their workloads in `mpl-bench-suite`.
//!
//! # Example
//!
//! The sequential baseline is a conventional rooted mark-sweep heap:
//!
//! ```
//! use mpl_baselines::{SeqRuntime, SeqValue};
//!
//! let mut rt = SeqRuntime::new(64 * 1024);
//! let pair = rt.alloc(&[SeqValue::Int(20), SeqValue::Int(22)]);
//! let h = rt.root(pair);
//! rt.collect(&[]); // rooted data survives
//! let pair = rt.get(h);
//! let sum = rt.get_field(pair, 0).expect_int() + rt.get_field(pair, 1).expect_int();
//! assert_eq!(sum, 42);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod global;
pub mod seq;

pub use global::{GHandle, GValue, GlobalMutator, GlobalRuntime, GlobalStats};
pub use seq::{SeqHandle, SeqRuntime, SeqStats, SeqValue};
