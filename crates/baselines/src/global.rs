//! The global-heap parallel runtime — the Java/OCaml(-4) stand-in.
//!
//! One shared heap for every task: allocation synchronizes on a global
//! lock (the classic scalability bottleneck the hierarchical design
//! removes), and collection is stop-the-world mark-sweep over all
//! registered root stacks. Field accesses are atomic and barrier-free —
//! this runtime is *safe* for entangled programs by construction, it just
//! pays for that safety on every allocation instead of only at
//! entanglement sites.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

/// Values of the global runtime (same shape as the sequential one).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GValue {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Heap object index.
    Obj(usize),
}

impl GValue {
    /// Integer payload or panic.
    pub fn expect_int(self) -> i64 {
        match self {
            GValue::Int(n) => n,
            other => panic!("expected int, found {other:?}"),
        }
    }

    fn encode(self) -> u64 {
        match self {
            GValue::Unit => 0b10,
            GValue::Bool(b) => 0b11 | ((b as u64) << 2),
            GValue::Int(n) => (n as u64) << 2, // tag 00
            GValue::Obj(i) => ((i as u64) << 2) | 0b01,
        }
    }

    fn decode(bits: u64) -> GValue {
        match bits & 0b11 {
            0b00 => GValue::Int((bits as i64) >> 2),
            0b01 => GValue::Obj((bits >> 2) as usize),
            0b10 => GValue::Unit,
            _ => GValue::Bool((bits >> 2) & 1 == 1),
        }
    }
}

struct GObj {
    fields: Box<[AtomicU64]>,
    raw: bool,
    dead: AtomicBool,
    marked: AtomicBool,
}

impl GObj {
    fn size_bytes(&self) -> usize {
        24 + 8 * self.fields.len()
    }
}

/// Counters reported by the global runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct GlobalStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Stop-the-world collections.
    pub gc_runs: u64,
    /// Total stop-the-world pause time.
    pub gc_pause: Duration,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Live-bytes high-water mark.
    pub max_live_bytes: usize,
    /// Global allocation-lock acquisitions (the contention proxy).
    pub alloc_locks: u64,
}

#[derive(Default)]
struct StatsCell {
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
    gc_runs: AtomicU64,
    gc_pause_ns: AtomicU64,
    reclaimed_bytes: AtomicU64,
    max_live_bytes: AtomicUsize,
    alloc_locks: AtomicU64,
}

struct GlobalHeap {
    objs: RwLock<Vec<GObj>>,
    alloc_lock: Mutex<AllocState>,
    roots: Mutex<Vec<Arc<Mutex<Vec<usize>>>>>,
    stats: StatsCell,
    gc_threshold: usize,
    live_threads: AtomicUsize,
    max_threads: usize,
}

#[derive(Default)]
struct AllocState {
    free: Vec<usize>,
    live_bytes: usize,
    since_gc: usize,
}

/// The global-heap runtime.
pub struct GlobalRuntime {
    heap: Arc<GlobalHeap>,
}

/// One task's view of the global runtime.
pub struct GlobalMutator {
    heap: Arc<GlobalHeap>,
    roots: Arc<Mutex<Vec<usize>>>,
}

/// A rooted value handle; readable from descendant tasks (it carries its
/// owning root stack).
#[derive(Clone, Debug)]
pub struct GHandle(GHandleRepr);

#[derive(Clone, Debug)]
enum GHandleRepr {
    Imm(GValue),
    Slot(Arc<Mutex<Vec<usize>>>, usize),
}

impl GlobalRuntime {
    /// Creates a runtime collecting every `gc_threshold` allocated bytes,
    /// with at most `max_threads` live task threads.
    pub fn new(gc_threshold: usize, max_threads: usize) -> GlobalRuntime {
        GlobalRuntime {
            heap: Arc::new(GlobalHeap {
                objs: RwLock::new(Vec::new()),
                alloc_lock: Mutex::new(AllocState::default()),
                roots: Mutex::new(Vec::new()),
                stats: StatsCell::default(),
                gc_threshold,
                live_threads: AtomicUsize::new(1),
                max_threads: max_threads.max(1),
            }),
        }
    }

    /// Runs a program against a fresh root mutator.
    pub fn run<F>(&self, f: F) -> GValue
    where
        F: FnOnce(&mut GlobalMutator) -> GValue,
    {
        let mut m = GlobalMutator::new(Arc::clone(&self.heap));
        let v = f(&mut m);
        m.unregister();
        v
    }

    /// Current statistics.
    pub fn stats(&self) -> GlobalStats {
        let s = &self.heap.stats;
        GlobalStats {
            allocs: s.allocs.load(Ordering::Relaxed),
            alloc_bytes: s.alloc_bytes.load(Ordering::Relaxed),
            gc_runs: s.gc_runs.load(Ordering::Relaxed),
            gc_pause: Duration::from_nanos(s.gc_pause_ns.load(Ordering::Relaxed)),
            reclaimed_bytes: s.reclaimed_bytes.load(Ordering::Relaxed),
            max_live_bytes: s.max_live_bytes.load(Ordering::Relaxed),
            alloc_locks: s.alloc_locks.load(Ordering::Relaxed),
        }
    }
}

impl GlobalMutator {
    fn new(heap: Arc<GlobalHeap>) -> GlobalMutator {
        let roots = Arc::new(Mutex::new(Vec::new()));
        heap.roots.lock().push(Arc::clone(&roots));
        GlobalMutator { heap, roots }
    }

    fn unregister(&self) {
        let mut roots = self.heap.roots.lock();
        if let Some(pos) = roots.iter().position(|r| Arc::ptr_eq(r, &self.roots)) {
            roots.swap_remove(pos);
        }
    }

    /// Roots a value; returns a handle readable from this task and its
    /// descendants.
    pub fn root(&mut self, v: GValue) -> GHandle {
        match v {
            GValue::Obj(i) => {
                let mut r = self.roots.lock();
                r.push(i);
                let slot = r.len() - 1;
                drop(r);
                GHandle(GHandleRepr::Slot(Arc::clone(&self.roots), slot))
            }
            imm => GHandle(GHandleRepr::Imm(imm)),
        }
    }

    /// Reads a rooted value.
    pub fn get(&self, h: &GHandle) -> GValue {
        match &h.0 {
            GHandleRepr::Imm(v) => *v,
            GHandleRepr::Slot(stack, i) => GValue::Obj(stack.lock()[*i]),
        }
    }

    /// Root watermark / release, mirroring the other runtimes.
    pub fn mark(&self) -> usize {
        self.roots.lock().len()
    }

    /// Releases roots above the watermark.
    pub fn release(&mut self, mark: usize) {
        self.roots.lock().truncate(mark);
    }

    fn alloc_obj(&mut self, fields: Vec<u64>, raw: bool, temp_roots: &[GValue]) -> usize {
        let heap = Arc::clone(&self.heap);
        let size = 24 + 8 * fields.len();
        // Trigger collection outside the allocation lock.
        if heap.alloc_lock.lock().since_gc >= heap.gc_threshold {
            self.collect(temp_roots);
        }
        heap.stats.alloc_locks.fetch_add(1, Ordering::Relaxed);
        let mut state = heap.alloc_lock.lock();
        state.live_bytes += size;
        state.since_gc += size;
        let live = state.live_bytes;
        heap.stats.max_live_bytes.fetch_max(live, Ordering::Relaxed);
        heap.stats.allocs.fetch_add(1, Ordering::Relaxed);
        heap.stats
            .alloc_bytes
            .fetch_add(size as u64, Ordering::Relaxed);
        let obj = GObj {
            fields: fields.into_iter().map(AtomicU64::new).collect(),
            raw,
            dead: AtomicBool::new(false),
            marked: AtomicBool::new(false),
        };
        if let Some(i) = state.free.pop() {
            let objs = heap.objs.read();
            let slot = &objs[i];
            slot.dead.store(false, Ordering::Release);
            // Reinitialize in place: swap field storage via interior
            // atomics is impossible for differing lengths, so free-list
            // reuse only matches exact lengths; otherwise append.
            if slot.fields.len() == obj.fields.len() && slot.raw == obj.raw {
                for (dst, src) in slot.fields.iter().zip(obj.fields.iter()) {
                    dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                return i;
            }
            drop(objs);
            state.free.push(i); // put back; fall through to append
        }
        drop(state);
        let mut objs = heap.objs.write();
        objs.push(obj);
        objs.len() - 1
    }

    /// Stop-the-world collection.
    pub fn collect(&mut self, temp_roots: &[GValue]) {
        let heap = Arc::clone(&self.heap);
        let start = Instant::now();
        // Lock order: allocation state first, then the object table —
        // the same order the allocation path uses, so no inversion.
        let mut state = heap.alloc_lock.lock();
        // Stop the world: exclusive access to the object table blocks
        // every reader/writer.
        let objs = heap.objs.write();
        state.since_gc = 0;
        let mut stack: Vec<usize> = Vec::new();
        for rs in heap.roots.lock().iter() {
            stack.extend(rs.lock().iter().copied());
        }
        stack.extend(temp_roots.iter().filter_map(|v| match v {
            GValue::Obj(i) => Some(*i),
            _ => None,
        }));
        while let Some(i) = stack.pop() {
            let o = &objs[i];
            if o.dead.load(Ordering::Relaxed) || o.marked.swap(true, Ordering::Relaxed) {
                continue;
            }
            if !o.raw {
                for f in o.fields.iter() {
                    if let GValue::Obj(c) = GValue::decode(f.load(Ordering::Relaxed)) {
                        stack.push(c);
                    }
                }
            }
        }
        let mut reclaimed = 0usize;
        for (i, o) in objs.iter().enumerate() {
            if o.dead.load(Ordering::Relaxed) {
                continue;
            }
            if o.marked.swap(false, Ordering::Relaxed) {
                continue; // live; mark cleared for next cycle
            }
            o.dead.store(true, Ordering::Relaxed);
            reclaimed += o.size_bytes();
            state.free.push(i);
        }
        state.live_bytes -= reclaimed;
        heap.stats
            .reclaimed_bytes
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        heap.stats.gc_runs.fetch_add(1, Ordering::Relaxed);
        heap.stats
            .gc_pause_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Allocates a boxed object.
    pub fn alloc(&mut self, fields: &[GValue]) -> GValue {
        let words = fields.iter().map(|v| v.encode()).collect();
        GValue::Obj(self.alloc_obj(words, false, fields))
    }

    /// Allocates `len` copies of `init`.
    pub fn alloc_n(&mut self, len: usize, init: GValue) -> GValue {
        GValue::Obj(self.alloc_obj(vec![init.encode(); len], false, &[init]))
    }

    /// Allocates a raw zeroed array.
    pub fn alloc_raw(&mut self, len: usize) -> GValue {
        GValue::Obj(self.alloc_obj(vec![0; len], true, &[]))
    }

    fn with_obj<R>(&self, obj: GValue, f: impl FnOnce(&GObj) -> R) -> R {
        let GValue::Obj(i) = obj else {
            panic!("expected object, found {obj:?}");
        };
        let objs = self.heap.objs.read();
        f(&objs[i])
    }

    /// Reads field `i`.
    pub fn get_field(&self, obj: GValue, i: usize) -> GValue {
        self.with_obj(obj, |o| GValue::decode(o.fields[i].load(Ordering::Acquire)))
    }

    /// Writes field `i`.
    pub fn set_field(&self, obj: GValue, i: usize, v: GValue) {
        self.with_obj(obj, |o| o.fields[i].store(v.encode(), Ordering::Release));
    }

    /// Compare-and-swap on field `i`.
    pub fn cas_field(&self, obj: GValue, i: usize, expected: GValue, new: GValue) -> bool {
        self.with_obj(obj, |o| {
            o.fields[i]
                .compare_exchange(
                    expected.encode(),
                    new.encode(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        })
    }

    /// Object length.
    pub fn len(&self, obj: GValue) -> usize {
        self.with_obj(obj, |o| o.fields.len())
    }

    /// Raw word read.
    pub fn raw_get(&self, obj: GValue, i: usize) -> u64 {
        self.with_obj(obj, |o| o.fields[i].load(Ordering::Acquire))
    }

    /// Raw word write.
    pub fn raw_set(&self, obj: GValue, i: usize, bits: u64) {
        self.with_obj(obj, |o| o.fields[i].store(bits, Ordering::Release))
    }

    /// Raw word compare-and-swap.
    pub fn raw_cas(&self, obj: GValue, i: usize, expected: u64, new: u64) -> bool {
        self.with_obj(obj, |o| {
            o.fields[i]
                .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        })
    }

    /// Fork-join on the shared heap: spawns a thread for the left branch
    /// when under the thread budget, else runs sequentially.
    pub fn fork<A, B>(&mut self, f: A, g: B) -> (GValue, GValue)
    where
        A: FnOnce(&mut GlobalMutator) -> GValue + Send,
        B: FnOnce(&mut GlobalMutator) -> GValue + Send,
    {
        let heap = Arc::clone(&self.heap);
        let spawn = heap
            .live_threads
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n < heap.max_threads {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if spawn {
            let lheap = Arc::clone(&heap);
            let out = std::thread::scope(|s| {
                let jl = s.spawn(move || {
                    let mut lm = GlobalMutator::new(lheap);
                    let v = f(&mut lm);
                    let _hold = lm.root(v);
                    (v, lm.roots.clone())
                });
                let mut rm = GlobalMutator::new(Arc::clone(&heap));
                let rv = g(&mut rm);
                let _hold = rm.root(rv);
                let (lv, lroots) = match jl.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                };
                // Unregister both child root stacks now that results are
                // owned by the parent (caller must root across allocs).
                let mut roots = heap.roots.lock();
                roots.retain(|r| !Arc::ptr_eq(r, &lroots) && !Arc::ptr_eq(r, &rm.roots));
                (lv, rv)
            });
            heap.live_threads.fetch_sub(1, Ordering::AcqRel);
            out
        } else {
            let mark = self.mark();
            let lv = f(self);
            let _hold = self.root(lv);
            let rv = g(self);
            self.release(mark);
            (lv, rv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let rt = GlobalRuntime::new(1 << 20, 1);
        let v = rt.run(|m| {
            let o = m.alloc(&[GValue::Int(1), GValue::Unit]);
            m.set_field(o, 1, GValue::Int(2));
            GValue::Int(m.get_field(o, 0).expect_int() + m.get_field(o, 1).expect_int())
        });
        assert_eq!(v, GValue::Int(3));
    }

    #[test]
    fn stw_gc_reclaims() {
        let rt = GlobalRuntime::new(2048, 1);
        rt.run(|m| {
            let keep = m.alloc(&[GValue::Int(5)]);
            let h = m.root(keep);
            for _ in 0..500 {
                let _ = m.alloc(&[GValue::Int(0); 4]);
            }
            let k = m.get(&h);
            assert_eq!(m.get_field(k, 0), GValue::Int(5));
            GValue::Unit
        });
        let s = rt.stats();
        assert!(s.gc_runs > 0);
        assert!(s.reclaimed_bytes > 0);
        assert!(s.gc_pause > Duration::ZERO);
    }

    #[test]
    fn fork_with_threads_shares_heap() {
        let rt = GlobalRuntime::new(1 << 20, 4);
        let v = rt.run(|m| {
            let cell = m.alloc(&[GValue::Int(0)]);
            let h = m.root(cell);
            let (a, b) = m.fork(
                |m| {
                    let c = m.get(&h);
                    m.set_field(c, 0, GValue::Int(21));
                    GValue::Int(21)
                },
                |_| GValue::Int(21),
            );
            GValue::Int(a.expect_int() + b.expect_int())
        });
        assert_eq!(v, GValue::Int(42));
    }

    #[test]
    fn cas_works() {
        let rt = GlobalRuntime::new(1 << 20, 1);
        rt.run(|m| {
            let o = m.alloc(&[GValue::Int(1)]);
            assert!(m.cas_field(o, 0, GValue::Int(1), GValue::Int(2)));
            assert!(!m.cas_field(o, 0, GValue::Int(1), GValue::Int(3)));
            let r = m.alloc_raw(2);
            assert!(m.raw_cas(r, 0, 0, 7));
            assert_eq!(m.raw_get(r, 0), 7);
            GValue::Unit
        });
    }
}
