//! The sequential baseline runtime — the MLton stand-in.
//!
//! A single heap, no hierarchy, no read/write barriers, no atomics: the
//! cost floor a sequential functional-language implementation pays.
//! `fork` degenerates to running both branches in order on the same heap.
//! Reclamation is a mark-sweep collection over an explicit root stack,
//! triggered by allocation volume, so the baseline pays *realistic* GC
//! work (the paper's overhead tables compare against a collected
//! sequential runtime, not against malloc-and-leak).

use std::fmt;

/// Values of the sequential runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeqValue {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Heap object index.
    Obj(usize),
}

impl SeqValue {
    /// Integer payload or panic.
    pub fn expect_int(self) -> i64 {
        match self {
            SeqValue::Int(n) => n,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Object payload or panic.
    pub fn expect_obj(self) -> usize {
        match self {
            SeqValue::Obj(i) => i,
            other => panic!("expected object, found {other:?}"),
        }
    }
}

#[derive(Clone, Debug)]
enum SeqObj {
    /// Boxed values (tuples, refs, arrays — mutability is not
    /// distinguished: there are no barriers to care).
    Boxed(Vec<SeqValue>),
    /// Raw 64-bit payload (strings, bitsets).
    Raw(Vec<u64>),
}

impl SeqObj {
    fn size_bytes(&self) -> usize {
        24 + 8 * match self {
            SeqObj::Boxed(v) => v.len(),
            SeqObj::Raw(v) => v.len(),
        }
    }
}

/// Counters reported by the sequential runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Collections run.
    pub gc_runs: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Live-bytes high-water mark.
    pub max_live_bytes: usize,
    /// Work units (same weights as the parallel runtime, for
    /// work-normalized comparisons).
    pub work: u64,
}

/// The sequential runtime: heap + root stack.
pub struct SeqRuntime {
    objs: Vec<Option<SeqObj>>,
    free: Vec<usize>,
    roots: Vec<usize>,
    live_bytes: usize,
    gc_threshold: usize,
    allocated_since_gc: usize,
    stats: SeqStats,
}

impl fmt::Debug for SeqRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqRuntime")
            .field("objects", &self.objs.len())
            .field("live_bytes", &self.live_bytes)
            .finish()
    }
}

/// A rooted object handle (index into the root stack).
#[derive(Clone, Copy, Debug)]
pub struct SeqHandle(usize);

impl Default for SeqRuntime {
    fn default() -> Self {
        SeqRuntime::new(256 * 1024)
    }
}

impl SeqRuntime {
    /// Creates a runtime collecting every `gc_threshold` allocated bytes.
    pub fn new(gc_threshold: usize) -> SeqRuntime {
        SeqRuntime {
            objs: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
            live_bytes: 0,
            gc_threshold,
            allocated_since_gc: 0,
            stats: SeqStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }

    fn insert(&mut self, obj: SeqObj) -> usize {
        let size = obj.size_bytes();
        self.stats.allocs += 1;
        self.stats.alloc_bytes += size as u64;
        self.stats.work += 2;
        self.live_bytes += size;
        self.stats.max_live_bytes = self.stats.max_live_bytes.max(self.live_bytes);
        self.allocated_since_gc += size;
        if let Some(i) = self.free.pop() {
            self.objs[i] = Some(obj);
            i
        } else {
            self.objs.push(Some(obj));
            self.objs.len() - 1
        }
    }

    fn maybe_gc(&mut self, extra_roots: &[SeqValue]) {
        if self.allocated_since_gc >= self.gc_threshold {
            self.collect(extra_roots);
        }
    }

    /// Mark-sweep collection; `extra_roots` protects in-flight values.
    pub fn collect(&mut self, extra_roots: &[SeqValue]) {
        self.stats.gc_runs += 1;
        self.allocated_since_gc = 0;
        let mut marked = vec![false; self.objs.len()];
        let mut stack: Vec<usize> = self.roots.clone();
        stack.extend(extra_roots.iter().filter_map(|v| match v {
            SeqValue::Obj(i) => Some(*i),
            _ => None,
        }));
        while let Some(i) = stack.pop() {
            if marked[i] {
                continue;
            }
            marked[i] = true;
            if let Some(SeqObj::Boxed(fields)) = &self.objs[i] {
                for v in fields {
                    if let SeqValue::Obj(c) = v {
                        if !marked[*c] {
                            stack.push(*c);
                        }
                    }
                }
            }
        }
        for (i, slot) in self.objs.iter_mut().enumerate() {
            if slot.is_some() && !marked[i] {
                let size = slot.as_ref().unwrap().size_bytes();
                self.live_bytes -= size;
                self.stats.reclaimed_bytes += size as u64;
                self.stats.work += 1;
                *slot = None;
                self.free.push(i);
            }
        }
    }

    // ---- mutator API (mirrors mpl-runtime's, barrier-free) ---------------

    /// Roots a value; returns a handle.
    pub fn root(&mut self, v: SeqValue) -> SeqHandle {
        match v {
            SeqValue::Obj(i) => {
                self.roots.push(i);
                SeqHandle(self.roots.len() - 1)
            }
            _ => SeqHandle(usize::MAX),
        }
    }

    /// Reads a rooted value. (Objects never move here, so this is the
    /// identity; the handle exists for API parity.)
    pub fn get(&self, h: SeqHandle) -> SeqValue {
        if h.0 == usize::MAX {
            SeqValue::Unit
        } else {
            SeqValue::Obj(self.roots[h.0])
        }
    }

    /// Root-stack watermark.
    pub fn mark(&self) -> usize {
        self.roots.len()
    }

    /// Releases roots above the watermark.
    pub fn release(&mut self, mark: usize) {
        self.roots.truncate(mark);
    }

    /// Allocates a boxed object (tuple / ref / array — no distinction).
    pub fn alloc(&mut self, fields: &[SeqValue]) -> SeqValue {
        self.maybe_gc(fields);
        SeqValue::Obj(self.insert(SeqObj::Boxed(fields.to_vec())))
    }

    /// Allocates a boxed object of `len` copies of `init`.
    pub fn alloc_n(&mut self, len: usize, init: SeqValue) -> SeqValue {
        self.maybe_gc(&[init]);
        SeqValue::Obj(self.insert(SeqObj::Boxed(vec![init; len])))
    }

    /// Allocates a raw array of zeroed words.
    pub fn alloc_raw(&mut self, len: usize) -> SeqValue {
        self.maybe_gc(&[]);
        SeqValue::Obj(self.insert(SeqObj::Raw(vec![0; len])))
    }

    /// Reads field `i`.
    pub fn get_field(&mut self, obj: SeqValue, i: usize) -> SeqValue {
        self.stats.work += 1;
        match &self.objs[obj.expect_obj()] {
            Some(SeqObj::Boxed(f)) => f[i],
            _ => panic!("boxed read on raw or freed object"),
        }
    }

    /// Writes field `i`.
    pub fn set_field(&mut self, obj: SeqValue, i: usize, v: SeqValue) {
        self.stats.work += 1;
        match &mut self.objs[obj.expect_obj()] {
            Some(SeqObj::Boxed(f)) => f[i] = v,
            _ => panic!("boxed write on raw or freed object"),
        }
    }

    /// Object length (boxed or raw).
    pub fn len(&self, obj: SeqValue) -> usize {
        match &self.objs[obj.expect_obj()] {
            Some(SeqObj::Boxed(f)) => f.len(),
            Some(SeqObj::Raw(f)) => f.len(),
            None => panic!("length of freed object"),
        }
    }

    /// Raw word read.
    pub fn raw_get(&mut self, obj: SeqValue, i: usize) -> u64 {
        self.stats.work += 1;
        match &self.objs[obj.expect_obj()] {
            Some(SeqObj::Raw(f)) => f[i],
            _ => panic!("raw read on boxed or freed object"),
        }
    }

    /// Raw word write.
    pub fn raw_set(&mut self, obj: SeqValue, i: usize, bits: u64) {
        self.stats.work += 1;
        match &mut self.objs[obj.expect_obj()] {
            Some(SeqObj::Raw(f)) => f[i] = bits,
            _ => panic!("raw write on boxed or freed object"),
        }
    }

    /// Charges modeled computational work (parity with `Mutator::work`).
    pub fn work(&mut self, n: u64) {
        self.stats.work += n;
    }

    /// "Fork": runs both closures sequentially — the baseline has no
    /// parallelism and pays no task overhead.
    pub fn fork<A, B>(&mut self, f: A, g: B) -> (SeqValue, SeqValue)
    where
        A: FnOnce(&mut SeqRuntime) -> SeqValue,
        B: FnOnce(&mut SeqRuntime) -> SeqValue,
    {
        let a = f(self);
        let mark = self.mark();
        let _keep = self.root(a);
        let b = g(self);
        self.release(mark);
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut rt = SeqRuntime::default();
        let o = rt.alloc(&[SeqValue::Int(1), SeqValue::Int(2)]);
        assert_eq!(rt.get_field(o, 0), SeqValue::Int(1));
        rt.set_field(o, 1, SeqValue::Int(9));
        assert_eq!(rt.get_field(o, 1), SeqValue::Int(9));
        assert_eq!(rt.len(o), 2);
    }

    #[test]
    fn gc_reclaims_unrooted() {
        let mut rt = SeqRuntime::new(1024);
        let keep = rt.alloc(&[SeqValue::Int(42)]);
        let h = rt.root(keep);
        for _ in 0..200 {
            let _ = rt.alloc(&[SeqValue::Int(0); 4]);
        }
        assert!(rt.stats().gc_runs > 0);
        assert!(rt.stats().reclaimed_bytes > 0);
        let kept = rt.get(h);
        assert_eq!(rt.get_field(kept, 0), SeqValue::Int(42));
    }

    #[test]
    fn graph_reachability_preserved() {
        let mut rt = SeqRuntime::new(512);
        let leaf = rt.alloc(&[SeqValue::Int(7)]);
        let node = rt.alloc(&[leaf, leaf]);
        let h = rt.root(node);
        for _ in 0..200 {
            let _ = rt.alloc(&[SeqValue::Unit; 8]);
        }
        let n = rt.get(h);
        let l = rt.get_field(n, 0);
        assert_eq!(rt.get_field(l, 0), SeqValue::Int(7));
    }

    #[test]
    fn fork_is_sequential() {
        let mut rt = SeqRuntime::default();
        let (a, b) = rt.fork(|_| SeqValue::Int(1), |_| SeqValue::Int(2));
        assert_eq!((a, b), (SeqValue::Int(1), SeqValue::Int(2)));
    }

    #[test]
    fn raw_arrays() {
        let mut rt = SeqRuntime::default();
        let r = rt.alloc_raw(3);
        rt.raw_set(r, 2, 99);
        assert_eq!(rt.raw_get(r, 2), 99);
        assert_eq!(rt.raw_get(r, 0), 0);
    }
}
