//! Disabled-telemetry cost assertions, mirroring the disabled-mode test
//! of `mpl-heap`'s `events` module: with no enabler active, every
//! emission site must be a semantic no-op (nothing recorded, no clock
//! read observable through `span_start`), and the gate itself must be
//! cheap. Lives in its own integration-test binary so no other test's
//! `enable()` refcount can leak in.

use std::time::Instant;

use mpl_obs::{
    enabled, histogram, metric_snapshots, record_duration, snapshot_spans, span_close, span_start,
    timer, Metric,
};

#[test]
fn disabled_telemetry_records_nothing_and_is_cheap() {
    assert!(
        !enabled(),
        "this test binary must start with telemetry disabled"
    );

    // Semantic no-ops: histograms stay empty, spans stay unrecorded.
    let before = metric_snapshots();
    record_duration(Metric::LgcPause, 123);
    record_duration(Metric::BarrierSlow, 456);
    {
        let _t = timer(Metric::BarrierSlow);
    }
    assert_eq!(
        span_start(),
        None,
        "span_start must not observe a clock when disabled"
    );
    span_close(Metric::SchedRun, None);
    assert_eq!(metric_snapshots(), before);
    assert!(snapshot_spans().is_empty());
    assert_eq!(histogram(Metric::LgcPause).snapshot().count, 0);

    // Cost: the gate is one relaxed load + branch. 10M disabled emissions
    // must complete in far under a second even on a loaded CI host (the
    // bound is deliberately generous — the point is catching an accidental
    // syscall/clock read on the disabled path, which would be ~100x this).
    const N: u64 = 10_000_000;
    let t0 = Instant::now();
    for i in 0..N {
        record_duration(Metric::SchedRun, i);
        span_close(Metric::SchedRun, None);
    }
    let elapsed = t0.elapsed();
    assert_eq!(histogram(Metric::SchedRun).snapshot().count, 0);
    assert!(
        elapsed.as_millis() < 2_000,
        "disabled emission cost regressed: {N} iterations took {elapsed:?}"
    );
}
