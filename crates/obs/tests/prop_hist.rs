//! Property tests for the log-bucketed histogram: bucket monotonicity,
//! merge associativity/commutativity, and percentile bounds.

use mpl_obs::{bucket_bound, bucket_index, HistSnapshot, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;

fn snap_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// bucket_index is monotone non-decreasing and each value lies within
    /// its bucket's [lower, upper] range.
    #[test]
    fn bucket_monotone_and_bounding(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        for v in [lo, hi] {
            let i = bucket_index(v);
            prop_assert!(v <= bucket_bound(i), "v={v} above bound of bucket {i}");
            if i > 0 {
                prop_assert!(v > bucket_bound(i - 1),
                    "v={v} not above previous bucket bound {}", bucket_bound(i - 1));
            }
        }
    }

    /// Merging snapshots is associative and commutative, and merging
    /// equals recording the concatenation.
    #[test]
    fn merge_assoc_commutative(
        xs in vec(0u64..1u64 << 48, 0..40),
        ys in vec(0u64..1u64 << 48, 0..40),
        zs in vec(0u64..1u64 << 48, 0..40),
    ) {
        let (sx, sy, sz) = (snap_of(&xs), snap_of(&ys), snap_of(&zs));
        prop_assert_eq!(sx.merge(&sy), sy.merge(&sx));
        prop_assert_eq!(sx.merge(&sy).merge(&sz), sx.merge(&sy.merge(&sz)));
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(sx.merge(&sy).merge(&sz), snap_of(&all));
    }

    /// Percentiles are ordered (p50 <= p90 <= p99 <= max), every
    /// percentile upper-bounds the true rank value, and the error is
    /// within one power-of-two bucket.
    #[test]
    fn percentile_bounds(mut xs in vec(0u64..1u64 << 40, 1..60)) {
        let s = snap_of(&xs);
        xs.sort_unstable();
        let true_max = *xs.last().unwrap();
        prop_assert_eq!(s.max, true_max);
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= s.max);
        prop_assert_eq!(s.percentile(1.0), true_max);
        for q in [0.5f64, 0.9, 0.99] {
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let true_val = xs[rank - 1];
            let reported = s.percentile(q);
            // Upper bound on the true value, within its 2x bucket.
            prop_assert!(reported >= true_val,
                "q={q}: reported {reported} < true {true_val}");
            prop_assert!(reported <= bucket_bound(bucket_index(true_val)),
                "q={q}: reported {reported} beyond bucket of true {true_val}");
        }
    }

    /// Count and sum are exact.
    #[test]
    fn count_sum_exact(xs in vec(0u64..1u64 << 32, 0..50)) {
        let s = snap_of(&xs);
        prop_assert_eq!(s.count, xs.len() as u64);
        prop_assert_eq!(s.sum, xs.iter().sum::<u64>());
    }
}
