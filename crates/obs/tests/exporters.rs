//! Golden tests for the exporters: the Chrome trace must be valid JSON
//! with matched begin/end pairs per worker track, and the Prometheus
//! document must follow the text exposition format.
//!
//! The vendored serde_json stub is serialize-only, so JSON validity is
//! checked with the small recursive-descent parser below.

use mpl_obs::{chrome_trace, Metric, PromWriter, Sample, SpanRecord};

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation + value tree), enough for trace output.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.i))
        }
    }

    fn parse(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.parse()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.s.get(self.i) {
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("bad escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(format!("unsupported escape at byte {}", self.i)),
                    });
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(format!("bad number at byte {start}"))
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.parse()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

fn span(seq: u64, kind: Metric, worker: u32, start: u64, end: u64) -> SpanRecord {
    SpanRecord {
        seq,
        kind,
        worker,
        start_ns: start,
        end_ns: end,
    }
}

/// Golden test: the Chrome export is valid JSON, every `B` has a matching
/// `E` with the same name on the same track in proper stack order, and
/// sampler gauges show up as counter events.
#[test]
fn chrome_trace_is_valid_json_with_matched_pairs() {
    let spans = vec![
        // Worker 0: an LGC pause containing its three phases.
        span(1, Metric::LgcShield, 0, 1_200, 3_000),
        span(2, Metric::LgcEvacuate, 0, 3_100, 7_000),
        span(3, Metric::LgcReclaim, 0, 7_050, 8_000),
        span(4, Metric::LgcPause, 0, 1_000, 8_500),
        // Worker 1: scheduler activity, disjoint spans.
        span(5, Metric::SchedSteal, 1, 500, 900),
        span(6, Metric::SchedRun, 1, 950, 40_000),
        span(7, Metric::RemsetFlush, 1, 10_000, 11_000),
    ];
    let samples = vec![
        Sample {
            t_ns: 5_000,
            alloc_bytes_per_s: 1e6,
            live_bytes: 4096,
            ..Sample::default()
        },
        Sample {
            t_ns: 15_000,
            alloc_bytes_per_s: 2e6,
            live_bytes: 8192,
            ..Sample::default()
        },
    ];
    let doc = chrome_trace(&spans, &samples);
    let root = parse_json(&doc).expect("chrome trace must be valid JSON");

    let events = match root.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    // 7 spans * 2 + 2 samples * 4 counters + 2 thread_name metadata.
    assert_eq!(events.len(), 7 * 2 + 2 * 4 + 2);

    // Per-track stack check: B pushes, E must match the top of stack.
    use std::collections::HashMap;
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut b_count = 0;
    let mut e_count = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_string();
        assert!(
            ev.get("ts").and_then(Json::as_f64).is_some(),
            "ts must be numeric"
        );
        match ph {
            "B" => {
                b_count += 1;
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                e_count += 1;
                let top = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(
                    top.as_deref(),
                    Some(name.as_str()),
                    "E event must close the innermost open span on tid {tid}"
                );
            }
            "C" => {
                assert!(ev.get("args").and_then(|a| a.get("value")).is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(b_count, 7);
    assert_eq!(e_count, 7);
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
}

/// The Prometheus document follows the exposition format: every
/// non-comment line is `name[{labels}] value`, histogram buckets are
/// cumulative and capped by `+Inf`, and `_count` matches.
#[test]
fn prometheus_document_is_well_formed() {
    let h = mpl_obs::Histogram::new();
    for v in [350u64, 1_700, 1_800, 90_000, 2_000_000_000] {
        h.record(v);
    }
    let mut w = PromWriter::new();
    w.counter("mpl_allocs_total", "Objects allocated", 12345);
    w.gauge("mpl_live_bytes", "Live bytes", 65536.0);
    w.histogram_ns_as_seconds("mpl_lgc_pause_seconds", "LGC pause", &h.snapshot());
    let doc = w.finish();

    let mut inf_seen = false;
    let mut last_cum = 0u64;
    for line in doc.lines() {
        if line.is_empty() || line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .expect("sample line must be `series value`");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        if let Some(rest) = series.strip_prefix("mpl_lgc_pause_seconds_bucket") {
            let cum: u64 = value.parse().unwrap();
            assert!(cum >= last_cum, "bucket counts must be cumulative: {line}");
            last_cum = cum;
            if rest.contains("+Inf") {
                inf_seen = true;
                assert_eq!(cum, 5);
            }
        }
    }
    assert!(inf_seen, "histogram must end with a +Inf bucket");
    assert!(doc.contains("mpl_lgc_pause_seconds_count 5\n"));
    assert!(doc.contains("# TYPE mpl_lgc_pause_seconds histogram"));
    assert!(doc.contains("# TYPE mpl_allocs_total counter"));
    assert!(doc.contains("# TYPE mpl_live_bytes gauge"));
}
