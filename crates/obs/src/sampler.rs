//! Periodic background sampler.
//!
//! [`Sampler::spawn`] starts one thread that calls a caller-supplied tick
//! closure at a fixed interval and retains the resulting [`Sample`]
//! history for export (Chrome counter tracks, Prometheus gauges). The
//! closure lives in `mpl-core` — it diffs `StatsSnapshot`s with
//! `delta(&earlier)` and turns the interval into rates — keeping this
//! crate free of heap/sched types. The thread is stopped (and joined) by
//! [`Sampler::stop`] or drop, so a runtime's sampler never outlives it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::now_ns;

/// Bound on retained history (~10 min at the 100 ms default interval);
/// older samples are dropped from the front.
const MAX_SAMPLES: usize = 6000;

/// One sampler observation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sample {
    /// Timestamp, ns since the telemetry epoch.
    pub t_ns: u64,
    /// Allocation rate over the interval, bytes/second.
    pub alloc_bytes_per_s: f64,
    /// Allocation rate over the interval, objects/second.
    pub allocs_per_s: f64,
    /// Live bytes gauge at sample time.
    pub live_bytes: u64,
    /// Pinned (entangled) bytes gauge at sample time.
    pub pinned_bytes: u64,
    /// Estimated fraction of worker time spent running jobs in the
    /// interval, in `[0, 1]`.
    pub worker_utilization: f64,
}

/// Handle to the background sampling thread.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<Sample>>>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawn the sampler thread. `tick` is called roughly every
    /// `interval` with the actual elapsed time since the previous call
    /// (so rate computations stay exact under scheduling jitter).
    pub fn spawn(
        interval: Duration,
        mut tick: impl FnMut(Duration) -> Sample + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_samples = Arc::clone(&samples);
        let handle = std::thread::Builder::new()
            .name("mpl-obs-sampler".into())
            .spawn(move || {
                let mut last = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::park_timeout(interval);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let now = Instant::now();
                    let sample = tick(now.duration_since(last));
                    last = now;
                    let mut buf = thread_samples.lock().unwrap();
                    if buf.len() >= MAX_SAMPLES {
                        let drop_n = buf.len() + 1 - MAX_SAMPLES;
                        buf.drain(..drop_n);
                    }
                    buf.push(sample);
                }
            })
            .expect("spawn mpl-obs-sampler");
        Sampler {
            stop,
            samples,
            handle: Some(handle),
        }
    }

    /// Copy the retained history.
    pub fn samples(&self) -> Vec<Sample> {
        self.samples.lock().unwrap().clone()
    }

    /// Stop and join the thread (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Convenience constructor for a sample stamped "now".
impl Sample {
    pub fn at_now() -> Sample {
        Sample {
            t_ns: now_ns(),
            ..Sample::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_ticks_and_stops() {
        let mut n = 0u64;
        let mut s = Sampler::spawn(Duration::from_millis(5), move |dt| {
            n += 1;
            Sample {
                t_ns: now_ns(),
                alloc_bytes_per_s: n as f64 / dt.as_secs_f64().max(1e-9),
                ..Sample::default()
            }
        });
        std::thread::sleep(Duration::from_millis(60));
        s.stop();
        let got = s.samples();
        assert!(!got.is_empty(), "sampler never ticked");
        // Timestamps are monotone.
        for w in got.windows(2) {
            assert!(w[1].t_ns >= w[0].t_ns);
        }
        // Stop is sticky: no more ticks after stop.
        let len = got.len();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(s.samples().len(), len);
    }
}
