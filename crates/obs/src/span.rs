//! Per-worker lock-free span recorder.
//!
//! A *span* is a begin/end interval on one worker thread — a GC phase, a
//! scheduler park/steal/run, a remset flush — identified by its [`Metric`]
//! kind. Spans land in per-worker ring buffers (same design as the gc
//! audit event rings: fixed slots, global sequence numbers, `Release`
//! seq-last publication so a racing snapshot sees either the old span or
//! the complete new one). Closing a span also records its duration into
//! the kind's histogram, so the timeline and the percentile tables always
//! agree on what was measured.
//!
//! Disabled cost: [`span_start`] is one relaxed load returning `None`
//! (no clock read); [`span_close`] on a `None` start is one branch.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::metrics::{record_duration, Metric};
use crate::{enabled, now_ns};

/// Number of span rings; workers registered via [`register_worker`] map
/// onto ring `index % RINGS`, unregistered threads round-robin.
const RINGS: usize = 32;
/// Spans retained per ring; older spans are overwritten (counted).
const RING_CAP: usize = 8192;

struct Slot {
    /// Global sequence number, 0 = empty. Written last (release).
    seq: AtomicU64,
    /// `kind << 32 | worker`.
    meta: AtomicU64,
    /// Begin timestamp, ns since the telemetry epoch.
    start: AtomicU64,
    /// End timestamp.
    end: AtomicU64,
}

struct Ring {
    cursor: AtomicUsize,
    slots: [Slot; RING_CAP],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    meta: AtomicU64::new(0),
    start: AtomicU64::new(0),
    end: AtomicU64::new(0),
};
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_RING: Ring = Ring {
    cursor: AtomicUsize::new(0),
    slots: [EMPTY_SLOT; RING_CAP],
};
static RINGBUF: [Ring; RINGS] = [EMPTY_RING; RINGS];

static SEQ: AtomicU64 = AtomicU64::new(0);
static OVERFLOWS: AtomicU64 = AtomicU64::new(0);
/// Round-robin ring assignment for threads that never registered.
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn worker_id() -> usize {
    WORKER_ID.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = NEXT_RING.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

/// Pins the calling thread's spans to worker id `index` (ring
/// `index % RINGS`). The scheduler calls this from its worker-start path
/// so each worker's timeline lives on its own Chrome-trace track.
pub fn register_worker(index: usize) {
    WORKER_ID.with(|c| c.set(index));
}

/// Begin a span: returns the start timestamp if telemetry is enabled,
/// `None` otherwise (one relaxed load, no clock read).
#[inline]
pub fn span_start() -> Option<u64> {
    enabled().then(now_ns)
}

/// Close a span begun with [`span_start`]: records the span into the
/// calling worker's ring and its duration into `kind`'s histogram. A
/// `None` start (telemetry was off at begin) is a no-op.
#[inline]
pub fn span_close(kind: Metric, start: Option<u64>) {
    let Some(start) = start else { return };
    let end = now_ns();
    record_duration(kind, end.saturating_sub(start));
    record_span(kind, start, end);
}

/// RAII span: closes (span + histogram) on drop. For sections with
/// multiple exit points.
pub struct SpanGuard {
    kind: Metric,
    start: Option<u64>,
}

/// Open a [`SpanGuard`] for `kind`. Disabled cost: one relaxed load.
#[inline]
pub fn span_guard(kind: Metric) -> SpanGuard {
    SpanGuard {
        kind,
        start: span_start(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_close(self.kind, self.start);
    }
}

/// Like [`span_close`] but records only the timeline entry, not the
/// duration histogram. Used for sections whose duration already reaches
/// the histogram through an always-on stats counter (LGC/CGC pauses go
/// through `StoreStats::on_*_pause`), so the distribution is not
/// double-counted.
#[inline]
pub fn span_only(kind: Metric, start: Option<u64>) {
    let Some(start) = start else { return };
    record_span(kind, start, now_ns());
}

fn record_span(kind: Metric, start: u64, end: u64) {
    // Feed the flight recorder too: spans only reach here when telemetry
    // was on at open, so no second gate is needed.
    crate::flight::note_span(kind, start, end);
    let worker = worker_id();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let ring = &RINGBUF[worker % RINGS];
    let cur = ring.cursor.fetch_add(1, Ordering::Relaxed);
    if cur >= RING_CAP {
        OVERFLOWS.fetch_add(1, Ordering::Relaxed);
    }
    let slot = &ring.slots[cur % RING_CAP];
    slot.seq.store(0, Ordering::Release);
    slot.meta.store(
        ((kind as u64) << 32) | (worker as u64 & 0xffff_ffff),
        Ordering::Relaxed,
    );
    slot.start.store(start, Ordering::Relaxed);
    slot.end.store(end, Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Release);
}

/// A decoded span from the rings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sequence number (close order).
    pub seq: u64,
    pub kind: Metric,
    /// Worker id recorded at close ([`register_worker`] index, or a
    /// round-robin id for unregistered threads).
    pub worker: u32,
    /// Begin, ns since the telemetry epoch.
    pub start_ns: u64,
    /// End, ns since the telemetry epoch.
    pub end_ns: u64,
}

/// Snapshot all retained spans, sorted by start time (sequence number as
/// tie-break). Safe to call while workers keep recording; torn slots
/// (seq 0 mid-write) are skipped.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in &RINGBUF {
        let filled = ring.cursor.load(Ordering::Relaxed).min(RING_CAP);
        for slot in &ring.slots[..filled] {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let Some(kind) = Metric::from_index((meta >> 32) as usize) else {
                continue;
            };
            out.push(SpanRecord {
                seq,
                kind,
                worker: (meta & 0xffff_ffff) as u32,
                start_ns: slot.start.load(Ordering::Relaxed),
                end_ns: slot.end.load(Ordering::Relaxed),
            });
        }
    }
    out.sort_by_key(|s| (s.start_ns, s.seq));
    out
}

/// Number of spans dropped to ring overwrite since process start.
pub fn span_overflows() -> u64 {
    OVERFLOWS.load(Ordering::Relaxed)
}

/// Clear all rings (bench-harness use between suite phases; racy against
/// concurrent writers by design).
pub fn clear_spans() {
    for ring in &RINGBUF {
        let filled = ring.cursor.load(Ordering::Relaxed).min(RING_CAP);
        for slot in &ring.slots[..filled] {
            slot.seq.store(0, Ordering::Release);
        }
        ring.cursor.store(0, Ordering::Relaxed);
    }
    OVERFLOWS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_start_is_none_and_close_is_noop() {
        // Telemetry is off by default in this test binary.
        if crate::enabled() {
            return; // another test holds an enable ref; covered elsewhere
        }
        assert_eq!(span_start(), None);
        let before = SEQ.load(Ordering::Relaxed);
        span_close(Metric::SchedRun, None);
        assert_eq!(SEQ.load(Ordering::Relaxed), before);
    }
}
