//! A minimal streaming JSON writer.
//!
//! `mpl-obs` is a leaf crate — it cannot depend on `serde` — yet the
//! runtime's machine-readable telemetry report and the serving layer's
//! SLO reports need well-formed JSON that CI can parse. [`JsonWriter`]
//! produces it with explicit begin/end calls and automatic comma
//! placement; the writer tracks nesting so a misuse (closing more than
//! was opened) panics in tests instead of emitting garbage.

/// A push-style JSON writer. Values appended at the top level or inside
/// arrays use the `value_*`/`begin_*` calls; inside objects use the
/// `field_*`/`key` calls.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One frame per open container: `true` once the first element has
    /// been written (so the next element is comma-prefixed).
    frames: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(written) = self.frames.last_mut() {
            if *written {
                self.out.push(',');
            }
            *written = true;
        }
    }

    fn push_str_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.frames.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.frames.pop().expect("end_object with nothing open");
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.frames.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.frames.pop().expect("end_array with nothing open");
        self.out.push(']');
        self
    }

    /// Writes an object key; the next `value_*`/`begin_*` call is its
    /// value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.push_str_escaped(k);
        self.out.push(':');
        // The key's comma slot is spent; the value itself must not add one.
        if let Some(written) = self.frames.last_mut() {
            *written = false;
        }
        self
    }

    /// Writes an unsigned-integer value.
    pub fn value_u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a signed-integer value.
    pub fn value_i64(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a float value (`null` for non-finite floats, which JSON
    /// cannot represent).
    pub fn value_f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.6}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        self.push_str_escaped(v);
        self
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Splices a pre-rendered JSON value in verbatim. The caller owns its
    /// well-formedness — this exists so a document rendered by one
    /// component (e.g. a census snapshot) can nest inside another without
    /// re-walking the data through the writer API.
    pub fn value_raw(&mut self, raw_json: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(raw_json);
        self
    }

    /// `"k": <u64>` in one call.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).value_u64(v)
    }

    /// `"k": <i64>` in one call.
    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k).value_i64(v)
    }

    /// `"k": <f64>` in one call.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).value_f64(v)
    }

    /// `"k": "<str>"` in one call.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).value_str(v)
    }

    /// `"k": <bool>` in one call.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).value_bool(v)
    }

    /// Finishes the document and returns it.
    ///
    /// # Panics
    ///
    /// Panics if a container is still open.
    pub fn finish(self) -> String {
        assert!(
            self.frames.is_empty(),
            "unbalanced JSON writer: {} container(s) still open",
            self.frames.len()
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_round_trips_by_eye() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "e12");
        w.field_u64("requests", 1000);
        w.field_f64("p99_ms", 1.5);
        w.field_bool("ok", true);
        w.key("rates").begin_array();
        w.value_u64(100).value_u64(200);
        w.end_array();
        w.key("tenants").begin_array();
        w.begin_object().field_str("id", "t0").end_object();
        w.begin_object().field_str("id", "t1").end_object();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"e12","requests":1000,"p99_ms":1.500000,"ok":true,"rates":[100,200],"tenants":[{"id":"t0"},{"id":"t1"}]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("k", "a\"b\\c\nd\te\u{1}");
        w.end_object();
        assert_eq!(w.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a").begin_array().end_array();
        w.key("b").begin_object().end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[],"b":{}}"#);
    }

    #[test]
    fn raw_values_splice_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.key("census").value_raw(r#"{"blocks":3}"#);
        w.field_u64("b", 2);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"census":{"blocks":3},"b":2}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(f64::NAN)
            .value_f64(f64::INFINITY)
            .value_f64(1.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,1.000000]");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_finish_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.finish();
    }
}
