//! Labeled metric families: histograms and counters keyed by a runtime
//! string label.
//!
//! The fixed [`crate::metrics::Metric`] registry covers every duration
//! the *runtime* emits, but a serving layer needs per-**tenant** series —
//! request latency per tenant, admissions/sheds per tenant — and tenant
//! names only exist at runtime. A family is a process-global map from
//! `(family, label)` to a shared histogram or counter.
//!
//! Hot-path discipline: `family_histogram` takes a lock to get-or-create,
//! so callers resolve the `Arc<Histogram>` **once** (per tenant, at
//! setup) and record through the Arc — recording itself stays the same
//! wait-free path as every other histogram in this crate. The counter
//! helpers are lock-per-call and meant for per-request (not per-object)
//! granularity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{HistSnapshot, Histogram};

type HistMap = HashMap<(&'static str, String), Arc<Histogram>>;
type CounterMap = HashMap<(&'static str, String), Arc<AtomicU64>>;

fn hists() -> &'static Mutex<HistMap> {
    static HISTS: OnceLock<Mutex<HistMap>> = OnceLock::new();
    HISTS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn counters() -> &'static Mutex<CounterMap> {
    static COUNTERS: OnceLock<Mutex<CounterMap>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Gets (or creates) the histogram for `label` within `family`. Resolve
/// once and cache the `Arc`; recording through it is wait-free.
pub fn family_histogram(family: &'static str, label: &str) -> Arc<Histogram> {
    let mut map = hists().lock().unwrap();
    if let Some(h) = map.get(&(family, label.to_string())) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::new());
    map.insert((family, label.to_string()), Arc::clone(&h));
    h
}

/// Gets (or creates) the counter for `label` within `family`.
pub fn family_counter(family: &'static str, label: &str) -> Arc<AtomicU64> {
    let mut map = counters().lock().unwrap();
    if let Some(c) = map.get(&(family, label.to_string())) {
        return Arc::clone(c);
    }
    let c = Arc::new(AtomicU64::new(0));
    map.insert((family, label.to_string()), Arc::clone(&c));
    c
}

/// Adds to a labeled counter (get-or-create per call; per-request
/// granularity, not per-object).
pub fn family_counter_add(family: &'static str, label: &str, n: u64) {
    family_counter(family, label).fetch_add(n, Ordering::Relaxed);
}

/// Snapshots of every histogram in `family`, sorted by label.
pub fn family_snapshots(family: &'static str) -> Vec<(String, HistSnapshot)> {
    let map = hists().lock().unwrap();
    let mut out: Vec<(String, HistSnapshot)> = map
        .iter()
        .filter(|((f, _), _)| *f == family)
        .map(|((_, label), h)| (label.clone(), h.snapshot()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Current values of every counter in `family`, sorted by label.
pub fn family_counters(family: &'static str) -> Vec<(String, u64)> {
    let map = counters().lock().unwrap();
    let mut out: Vec<(String, u64)> = map
        .iter()
        .filter(|((f, _), _)| *f == family)
        .map(|((_, label), c)| (label.clone(), c.load(Ordering::Relaxed)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Drops every labeled histogram and counter in every family. Existing
/// `Arc`s keep recording into detached instances; fresh lookups start
/// clean. For tests and between experiment configurations.
pub fn reset_families() {
    hists().lock().unwrap().clear();
    counters().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_family_is_shared_by_label() {
        reset_families();
        let a = family_histogram("test_req_latency", "tenant-a");
        let a2 = family_histogram("test_req_latency", "tenant-a");
        assert!(Arc::ptr_eq(&a, &a2));
        a.record(100);
        a2.record(200);
        let b = family_histogram("test_req_latency", "tenant-b");
        b.record(5);
        let snaps = family_snapshots("test_req_latency");
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "tenant-a");
        assert_eq!(snaps[0].1.count, 2);
        assert_eq!(snaps[1].0, "tenant-b");
        assert_eq!(snaps[1].1.count, 1);
        reset_families();
        assert!(family_snapshots("test_req_latency").is_empty());
    }

    #[test]
    fn counter_family_accumulates() {
        reset_families();
        family_counter_add("test_sheds", "t0", 2);
        family_counter_add("test_sheds", "t0", 3);
        family_counter_add("test_sheds", "t1", 1);
        let got = family_counters("test_sheds");
        assert_eq!(
            got,
            vec![("t0".to_string(), 5), ("t1".to_string(), 1)],
            "sorted by label"
        );
        reset_families();
    }
}
