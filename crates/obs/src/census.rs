//! Heap census: structural occupancy and attribution snapshots.
//!
//! A *census* is a point-in-time walk over the heap's side metadata —
//! per-size-class block and line occupancy, fragmentation, pinned and
//! suspect populations, and a per-tenant live-bytes breakdown. `mpl-obs`
//! is a leaf crate, so this module owns only the *data model* and its
//! JSON/Prometheus renderings; the walk itself lives in `mpl-heap`
//! (`Store::census`), which reads each block's bitmaps lock-free and
//! fills these rows in.
//!
//! Two always-cheap companions live here too:
//!
//! * **Entanglement provenance** — a bounded lossy ring of sampled
//!   `(reader depth, owner depth, size class, pinned?)` tuples recorded
//!   by the barrier slow tier (1-in-k, seeded upstream via the
//!   `mpl-fail` `decides` pattern). The census report aggregates the
//!   ring so experiments can say *which* cross-heap edges cause pins,
//!   not just how many.
//! * **GC census deltas** — one compact record per LGC reclaim / CGC
//!   sweep epilogue (they already iterate the bitmaps, so the numbers
//!   are free), kept as a last-value cell and mirrored into the flight
//!   recorder.
//!
//! Overhead discipline: recording a provenance sample or a GC delta is
//! gated on [`crate::enabled`] upstream; the ring write is one
//! `fetch_add` plus one relaxed store.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::flight;
use crate::json::JsonWriter;
use crate::prom::PromWriter;

/// Census rows track at most this many size classes (the heap currently
/// has 4; headroom keeps the aggregation arrays fixed-size).
pub const CENSUS_MAX_CLASSES: usize = 8;

/// Per-size-class occupancy rolled up over every live block of the class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassCensus {
    /// The size class index (last class = overflow/dedicated blocks).
    pub class: usize,
    /// Live blocks serving this class.
    pub blocks: u64,
    /// Of those, blocks retained into the entangled space.
    pub entangled_blocks: u64,
    /// Blocks whose bump cursor reached capacity.
    pub full_blocks: u64,
    /// Blocks with a clean line map (wholesale-freeable by a sweep).
    pub clean_blocks: u64,
    /// Total capacity in words.
    pub capacity_words: u64,
    /// Words consumed by the bump cursors.
    pub allocated_words: u64,
    /// Total lines across the class's blocks.
    pub lines_total: u64,
    /// Lines overlapping the allocated region.
    pub lines_in_use: u64,
    /// Lines painted by the current/last concurrent mark.
    pub lines_marked: u64,
    /// Published objects.
    pub objects: u64,
    /// Currently pinned objects.
    pub pinned_objects: u64,
    /// Sticky entanglement suspects.
    pub suspect_objects: u64,
    /// Logical live bytes attributed to the class's blocks.
    pub live_bytes: u64,
}

impl ClassCensus {
    /// Allocated-words occupancy of the class's capacity, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        ratio(self.allocated_words, self.capacity_words)
    }

    /// Internal fragmentation: the share of bump-allocated bytes that is
    /// *not* logically live (dead-but-unreclaimed plus per-line waste).
    pub fn fragmentation(&self) -> f64 {
        let allocated_bytes = self.allocated_words * 8;
        if allocated_bytes == 0 {
            return 0.0;
        }
        (1.0 - ratio(self.live_bytes, allocated_bytes)).clamp(0.0, 1.0)
    }
}

/// Per-tenant attribution row, keyed by `TenantBudget` heap ownership.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantCensus {
    /// Budget name (tenant identity).
    pub name: String,
    /// Blocks owned by heaps under this tenant's budget.
    pub blocks: u64,
    /// Of those, entangled-space blocks.
    pub entangled_blocks: u64,
    /// Logical live bytes in those blocks (side-metadata truth).
    pub live_bytes: u64,
    /// Pinned objects in those blocks.
    pub pinned_objects: u64,
    /// The tenant budget's own live-bytes gauge, for cross-checking.
    pub budget_live_bytes: u64,
    /// The budget limit (0 = unlimited).
    pub budget_limit: u64,
}

/// Aggregated view of the provenance ring (see [`provenance_record`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProvenanceSummary {
    /// Samples ever recorded (including ones the ring has overwritten).
    pub recorded: u64,
    /// Samples currently retained in the ring (what the rest aggregates).
    pub retained: u64,
    /// Retained samples whose read/write pinned the target.
    pub pinned: u64,
    /// Retained samples per size class of the entangled target.
    pub by_class: [u64; CENSUS_MAX_CLASSES],
    /// Largest reader-vs-owner depth gap seen in the ring.
    pub max_depth_gap: u64,
    /// Mean depth gap over the retained samples.
    pub mean_depth_gap: f64,
}

/// One whole-heap census snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HeapCensus {
    /// Capture timestamp (ns since the telemetry epoch).
    pub at_ns: u64,
    /// Heap-table entries (canonical heaps) at capture.
    pub heaps: u64,
    /// Live blocks at capture.
    pub blocks: u64,
    /// Block ids ever issued (live + freed).
    pub blocks_issued: u64,
    /// Sum of per-block logical live bytes.
    pub live_bytes: u64,
    /// Per-size-class rollups, indexed by class.
    pub classes: Vec<ClassCensus>,
    /// Per-tenant attribution (sorted by name), for budgeted heaps.
    pub tenants: Vec<TenantCensus>,
    /// Blocks owned by heaps with no tenant budget.
    pub unattributed_blocks: u64,
    /// Live bytes in unattributed blocks.
    pub unattributed_live_bytes: u64,
    /// Aggregation of the entanglement-provenance ring at capture.
    pub provenance: ProvenanceSummary,
}

impl HeapCensus {
    /// Whole-heap weighted fragmentation (see [`ClassCensus::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        let allocated: u64 = self.classes.iter().map(|c| c.allocated_words * 8).sum();
        if allocated == 0 {
            return 0.0;
        }
        (1.0 - ratio(self.live_bytes, allocated)).clamp(0.0, 1.0)
    }

    /// Share of live blocks whose line map is clean.
    pub fn clean_block_ratio(&self) -> f64 {
        let clean: u64 = self.classes.iter().map(|c| c.clean_blocks).sum();
        ratio(clean, self.blocks)
    }

    /// Total pinned objects across all classes.
    pub fn pinned_objects(&self) -> u64 {
        self.classes.iter().map(|c| c.pinned_objects).sum()
    }

    /// Total published objects across all classes.
    pub fn objects(&self) -> u64 {
        self.classes.iter().map(|c| c.objects).sum()
    }

    /// Renders the census as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("at_ns", self.at_ns);
        w.field_u64("heaps", self.heaps);
        w.field_u64("blocks", self.blocks);
        w.field_u64("blocks_issued", self.blocks_issued);
        w.field_u64("live_bytes", self.live_bytes);
        w.field_u64("objects", self.objects());
        w.field_u64("pinned_objects", self.pinned_objects());
        w.field_f64("fragmentation", self.fragmentation());
        w.field_f64("clean_block_ratio", self.clean_block_ratio());
        w.key("classes");
        w.begin_array();
        for c in &self.classes {
            w.begin_object();
            w.field_u64("class", c.class as u64);
            w.field_u64("blocks", c.blocks);
            w.field_u64("entangled_blocks", c.entangled_blocks);
            w.field_u64("full_blocks", c.full_blocks);
            w.field_u64("clean_blocks", c.clean_blocks);
            w.field_u64("capacity_words", c.capacity_words);
            w.field_u64("allocated_words", c.allocated_words);
            w.field_u64("lines_total", c.lines_total);
            w.field_u64("lines_in_use", c.lines_in_use);
            w.field_u64("lines_marked", c.lines_marked);
            w.field_u64("objects", c.objects);
            w.field_u64("pinned_objects", c.pinned_objects);
            w.field_u64("suspect_objects", c.suspect_objects);
            w.field_u64("live_bytes", c.live_bytes);
            w.field_f64("occupancy", c.occupancy());
            w.field_f64("fragmentation", c.fragmentation());
            w.end_object();
        }
        w.end_array();
        w.key("tenants");
        w.begin_array();
        for t in &self.tenants {
            w.begin_object();
            w.field_str("name", &t.name);
            w.field_u64("blocks", t.blocks);
            w.field_u64("entangled_blocks", t.entangled_blocks);
            w.field_u64("live_bytes", t.live_bytes);
            w.field_u64("pinned_objects", t.pinned_objects);
            w.field_u64("budget_live_bytes", t.budget_live_bytes);
            w.field_u64("budget_limit", t.budget_limit);
            w.end_object();
        }
        w.end_array();
        w.key("unattributed");
        w.begin_object();
        w.field_u64("blocks", self.unattributed_blocks);
        w.field_u64("live_bytes", self.unattributed_live_bytes);
        w.end_object();
        w.key("provenance");
        w.begin_object();
        w.field_u64("recorded", self.provenance.recorded);
        w.field_u64("retained", self.provenance.retained);
        w.field_u64("pinned", self.provenance.pinned);
        w.key("by_class");
        w.begin_array();
        for n in self.provenance.by_class {
            w.value_u64(n);
        }
        w.end_array();
        w.field_u64("max_depth_gap", self.provenance.max_depth_gap);
        w.field_f64("mean_depth_gap", self.provenance.mean_depth_gap);
        w.end_object();
        if let Some(gc) = last_gc_census() {
            w.key("last_gc");
            w.begin_object();
            w.field_str("kind", gc.kind.name());
            w.field_u64("at_ns", gc.at_ns);
            w.field_u64("live_bytes", gc.live_bytes);
            w.field_u64("blocks", gc.blocks);
            w.field_u64("reclaimed_bytes", gc.reclaimed_bytes);
            w.end_object();
        }
        w.end_object();
        w.finish()
    }

    /// Appends the census metric families to a Prometheus document.
    pub fn write_prometheus(&self, w: &mut PromWriter) {
        w.gauge(
            "mpl_census_live_bytes",
            "Census sum of per-block logical live bytes",
            self.live_bytes as f64,
        );
        w.gauge(
            "mpl_census_blocks",
            "Live size-class blocks at census",
            self.blocks as f64,
        );
        w.gauge(
            "mpl_census_objects",
            "Published objects at census",
            self.objects() as f64,
        );
        w.gauge(
            "mpl_census_pinned_objects",
            "Pinned objects at census",
            self.pinned_objects() as f64,
        );
        w.gauge(
            "mpl_census_fragmentation_ratio",
            "Share of bump-allocated bytes not logically live",
            self.fragmentation(),
        );
        w.gauge(
            "mpl_census_clean_block_ratio",
            "Share of live blocks with a clean line map",
            self.clean_block_ratio(),
        );
        let class_labels: Vec<String> = self.classes.iter().map(|c| c.class.to_string()).collect();
        let series = |f: &dyn Fn(&ClassCensus) -> f64| -> Vec<(&str, f64)> {
            self.classes
                .iter()
                .zip(class_labels.iter())
                .map(|(c, l)| (l.as_str(), f(c)))
                .collect()
        };
        w.labeled_gauge(
            "mpl_census_class_blocks",
            "Live blocks per size class",
            "class",
            &series(&|c| c.blocks as f64),
        );
        w.labeled_gauge(
            "mpl_census_class_live_bytes",
            "Logical live bytes per size class",
            "class",
            &series(&|c| c.live_bytes as f64),
        );
        w.labeled_gauge(
            "mpl_census_class_occupancy_ratio",
            "Allocated-words occupancy per size class",
            "class",
            &series(&|c| c.occupancy()),
        );
        let tenant_rows: Vec<(&str, f64)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), t.live_bytes as f64))
            .collect();
        w.labeled_gauge(
            "mpl_census_tenant_live_bytes",
            "Census live bytes attributed to each tenant budget",
            "tenant",
            &tenant_rows,
        );
        let tenant_blocks: Vec<(&str, f64)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), t.blocks as f64))
            .collect();
        w.labeled_gauge(
            "mpl_census_tenant_blocks",
            "Census blocks attributed to each tenant budget",
            "tenant",
            &tenant_blocks,
        );
        w.counter(
            "mpl_census_entanglement_samples_total",
            "Entanglement-provenance samples recorded (sampled 1-in-k)",
            self.provenance.recorded,
        );
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

// ---------------------------------------------------------------------------
// Entanglement provenance ring.
// ---------------------------------------------------------------------------

/// One sampled entangled access observed by the barrier slow tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvenanceSample {
    /// Depth of the reading/writing task's leaf heap.
    pub reader_depth: u16,
    /// Depth of the entangled object's owner heap.
    pub owner_depth: u16,
    /// Size class of the target object's block.
    pub size_class: u8,
    /// Whether this access pinned the target (a *new* pin, not a re-pin).
    pub pinned: bool,
}

/// Retained provenance samples (lossy: newer overwrite older).
const PROV_CAP: usize = 2048;

#[allow(clippy::declare_interior_mutable_const)]
const PROV_EMPTY: AtomicU64 = AtomicU64::new(0);
static PROV_SLOTS: [AtomicU64; PROV_CAP] = [PROV_EMPTY; PROV_CAP];
static PROV_HEAD: AtomicUsize = AtomicUsize::new(0);

const PROV_VALID: u64 = 1 << 63;

fn pack(s: ProvenanceSample) -> u64 {
    PROV_VALID
        | (u64::from(s.reader_depth) << 32)
        | (u64::from(s.owner_depth) << 16)
        | (u64::from(s.size_class) << 8)
        | u64::from(s.pinned)
}

fn unpack(bits: u64) -> Option<ProvenanceSample> {
    (bits & PROV_VALID != 0).then_some(ProvenanceSample {
        reader_depth: (bits >> 32) as u16,
        owner_depth: (bits >> 16) as u16,
        size_class: (bits >> 8) as u8,
        pinned: bits & 1 != 0,
    })
}

/// Record one sampled entangled access. Callers make the 1-in-k sampling
/// decision (and the [`crate::enabled`] check) upstream; the write here
/// is one `fetch_add` and one relaxed store.
#[inline]
pub fn provenance_record(s: ProvenanceSample) {
    let i = PROV_HEAD.fetch_add(1, Ordering::Relaxed);
    PROV_SLOTS[i % PROV_CAP].store(pack(s), Ordering::Relaxed);
}

/// Samples ever recorded (retained or overwritten).
pub fn provenance_recorded() -> u64 {
    PROV_HEAD.load(Ordering::Relaxed) as u64
}

/// The currently retained samples, oldest position first (ring order,
/// not arrival order once the ring has wrapped).
pub fn provenance_samples() -> Vec<ProvenanceSample> {
    PROV_SLOTS
        .iter()
        .filter_map(|s| unpack(s.load(Ordering::Relaxed)))
        .collect()
}

/// Clears the ring and its recorded count (bench-harness use).
pub fn reset_provenance() {
    for s in &PROV_SLOTS {
        s.store(0, Ordering::Relaxed);
    }
    PROV_HEAD.store(0, Ordering::Relaxed);
}

/// Aggregates the retained provenance samples.
pub fn provenance_summary() -> ProvenanceSummary {
    let samples = provenance_samples();
    let mut sum = ProvenanceSummary {
        recorded: provenance_recorded(),
        retained: samples.len() as u64,
        ..ProvenanceSummary::default()
    };
    let mut gap_total = 0u64;
    for s in &samples {
        if s.pinned {
            sum.pinned += 1;
        }
        sum.by_class[(s.size_class as usize).min(CENSUS_MAX_CLASSES - 1)] += 1;
        let gap = u64::from(s.reader_depth.abs_diff(s.owner_depth));
        gap_total += gap;
        sum.max_depth_gap = sum.max_depth_gap.max(gap);
    }
    if !samples.is_empty() {
        sum.mean_depth_gap = gap_total as f64 / samples.len() as f64;
    }
    sum
}

// ---------------------------------------------------------------------------
// GC census deltas (piggybacked on LGC reclaim / CGC sweep epilogues).
// ---------------------------------------------------------------------------

/// Which collector produced a [`GcCensus`] delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcCensusKind {
    /// Local (moving) collection reclaim epilogue.
    Lgc,
    /// Concurrent collection sweep/epilogue completion.
    Cgc,
}

impl GcCensusKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GcCensusKind::Lgc => "lgc",
            GcCensusKind::Cgc => "cgc",
        }
    }
}

/// A compact census delta recorded at a collection epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcCensus {
    /// The collector that produced it.
    pub kind: GcCensusKind,
    /// Timestamp (ns since the telemetry epoch).
    pub at_ns: u64,
    /// Whole-heap live bytes after the collection.
    pub live_bytes: u64,
    /// Live blocks after the collection.
    pub blocks: u64,
    /// Bytes reclaimed by this collection.
    pub reclaimed_bytes: u64,
}

static LAST_GC: Mutex<Option<GcCensus>> = Mutex::new(None);
static GC_CENSUSES: AtomicU64 = AtomicU64::new(0);

/// Record a collection-epilogue census delta: updates the last-value
/// cell and appends a census event to the flight recorder. Callers gate
/// on [`crate::enabled`]; epilogues are not hot paths, so a mutex is fine.
pub fn note_gc_census(kind: GcCensusKind, live_bytes: u64, blocks: u64, reclaimed_bytes: u64) {
    let at_ns = crate::now_ns();
    let rec = GcCensus {
        kind,
        at_ns,
        live_bytes,
        blocks,
        reclaimed_bytes,
    };
    *LAST_GC.lock().unwrap() = Some(rec);
    GC_CENSUSES.fetch_add(1, Ordering::Relaxed);
    let code = match kind {
        GcCensusKind::Lgc => flight::EV_LGC_CENSUS,
        GcCensusKind::Cgc => flight::EV_CGC_CENSUS,
    };
    flight::flight_record_at(
        at_ns,
        flight::FlightKind::Census,
        code,
        live_bytes,
        reclaimed_bytes,
    );
}

/// The most recent GC census delta, if any collection has completed
/// while telemetry was enabled.
pub fn last_gc_census() -> Option<GcCensus> {
    *LAST_GC.lock().unwrap()
}

/// Total GC census deltas recorded since process start.
pub fn gc_censuses() -> u64 {
    GC_CENSUSES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(reader: u16, owner: u16, class: u8, pinned: bool) -> ProvenanceSample {
        ProvenanceSample {
            reader_depth: reader,
            owner_depth: owner,
            size_class: class,
            pinned,
        }
    }

    #[test]
    fn provenance_pack_roundtrip() {
        for s in [
            sample(0, 0, 0, false),
            sample(7, 2, 3, true),
            sample(u16::MAX, 1, 255, false),
        ] {
            assert_eq!(unpack(pack(s)), Some(s));
        }
        assert_eq!(unpack(0), None);
    }

    #[test]
    fn provenance_ring_records_and_aggregates() {
        reset_provenance();
        provenance_record(sample(5, 1, 2, true));
        provenance_record(sample(3, 3, 0, false));
        let sum = provenance_summary();
        assert_eq!(sum.recorded, 2);
        assert_eq!(sum.retained, 2);
        assert_eq!(sum.pinned, 1);
        assert_eq!(sum.by_class[2], 1);
        assert_eq!(sum.by_class[0], 1);
        assert_eq!(sum.max_depth_gap, 4);
        assert!((sum.mean_depth_gap - 2.0).abs() < 1e-9);
        reset_provenance();
        assert_eq!(provenance_summary().retained, 0);
    }

    #[test]
    fn census_json_is_balanced_and_has_sections() {
        let census = HeapCensus {
            at_ns: 1,
            heaps: 2,
            blocks: 3,
            blocks_issued: 4,
            live_bytes: 640,
            classes: vec![ClassCensus {
                class: 0,
                blocks: 3,
                capacity_words: 512,
                allocated_words: 128,
                live_bytes: 640,
                objects: 20,
                ..ClassCensus::default()
            }],
            tenants: vec![TenantCensus {
                name: "t\"0".to_string(),
                blocks: 1,
                entangled_blocks: 0,
                live_bytes: 320,
                pinned_objects: 0,
                budget_live_bytes: 320,
                budget_limit: 4096,
            }],
            unattributed_blocks: 2,
            unattributed_live_bytes: 320,
            provenance: ProvenanceSummary::default(),
        };
        let json = census.to_json();
        for key in [
            "\"classes\"",
            "\"tenants\"",
            "\"provenance\"",
            "\"fragmentation\"",
            "\"clean_block_ratio\"",
            "\"unattributed\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
    }

    #[test]
    fn census_prometheus_families_are_labeled() {
        let census = HeapCensus {
            blocks: 2,
            live_bytes: 100,
            classes: vec![
                ClassCensus {
                    class: 0,
                    blocks: 1,
                    allocated_words: 10,
                    capacity_words: 20,
                    live_bytes: 60,
                    ..ClassCensus::default()
                },
                ClassCensus {
                    class: 3,
                    blocks: 1,
                    live_bytes: 40,
                    ..ClassCensus::default()
                },
            ],
            tenants: vec![TenantCensus {
                name: "acme".to_string(),
                blocks: 1,
                entangled_blocks: 0,
                live_bytes: 40,
                pinned_objects: 0,
                budget_live_bytes: 40,
                budget_limit: 0,
            }],
            ..HeapCensus::default()
        };
        let mut w = PromWriter::new();
        census.write_prometheus(&mut w);
        let doc = w.finish();
        assert!(doc.contains("mpl_census_live_bytes 100"));
        assert!(doc.contains("mpl_census_class_blocks{class=\"0\"} 1"));
        assert!(doc.contains("mpl_census_class_blocks{class=\"3\"} 1"));
        assert!(doc.contains("mpl_census_tenant_live_bytes{tenant=\"acme\"} 40"));
        assert!(doc.contains("# TYPE mpl_census_fragmentation_ratio gauge"));
    }

    #[test]
    fn fragmentation_bounds() {
        let mut c = ClassCensus {
            allocated_words: 100,
            live_bytes: 800,
            ..ClassCensus::default()
        };
        assert!(
            c.fragmentation().abs() < 1e-9,
            "fully live: no fragmentation"
        );
        c.live_bytes = 0;
        assert!((c.fragmentation() - 1.0).abs() < 1e-9);
        c.allocated_words = 0;
        assert_eq!(c.fragmentation(), 0.0);
    }
}
