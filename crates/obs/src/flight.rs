//! The GC flight recorder: a bounded binary ring of recent telemetry.
//!
//! Aviation-style black box for the runtime: while telemetry is enabled,
//! every closed span, every GC census delta, and every anomaly event
//! (allocation failure, watchdog stall, audit failure) lands in a fixed
//! global ring. When something goes wrong the ring is **dumped** to a
//! compact binary file — automatically on a GC-watchdog stall, an
//! `AllocError`, or a chaos-detected audit failure — so a post-mortem
//! has the last few thousand things the runtime did, in order, without
//! anyone having had to arrange tracing in advance.
//!
//! The ring reuses the span-ring publication idiom (seq written 0 first
//! with `Release`, payload relaxed, final seq `Release` last), so a
//! racing dump sees either the old record or the complete new one,
//! never a torn one. Recording costs a `fetch_add` and five stores;
//! disabled cost is the usual one relaxed load upstream.
//!
//! The dump format is deliberately simple — a magic header, a record
//! count, and fixed 32-byte little-endian records — decodable by
//! [`flight_decode`] and renderable as Chrome-trace JSON by
//! [`flight_chrome_trace`] (see `examples/flight_decode.rs`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::json::JsonWriter;
use crate::metrics::Metric;
use crate::{enabled, now_ns};

/// Record kinds in the ring / dump format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A closed telemetry span: `code` = metric index, `a` = start ns,
    /// `b` = end ns.
    Span = 1,
    /// A point anomaly event (`EV_*` code); `a`/`b` carry context.
    Event = 2,
    /// A GC census delta: `a` = live bytes after, `b` = reclaimed bytes.
    Census = 3,
}

impl FlightKind {
    fn from_u32(v: u32) -> Option<FlightKind> {
        match v {
            1 => Some(FlightKind::Span),
            2 => Some(FlightKind::Event),
            3 => Some(FlightKind::Census),
            _ => None,
        }
    }
}

/// Event code: a recoverable allocation failure surfaced as `AllocError`
/// (`a` = requested bytes, `b` = live bytes at failure).
pub const EV_ALLOC_ERROR: u32 = 1;
/// Event code: the GC watchdog declared a phase stalled (`a` = phase
/// age ns, `b` = deadline ns).
pub const EV_WATCHDOG_STALL: u32 = 2;
/// Event code: a heap audit failed (`a` = issue count).
pub const EV_AUDIT_FAILURE: u32 = 3;
/// Census code: LGC reclaim epilogue.
pub const EV_LGC_CENSUS: u32 = 4;
/// Census code: CGC sweep/epilogue completion.
pub const EV_CGC_CENSUS: u32 = 5;
/// Event code: a server tenant's circuit breaker opened (`a` = tenant
/// index, `b` = consecutive failures that tripped it).
pub const EV_BREAKER_OPEN: u32 = 6;
/// Event code: a deadline storm — a burst of request timeouts in one
/// observation window (`a` = timeouts in the window, `b` = window
/// length in requests).
pub const EV_DEADLINE_STORM: u32 = 7;

/// Human-readable name for an event/census code.
pub fn event_name(kind: FlightKind, code: u32) -> &'static str {
    match (kind, code) {
        (FlightKind::Event, EV_ALLOC_ERROR) => "alloc_error",
        (FlightKind::Event, EV_WATCHDOG_STALL) => "watchdog_stall",
        (FlightKind::Event, EV_AUDIT_FAILURE) => "audit_failure",
        (FlightKind::Event, EV_BREAKER_OPEN) => "breaker_open",
        (FlightKind::Event, EV_DEADLINE_STORM) => "deadline_storm",
        (FlightKind::Census, EV_LGC_CENSUS) => "lgc_census",
        (FlightKind::Census, EV_CGC_CENSUS) => "cgc_census",
        (FlightKind::Span, _) => "span",
        _ => "unknown",
    }
}

/// One decoded flight record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Record timestamp, ns since the telemetry epoch.
    pub t_ns: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// Kind-specific code (metric index for spans, `EV_*` otherwise).
    pub code: u32,
    /// First payload word (see the kind docs).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Records retained in the ring; older records are overwritten.
const FLIGHT_CAP: usize = 4096;

struct Slot {
    /// Global sequence, 0 = empty. Written last (release).
    seq: AtomicU64,
    t_ns: AtomicU64,
    /// `kind << 32 | code`.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    t_ns: AtomicU64::new(0),
    meta: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
};
static RING: [Slot; FLIGHT_CAP] = [EMPTY_SLOT; FLIGHT_CAP];
static SEQ: AtomicU64 = AtomicU64::new(0);
static CURSOR: AtomicUsize = AtomicUsize::new(0);
static DUMPS: AtomicU64 = AtomicU64::new(0);

/// Per-process cap on automatic dumps: post-mortems want the first few
/// incidents, not a disk full of rings when a chaos suite sheds
/// thousands of requests.
const MAX_DUMPS: u64 = 16;

/// Append one record with an explicit timestamp (collectors pass the
/// timestamp they already took). No enabled gate — callers apply it.
pub fn flight_record_at(t_ns: u64, kind: FlightKind, code: u32, a: u64, b: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = &RING[CURSOR.fetch_add(1, Ordering::Relaxed) % FLIGHT_CAP];
    slot.seq.store(0, Ordering::Release);
    slot.t_ns.store(t_ns, Ordering::Relaxed);
    slot.meta
        .store((kind as u64) << 32 | u64::from(code), Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Release);
}

/// Append one record stamped now, if telemetry is enabled (the usual
/// one-relaxed-load gate otherwise).
#[inline]
pub fn flight_record(kind: FlightKind, code: u32, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    flight_record_at(now_ns(), kind, code, a, b);
}

/// Feed from the span ring: called by `record_span`, which only runs for
/// spans opened while telemetry was enabled.
#[inline]
pub(crate) fn note_span(metric: Metric, start_ns: u64, end_ns: u64) {
    flight_record_at(end_ns, FlightKind::Span, metric as u32, start_ns, end_ns);
}

/// Snapshot the retained records in sequence (arrival) order. Torn
/// slots mid-write are skipped.
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let mut out: Vec<(u64, FlightEvent)> = Vec::new();
    let filled = CURSOR.load(Ordering::Relaxed).min(FLIGHT_CAP);
    for slot in &RING[..filled] {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 {
            continue;
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let Some(kind) = FlightKind::from_u32((meta >> 32) as u32) else {
            continue;
        };
        out.push((
            seq,
            FlightEvent {
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind,
                code: meta as u32,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            },
        ));
    }
    out.sort_by_key(|(seq, _)| *seq);
    out.into_iter().map(|(_, e)| e).collect()
}

/// Total records ever appended (retained or overwritten).
pub fn flight_recorded() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// Clear the ring (bench-harness use; racy against writers by design).
pub fn clear_flight() {
    let filled = CURSOR.load(Ordering::Relaxed).min(FLIGHT_CAP);
    for slot in &RING[..filled] {
        slot.seq.store(0, Ordering::Release);
    }
    CURSOR.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Binary dump format.
// ---------------------------------------------------------------------------

/// Magic bytes opening every flight dump (format version in the tail).
pub const FLIGHT_MAGIC: &[u8; 8] = b"MPLFLT01";

/// Encode records into the dump format: magic, little-endian u32 count,
/// then fixed 32-byte records (`t_ns`, `kind`, `code`, `a`, `b`).
pub fn flight_encode(events: &[FlightEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FLIGHT_MAGIC.len() + 4 + events.len() * 32);
    out.extend_from_slice(FLIGHT_MAGIC);
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.t_ns.to_le_bytes());
        out.extend_from_slice(&(e.kind as u32).to_le_bytes());
        out.extend_from_slice(&e.code.to_le_bytes());
        out.extend_from_slice(&e.a.to_le_bytes());
        out.extend_from_slice(&e.b.to_le_bytes());
    }
    out
}

/// Decode a dump produced by [`flight_encode`].
pub fn flight_decode(bytes: &[u8]) -> Result<Vec<FlightEvent>, String> {
    if bytes.len() < FLIGHT_MAGIC.len() + 4 {
        return Err("truncated flight dump: missing header".to_string());
    }
    if &bytes[..FLIGHT_MAGIC.len()] != FLIGHT_MAGIC {
        return Err("not a flight dump (bad magic)".to_string());
    }
    let mut off = FLIGHT_MAGIC.len();
    let read_u32 = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let read_u64 = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let count = read_u32(off) as usize;
    off += 4;
    if bytes.len() < off + count * 32 {
        return Err(format!(
            "truncated flight dump: header promises {count} records, payload holds {}",
            (bytes.len() - off) / 32
        ));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let base = off + i * 32;
        let kind = FlightKind::from_u32(read_u32(base + 8))
            .ok_or_else(|| format!("record {i}: unknown kind"))?;
        out.push(FlightEvent {
            t_ns: read_u64(base),
            kind,
            code: read_u32(base + 12),
            a: read_u64(base + 16),
            b: read_u64(base + 24),
        });
    }
    Ok(out)
}

/// Dump the current ring to a file and return its path.
///
/// The dump lands in `MPL_FLIGHT_DIR` if set, else the OS temp dir, as
/// `mpl-flight-<reason>-<pid>-<n>.bin`. Returns `None` when telemetry
/// is disabled, the per-process dump cap is exhausted, or the write
/// fails — automatic dumping must never take down the process it is
/// trying to explain.
pub fn dump_flight(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let n = DUMPS.fetch_add(1, Ordering::Relaxed);
    if n >= MAX_DUMPS {
        return None;
    }
    let dir = std::env::var_os("MPL_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "mpl-flight-{reason}-{}-{n}.bin",
        std::process::id()
    ));
    let events = flight_snapshot();
    std::fs::write(&path, flight_encode(&events)).ok()?;
    Some(path)
}

/// Number of automatic dumps attempted since process start.
pub fn flight_dumps() -> u64 {
    DUMPS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Chrome-trace rendering (the decoder example's output format).
// ---------------------------------------------------------------------------

/// Render decoded flight records as `chrome://tracing`-loadable JSON:
/// spans become complete (`"X"`) events on their metric's category
/// track; anomaly events and census deltas become global instants.
pub fn flight_chrome_trace(events: &[FlightEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    for e in events {
        w.begin_object();
        match e.kind {
            FlightKind::Span => {
                let metric = Metric::from_index(e.code as usize);
                w.field_str("name", metric.map_or("span", |m| m.name()));
                w.field_str("cat", metric.map_or("flight", |m| m.category()));
                w.field_str("ph", "X");
                w.field_f64("ts", e.a as f64 / 1e3);
                w.field_f64("dur", e.b.saturating_sub(e.a) as f64 / 1e3);
            }
            FlightKind::Event | FlightKind::Census => {
                w.field_str("name", event_name(e.kind, e.code));
                w.field_str("cat", "flight");
                w.field_str("ph", "i");
                w.field_str("s", "g");
                w.field_f64("ts", e.t_ns as f64 / 1e3);
                w.key("args");
                w.begin_object();
                w.field_u64("a", e.a);
                w.field_u64("b", e.b);
                w.end_object();
            }
        }
        w.field_u64("pid", 1);
        w.field_u64("tid", 0);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let events = vec![
            FlightEvent {
                t_ns: 10,
                kind: FlightKind::Span,
                code: 0,
                a: 5,
                b: 10,
            },
            FlightEvent {
                t_ns: 20,
                kind: FlightKind::Event,
                code: EV_ALLOC_ERROR,
                a: 4096,
                b: 1 << 20,
            },
            FlightEvent {
                t_ns: 30,
                kind: FlightKind::Census,
                code: EV_LGC_CENSUS,
                a: 12345,
                b: 678,
            },
        ];
        let bytes = flight_encode(&events);
        assert_eq!(flight_decode(&bytes).unwrap(), events);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(flight_decode(b"short").is_err());
        assert!(flight_decode(b"NOTMAGIC\x00\x00\x00\x00").is_err());
        // Count promising more records than the payload holds.
        let mut bytes = FLIGHT_MAGIC.to_vec();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        assert!(flight_decode(&bytes).is_err());
    }

    #[test]
    fn empty_dump_is_parseable() {
        let bytes = flight_encode(&[]);
        assert_eq!(flight_decode(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn ring_records_in_order_and_survives_wrap() {
        // Direct `flight_record_at` bypasses the enabled gate, so this
        // test is independent of other tests' telemetry refs.
        clear_flight();
        for i in 0..(FLIGHT_CAP as u64 + 10) {
            flight_record_at(i, FlightKind::Event, EV_WATCHDOG_STALL, i, 0);
        }
        let snap = flight_snapshot();
        assert_eq!(snap.len(), FLIGHT_CAP);
        // In arrival order, and only the newest CAP retained.
        assert!(snap.windows(2).all(|w| w[0].a < w[1].a));
        assert_eq!(snap.last().unwrap().a, FLIGHT_CAP as u64 + 9);
        clear_flight();
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn chrome_trace_renders_all_kinds() {
        let events = vec![
            FlightEvent {
                t_ns: 10_000,
                kind: FlightKind::Span,
                code: 0,
                a: 5_000,
                b: 10_000,
            },
            FlightEvent {
                t_ns: 20_000,
                kind: FlightKind::Event,
                code: EV_WATCHDOG_STALL,
                a: 1,
                b: 2,
            },
        ];
        let json = flight_chrome_trace(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"lgc_pause\""), "{json}");
        assert!(json.contains("\"watchdog_stall\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
