//! Chrome trace-event JSON exporter.
//!
//! Produces the [trace-event format] consumed by `chrome://tracing` and
//! Perfetto: one `"ph":"B"`/`"ph":"E"` duration-event pair per recorded
//! span (timestamps in microseconds, one track per worker id) plus
//! `"ph":"C"` counter events for sampler gauges and `"ph":"M"` metadata
//! events naming the tracks. The JSON is built by hand — the vendored
//! serde_json stub is serialize-only and the event shape is fixed, so a
//! string builder is both smaller and dependency-free.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::sampler::Sample;
use crate::span::SpanRecord;

const PID: u32 = 1;

/// Comma-separating event-array builder.
struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn event(&mut self, name: &str, cat: &str, ph: char, ts_ns: u64, tid: u32, args: Option<&str>) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let ts = ts_ns as f64 / 1000.0;
        let _ = write!(
            self.out,
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts:.3},\"pid\":{PID},\"tid\":{tid}"
        );
        if let Some(args) = args {
            let _ = write!(self.out, ",\"args\":{args}");
        }
        self.out.push('}');
    }
}

/// Render spans and sampler history as a `chrome://tracing`-loadable JSON
/// document (`{"traceEvents":[...]}`).
///
/// Spans are grouped per worker track; within a track they are emitted as
/// properly nested `B`/`E` pairs (a span closing before the next one opens
/// is closed first), which is what the viewer's per-thread stack expects.
/// Sampler gauges become counter tracks on tid 0.
pub fn chrome_trace(spans: &[SpanRecord], samples: &[Sample]) -> String {
    let mut em = Emitter {
        out: String::with_capacity(64 + spans.len() * 160 + samples.len() * 360),
        first: true,
    };
    em.out.push_str("{\"traceEvents\":[");

    // Group spans by worker track.
    let mut tracks: BTreeMap<u32, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        tracks.entry(s.worker).or_default().push(s);
    }

    for (&tid, track) in &mut tracks {
        let name_args = format!("{{\"name\":\"worker-{tid}\"}}");
        em.event("thread_name", "__metadata", 'M', 0, tid, Some(&name_args));
        // Outer-first order: by start ascending, longer span first on ties.
        track.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns.cmp(&a.end_ns))
                .then(a.seq.cmp(&b.seq))
        });
        // Sweep with an open-span stack so every B gets its E at the right
        // depth (innermost spans close first).
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in track.iter() {
            while let Some(&open) = stack.last() {
                if open.end_ns <= s.start_ns {
                    em.event(
                        open.kind.name(),
                        open.kind.category(),
                        'E',
                        open.end_ns,
                        tid,
                        None,
                    );
                    stack.pop();
                } else {
                    break;
                }
            }
            em.event(s.kind.name(), s.kind.category(), 'B', s.start_ns, tid, None);
            stack.push(s);
        }
        while let Some(open) = stack.pop() {
            em.event(
                open.kind.name(),
                open.kind.category(),
                'E',
                open.end_ns,
                tid,
                None,
            );
        }
    }

    for s in samples {
        for (name, value) in [
            ("alloc_rate_mib_s", s.alloc_bytes_per_s / (1024.0 * 1024.0)),
            ("live_bytes", s.live_bytes as f64),
            ("pinned_bytes", s.pinned_bytes as f64),
            ("worker_utilization", s.worker_utilization),
        ] {
            let v = if value.is_finite() { value } else { 0.0 };
            let args = format!("{{\"value\":{v:.3}}}");
            em.event(name, "sampler", 'C', s.t_ns, 0, Some(&args));
        }
    }

    em.out.push_str("]}");
    em.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    fn span(seq: u64, kind: Metric, worker: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            seq,
            kind,
            worker,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn nested_spans_emit_balanced_pairs_in_stack_order() {
        // pause [100, 900] containing shield [120, 300] and evacuate
        // [310, 700], plus a disjoint later span [1000, 1100].
        let spans = vec![
            span(4, Metric::LgcPause, 2, 100, 900),
            span(1, Metric::LgcShield, 2, 120, 300),
            span(2, Metric::LgcEvacuate, 2, 310, 700),
            span(5, Metric::SchedRun, 2, 1000, 1100),
        ];
        let json = chrome_trace(&spans, &[]);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 4);
        assert_eq!(e, 4);
        // The pause must open before the shield and close after evacuate.
        let pause_b = json
            .find("\"name\":\"lgc_pause\",\"cat\":\"gc.lgc\",\"ph\":\"B\"")
            .unwrap();
        let shield_b = json
            .find("\"name\":\"lgc_shield\",\"cat\":\"gc.lgc\",\"ph\":\"B\"")
            .unwrap();
        assert!(pause_b < shield_b);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }
}
