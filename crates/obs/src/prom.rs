//! Prometheus text-exposition exporter.
//!
//! Writes the [text format] a Prometheus scraper (or `promtool check
//! metrics`) accepts: `# HELP`/`# TYPE` headers, `counter` and `gauge`
//! samples, and `histogram` families with cumulative `le` buckets plus
//! `+Inf`, `_sum` and `_count`. Durations recorded in nanoseconds are
//! exported in seconds per Prometheus base-unit convention.
//!
//! [text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::hist::{bucket_bound, HistSnapshot, BUCKETS};

/// Incremental writer for one exposition document.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // Trim trailing zeros but keep at least one digit after a point.
    let s = format!("{v:.9}");
    if s.contains('.') {
        let t = s.trim_end_matches('0');
        let t = t.strip_suffix('.').unwrap_or(t);
        t.to_string()
    } else {
        s
    }
}

impl PromWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// A monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {}", format_f64(value));
    }

    /// A gauge family with one label dimension: one sample per
    /// `(label value, sample value)` pair under a single HELP/TYPE
    /// header. Label values are escaped per the exposition format.
    pub fn labeled_gauge(&mut self, name: &str, help: &str, label: &str, series: &[(&str, f64)]) {
        if series.is_empty() {
            return;
        }
        self.header(name, help, "gauge");
        for (value, sample) in series {
            let escaped: String = value
                .chars()
                .flat_map(|c| match c {
                    '\\' => vec!['\\', '\\'],
                    '"' => vec!['\\', '"'],
                    '\n' => vec!['\\', 'n'],
                    c => vec![c],
                })
                .collect();
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{escaped}\"}} {}",
                format_f64(*sample)
            );
        }
    }

    /// A histogram family from a snapshot of nanosecond durations,
    /// exported in seconds. `name` should end in `_seconds`. Empty
    /// buckets between populated ones are skipped (cumulative values stay
    /// monotone, which is all the format requires); `+Inf`, `_sum` and
    /// `_count` are always present.
    pub fn histogram_ns_as_seconds(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        self.header(name, help, "histogram");
        let mut cum = 0u64;
        for i in 0..BUCKETS - 1 {
            cum += snap.buckets[i];
            if snap.buckets[i] == 0 {
                continue;
            }
            let le = bucket_bound(i) as f64 / 1e9;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{}\"}} {cum}", format_f64(le));
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.out, "{name}_sum {}", format_f64(snap.sum as f64 / 1e9));
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// Finish and return the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let h = Histogram::new();
        for v in [10u64, 1_000, 1_000, 2_000_000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram_ns_as_seconds("mpl_test_seconds", "test", &h.snapshot());
        let doc = w.finish();
        assert!(doc.contains("# TYPE mpl_test_seconds histogram"));
        assert!(doc.contains("mpl_test_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(doc.contains("mpl_test_seconds_count 4"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in doc.lines() {
            if let Some(rest) = line.strip_prefix("mpl_test_seconds_bucket") {
                let v: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "non-monotone bucket line: {line}");
                last = v;
            }
        }
    }

    #[test]
    fn format_f64_is_plain_decimal() {
        assert_eq!(format_f64(0.000000001), "0.000000001");
        assert_eq!(format_f64(1.5), "1.5");
        assert_eq!(format_f64(3.0), "3");
        assert_eq!(format_f64(f64::NAN), "0");
    }
}
