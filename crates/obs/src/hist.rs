//! Lock-free log₂-bucketed histograms.
//!
//! A [`Histogram`] is a fixed array of 64 power-of-two buckets plus exact
//! count/sum/max, all plain atomics — [`Histogram::record`] is wait-free and
//! safe to call from any worker concurrently. Bucket `i` covers
//! `[2^(i-1), 2^i)` (bucket 0 holds only the value 0), so relative error of
//! a reported percentile is bounded by 2× — plenty for pause/latency
//! distributions spanning nanoseconds to seconds.
//!
//! Readers take a [`HistSnapshot`] (a plain value type) and aggregate
//! across workers or time windows with [`HistSnapshot::merge`]; percentiles
//! are answered from the snapshot so a report is internally consistent even
//! while writers keep recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; covers the whole `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, clamped to
/// the last bucket. Monotone non-decreasing in `v`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; the last bucket is
/// clamped to `u64::MAX`).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram of `u64` values (durations in nanoseconds, sizes in
/// bytes, …). Const-constructible so it can live in `static` registries.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A new empty histogram (usable in `static` initializers).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: ZERO,
            sum: ZERO,
            max: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Record one value. Wait-free: three `fetch_add`s and a CAS-max loop
    /// that only retries while other writers are raising the max.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.max.load(Ordering::Relaxed);
        while value > cur {
            match self
                .max
                .compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Copy the current contents out. Not atomic across fields (writers may
    /// land between loads), but each field is itself consistent and the
    /// skew is at most the handful of records in flight.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Reset all cells to zero (test/bench harness use; racy against
    /// concurrent writers by design).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain-value copy of a [`Histogram`], suitable for merging and
/// percentile queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Element-wise merge of two snapshots (e.g. the same metric from two
    /// workers, or two time windows). Associative and commutative.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, dst) in buckets.iter_mut().enumerate() {
            *dst = self.buckets[i] + other.buckets[i];
        }
        HistSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Upper bound of the value at quantile `q` in `[0, 1]`: the inclusive
    /// bound of the bucket holding the rank-`ceil(q·count)` value, clamped
    /// to the exact recorded max. Returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Exact arithmetic mean of recorded values (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value is <= its bucket's inclusive bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_index(v)), "v={v}");
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // p50 of 1..=1000 lands in bucket for ~500 → bound 511; never above
        // the true max, never below the true median's bucket lower bound.
        let p50 = s.p50();
        assert!((500..=1000).contains(&p50), "p50={p50}");
        assert!(s.p50() <= s.p90());
        assert!(s.p90() <= s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.percentile(1.0), 1000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 17, 17, 4096, 0] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 1 << 33, 2] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
    }
}
