//! The fixed registry of process-global duration histograms.
//!
//! Every instrumented duration in the runtime is one [`Metric`] variant
//! with a dedicated [`Histogram`] in a `static` array — recording is an
//! index into that array, no locks and no allocation. Workers record
//! directly into the shared histograms (they are lock-free), so "merge
//! across workers" is inherent; [`HistSnapshot::merge`] additionally lets
//! reports combine metrics or time windows.

use crate::hist::{HistSnapshot, Histogram};
use crate::{enabled, now_ns};

/// Every duration the runtime instruments. The discriminant indexes the
/// global histogram registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Whole local-collection (LGC) stop-the-task pause.
    LgcPause = 0,
    /// Whole entangled-collection (CGC) pause (monolithic or one slice).
    CgcPause,
    /// LGC Phase A: shield — mark the shield closure.
    LgcShield,
    /// LGC Phase B: evacuate — copy live objects and fix references.
    LgcEvacuate,
    /// LGC Phase C: reclaim — return dead blocks.
    LgcReclaim,
    /// CGC mark phase (SATB trace over the entangled space).
    CgcMark,
    /// CGC sweep + epilogue.
    CgcSweep,
    /// Slow-tier barrier entry (read or write): locate/LCA/pin/remset work.
    BarrierSlow,
    /// Successful steal: from first probe to a job in hand.
    SchedSteal,
    /// One job execution on a worker.
    SchedRun,
    /// One park interval on an idle worker.
    SchedPark,
    /// One buffered remset flush (grouped publish to ancestor heaps).
    RemsetFlush,
    /// One CGC work packet (trace, sweep, or epilogue unit on a worker).
    CgcPacket,
    /// Allocation-cache refill: the store-path fallback taken when a
    /// task's cached size-class block overflows (or the object is
    /// oversized) — block acquisition plus cache re-adoption.
    AllocRefill,
    /// Cancellation latency: token trip to the run fully unwound
    /// (`Runtime::try_run*` catching the `Cancelled` payload).
    CancelUnwind,
}

/// Number of [`Metric`] variants.
pub const METRIC_COUNT: usize = 15;

/// All metrics, in discriminant order.
pub const ALL_METRICS: [Metric; METRIC_COUNT] = [
    Metric::LgcPause,
    Metric::CgcPause,
    Metric::LgcShield,
    Metric::LgcEvacuate,
    Metric::LgcReclaim,
    Metric::CgcMark,
    Metric::CgcSweep,
    Metric::BarrierSlow,
    Metric::SchedSteal,
    Metric::SchedRun,
    Metric::SchedPark,
    Metric::RemsetFlush,
    Metric::CgcPacket,
    Metric::AllocRefill,
    Metric::CancelUnwind,
];

impl Metric {
    /// Stable snake_case name (used for Prometheus metric names and Chrome
    /// trace event names).
    pub fn name(self) -> &'static str {
        match self {
            Metric::LgcPause => "lgc_pause",
            Metric::CgcPause => "cgc_pause",
            Metric::LgcShield => "lgc_shield",
            Metric::LgcEvacuate => "lgc_evacuate",
            Metric::LgcReclaim => "lgc_reclaim",
            Metric::CgcMark => "cgc_mark",
            Metric::CgcSweep => "cgc_sweep",
            Metric::BarrierSlow => "barrier_slow",
            Metric::SchedSteal => "sched_steal",
            Metric::SchedRun => "sched_run",
            Metric::SchedPark => "sched_park",
            Metric::RemsetFlush => "remset_flush",
            Metric::CgcPacket => "cgc_packet",
            Metric::AllocRefill => "alloc_refill",
            Metric::CancelUnwind => "cancel_unwind",
        }
    }

    /// One-line description (Prometheus `# HELP`).
    pub fn help(self) -> &'static str {
        match self {
            Metric::LgcPause => "Local collection stop-the-task pause",
            Metric::CgcPause => "Entangled collection pause (monolithic or slice)",
            Metric::LgcShield => "LGC phase A (shield) duration",
            Metric::LgcEvacuate => "LGC phase B (evacuate) duration",
            Metric::LgcReclaim => "LGC phase C (reclaim) duration",
            Metric::CgcMark => "CGC mark phase duration",
            Metric::CgcSweep => "CGC sweep+epilogue duration",
            Metric::BarrierSlow => "Slow-tier barrier entry latency",
            Metric::SchedSteal => "Successful steal latency",
            Metric::SchedRun => "Job run time on a worker",
            Metric::SchedPark => "Idle worker park interval",
            Metric::RemsetFlush => "Buffered remset flush duration",
            Metric::CgcPacket => "One CGC work packet on a scheduler worker",
            Metric::AllocRefill => "Allocation-cache refill (store-path block overflow fallback)",
            Metric::CancelUnwind => "Cancellation latency (token trip to run fully unwound)",
        }
    }

    /// Chrome-trace category for the subsystem this metric belongs to.
    pub fn category(self) -> &'static str {
        match self {
            Metric::LgcPause | Metric::LgcShield | Metric::LgcEvacuate | Metric::LgcReclaim => {
                "gc.lgc"
            }
            Metric::CgcPause | Metric::CgcMark | Metric::CgcSweep | Metric::CgcPacket => "gc.cgc",
            Metric::BarrierSlow | Metric::RemsetFlush => "barrier",
            Metric::SchedSteal | Metric::SchedRun | Metric::SchedPark => "sched",
            Metric::AllocRefill => "alloc",
            Metric::CancelUnwind => "cancel",
        }
    }

    /// Reconstruct a metric from its discriminant (span ring decode).
    pub(crate) fn from_index(i: usize) -> Option<Metric> {
        ALL_METRICS.get(i).copied()
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_HIST: Histogram = Histogram::new();
static REGISTRY: [Histogram; METRIC_COUNT] = [EMPTY_HIST; METRIC_COUNT];

/// The global histogram for a metric. Callers may `record` on it directly;
/// prefer [`record_duration`] which applies the enabled gate.
pub fn histogram(metric: Metric) -> &'static Histogram {
    &REGISTRY[metric as usize]
}

/// Record a duration (nanoseconds) into a metric's histogram. When
/// telemetry is disabled this is one relaxed load and a predicted branch.
#[inline]
pub fn record_duration(metric: Metric, ns: u64) {
    if !enabled() {
        return;
    }
    REGISTRY[metric as usize].record(ns);
}

/// Snapshot every metric's histogram (empty ones included, in
/// discriminant order).
pub fn metric_snapshots() -> Vec<(Metric, HistSnapshot)> {
    ALL_METRICS
        .iter()
        .map(|&m| (m, histogram(m).snapshot()))
        .collect()
}

/// Zero every histogram (bench-harness use, e.g. between suite phases).
pub fn reset_metrics() {
    for m in ALL_METRICS {
        histogram(m).reset();
    }
}

/// RAII duration recorder: captures a start timestamp if telemetry is on
/// and records into `metric` on drop. Used where a timed section has many
/// exit points (e.g. the slow-tier barrier).
pub struct Timer {
    metric: Metric,
    start: Option<u64>,
}

/// Start a [`Timer`] for `metric`. Disabled cost: one relaxed load.
#[inline]
pub fn timer(metric: Metric) -> Timer {
    Timer {
        metric,
        start: enabled().then(now_ns),
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_duration(self.metric, now_ns().saturating_sub(start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for m in ALL_METRICS {
            assert!(seen.insert(m.name()), "duplicate name {}", m.name());
            assert!(m.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert_eq!(Metric::from_index(m as usize), Some(m));
        }
        assert_eq!(Metric::from_index(METRIC_COUNT), None);
    }
}
