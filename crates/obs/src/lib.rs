//! # mpl-obs — always-on runtime telemetry
//!
//! Production GC runtimes treat per-phase timing and percentile latency as a
//! first-class subsystem; a single `pause_ns_max` counter cannot answer the
//! distributional questions the paper's claims are about ("small time and
//! space overhead", pauses bounded by entanglement cost metrics). This crate
//! is that subsystem for the MPL reproduction:
//!
//! * [`hist`] — lock-free log₂-bucketed histograms (p50/p90/p99/max),
//!   mergeable across workers via [`HistSnapshot::merge`].
//! * [`metrics`] — a fixed registry of process-global histograms, one per
//!   instrumented duration ([`Metric`]): LGC/CGC pause, per-GC-phase
//!   duration, slow-tier barrier latency, steal latency, job run time, …
//! * [`span`] — per-worker lock-free begin/end span rings (worker id +
//!   monotonic timestamps) covering GC phases, scheduler park/steal/run and
//!   remset flushes.
//! * [`chrome`] — `chrome://tracing`-loadable trace-event JSON exporter.
//! * [`prom`] — Prometheus text-exposition exporter for counters, gauges
//!   and histograms.
//! * [`sampler`] — a periodic background sampler thread for rate/gauge
//!   series (allocation rate, live/pinned bytes, worker utilization).
//!
//! ## Overhead discipline
//!
//! The crate follows the same disabled-cost rule as `mpl-heap`'s `events`
//! module: every emission site pays **one relaxed atomic load and a
//! predicted-not-taken branch** when telemetry is off. Nothing is allocated,
//! no timestamps are taken, and [`span_start`] returns `None` without
//! reading the clock. `mpl-obs` is a leaf crate — it depends on no other
//! workspace crate, so heap, gc, sched and core can all emit into it.
//!
//! Enablement is refcounted ([`enable`]/[`disable`]) so nested runtimes
//! compose, mirroring the audit layer; the `MPL_TELEMETRY` environment
//! variable force-enables collection for a whole process.

pub mod census;
pub mod chrome;
pub mod family;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod sampler;
pub mod span;

pub use census::{
    gc_censuses, last_gc_census, note_gc_census, provenance_record, provenance_recorded,
    provenance_samples, provenance_summary, reset_provenance, ClassCensus, GcCensus, GcCensusKind,
    HeapCensus, ProvenanceSample, ProvenanceSummary, TenantCensus, CENSUS_MAX_CLASSES,
};
pub use chrome::chrome_trace;
pub use family::{
    family_counter, family_counter_add, family_counters, family_histogram, family_snapshots,
    reset_families,
};
pub use flight::{
    clear_flight, dump_flight, event_name, flight_chrome_trace, flight_decode, flight_dumps,
    flight_encode, flight_record, flight_recorded, flight_snapshot, FlightEvent, FlightKind,
    EV_ALLOC_ERROR, EV_AUDIT_FAILURE, EV_BREAKER_OPEN, EV_CGC_CENSUS, EV_DEADLINE_STORM,
    EV_LGC_CENSUS, EV_WATCHDOG_STALL,
};
pub use hist::{bucket_bound, bucket_index, HistSnapshot, Histogram, BUCKETS};
pub use json::JsonWriter;
pub use metrics::{
    histogram, metric_snapshots, record_duration, reset_metrics, timer, Metric, Timer, METRIC_COUNT,
};
pub use prom::PromWriter;
pub use sampler::{Sample, Sampler};
pub use span::{
    clear_spans, register_worker, snapshot_spans, span_close, span_guard, span_only, span_start,
    SpanGuard, SpanRecord,
};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Fast-path flag: `true` while at least one enabler is active. Emission
/// sites check only this (one relaxed load).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Refcount of active enablers ([`enable`] calls minus [`disable`] calls,
/// plus one permanent reference if `MPL_TELEMETRY` is set).
static REFS: AtomicUsize = AtomicUsize::new(0);

/// Whether telemetry collection is currently enabled.
///
/// This is the only check on the disabled path: a relaxed load and a
/// predicted branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable telemetry collection. Refcounted: collection stays on until every
/// `enable` has been matched by a [`disable`].
pub fn enable() {
    REFS.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Drop one enable reference; collection turns off when the count reaches
/// zero. Unbalanced calls are clamped at zero.
pub fn disable() {
    let mut cur = REFS.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return;
        }
        match REFS.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                if cur == 1 {
                    ENABLED.store(false, Ordering::Relaxed);
                }
                return;
            }
            Err(seen) => cur = seen,
        }
    }
}

/// Apply the `MPL_TELEMETRY` environment opt-in once per process. If the
/// variable is set to anything but `0`/empty, a permanent enable reference
/// is taken so collection is on for the whole process lifetime.
pub fn init_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let on = std::env::var("MPL_TELEMETRY")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if on {
            enable();
        }
    });
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process telemetry epoch (first call).
///
/// All spans and samples share this clock, so timestamps from different
/// workers interleave correctly in the exported timeline.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_is_refcounted() {
        // Note: other tests in this binary may hold references; work with
        // deltas rather than absolute state.
        let base = enabled();
        enable();
        enable();
        assert!(enabled());
        disable();
        assert!(enabled());
        disable();
        assert_eq!(enabled(), base);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
