//! # mpl-serve — multi-tenant session serving on the MPL runtime
//!
//! A long-running service layer over one persistent [`mpl_runtime::Runtime`]:
//! each **tenant** owns a per-tenant root heap with an attached
//! [`mpl_heap::TenantBudget`] and a set of persistent **sessions** (caches,
//! counters, feed structures rooted across requests); each **request** is a
//! fork/join DAG over that shared mutable state, with a disentangled or
//! entangled access profile selectable per tenant.
//!
//! The crate provides the three pieces the E12 experiment needs:
//!
//! * [`traffic`] — a *deterministic open-loop* traffic generator: seeded
//!   Poisson or uniform arrivals, a weighted request mix, and a schedule
//!   digest for same-seed/any-worker-count reproducibility checks.
//! * [`server`] — the dispatcher: admission control against per-tenant
//!   budgets (shed or retry-after-collection), per-request deadlines with
//!   seeded-jitter retry/backoff, per-tenant circuit breakers, a brownout
//!   ladder driven by timeout rate + census fragmentation + GC pause
//!   histograms, [`mpl_fail`] failpoints on the admit/shed paths, and
//!   per-request latency measured from the *scheduled* arrival (open
//!   loop: no coordinated omission).
//! * [`report`] — the SLO reporter: per-tenant p50/p99/p999 latency,
//!   goodput, shed counts, GC pause overlap from
//!   [`StatsSnapshot::delta`](mpl_heap::StatsSnapshot::delta), and the
//!   live-bytes slope from the runtime's telemetry sampler.
//!
//! ```
//! use mpl_runtime::{Runtime, RuntimeConfig};
//! use mpl_serve::{Server, TenantSpec, TrafficConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::managed());
//! let mut server = Server::new(&rt, vec![TenantSpec::new("t0", 1 << 20)]);
//! let traffic = TrafficConfig {
//!     requests: 50,
//!     rate_hz: 5_000.0,
//!     ..TrafficConfig::default()
//! };
//! let rep = server.run(&traffic);
//! assert_eq!(rep.offered, 50);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod server;
pub mod tenant;
pub mod traffic;
pub mod workload;

pub use report::{GcReport, ServerReport, TenantReport};
pub use server::{Brownout, Server};
pub use tenant::{Breaker, BreakerState, Tenant, TenantSpec};
pub use traffic::{
    schedule, schedule_digest, Arrival, ArrivalProcess, RequestKind, RequestMix, SplitMix64,
    TrafficConfig,
};
pub use workload::{Profile, SessionState};
