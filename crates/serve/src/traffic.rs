//! Deterministic open-loop traffic generation.
//!
//! The whole schedule — arrival instants, tenant/session routing, request
//! kinds, payload sizes — is a pure function of [`TrafficConfig`]: one
//! SplitMix64 stream, drawn in a fixed per-arrival order, no wall clock.
//! The dispatcher replays the schedule against real time, so two runs with
//! the same seed offer *exactly* the same load regardless of worker count,
//! scheduler interleaving, or how far behind the server falls. The
//! [`schedule_digest`] hash is the cheap witness the determinism tests and
//! the E12 report record.

/// SplitMix64: the 64-bit finalizer-based PRNG (Steele et al.), used here
/// because it is seedable, trivially portable, and has no global state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The inter-arrival process of the open-loop generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps, `-ln(1-U)/rate`. The bursty
    /// case — instantaneous offered load far exceeds the mean.
    Poisson,
    /// Evenly spaced arrivals at exactly `1/rate`. The smooth baseline.
    Uniform,
}

/// What a request does to its session's state (see [`crate::workload`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Fork/join read over the session cache; no retained allocation.
    Read,
    /// Allocate payloads and publish them into cache slots. Under the
    /// entangled profile, siblings read each other's fresh payloads.
    Insert,
    /// Push nodes onto the session feed (a cons list) and walk it.
    Feed,
    /// Walk the feed and scan the cache; read-mostly.
    Scan,
}

/// Relative weights of the four request kinds.
#[derive(Clone, Copy, Debug)]
pub struct RequestMix {
    /// Weight of [`RequestKind::Read`].
    pub read: u32,
    /// Weight of [`RequestKind::Insert`].
    pub insert: u32,
    /// Weight of [`RequestKind::Feed`].
    pub feed: u32,
    /// Weight of [`RequestKind::Scan`].
    pub scan: u32,
}

impl Default for RequestMix {
    /// A read-mostly service mix: 60/25/10/5.
    fn default() -> RequestMix {
        RequestMix {
            read: 60,
            insert: 25,
            feed: 10,
            scan: 5,
        }
    }
}

impl RequestMix {
    /// Picks a kind from a raw uniform draw, by cumulative weight.
    pub fn pick(&self, draw: u64) -> RequestKind {
        let total = (self.read + self.insert + self.feed + self.scan).max(1) as u64;
        let x = draw % total;
        if x < self.read as u64 {
            RequestKind::Read
        } else if x < (self.read + self.insert) as u64 {
            RequestKind::Insert
        } else if x < (self.read + self.insert + self.feed) as u64 {
            RequestKind::Feed
        } else {
            RequestKind::Scan
        }
    }
}

/// Everything that determines a schedule. Pure input: two equal configs
/// produce byte-identical schedules.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// PRNG seed for the whole schedule.
    pub seed: u64,
    /// Aggregate offered arrival rate, requests per second.
    pub rate_hz: f64,
    /// Total number of requests to offer (duration ≈ `requests / rate_hz`).
    pub requests: usize,
    /// Inter-arrival process.
    pub process: ArrivalProcess,
    /// Request-kind weights.
    pub mix: RequestMix,
    /// Number of tenants arrivals are routed across.
    pub tenants: usize,
    /// Sessions per tenant arrivals are routed across.
    pub sessions_per_tenant: usize,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            seed: 0x05ee_de12,
            rate_hz: 2_000.0,
            requests: 1_000,
            process: ArrivalProcess::Poisson,
            mix: RequestMix::default(),
            tenants: 1,
            sessions_per_tenant: 2,
        }
    }
}

/// One scheduled request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Scheduled arrival instant, nanoseconds from run start. Latency is
    /// measured from *here*, not from dispatch — open-loop semantics.
    pub at_ns: u64,
    /// Destination tenant index (mod the server's tenant count).
    pub tenant: usize,
    /// Destination session index within the tenant.
    pub session: usize,
    /// Request kind.
    pub kind: RequestKind,
    /// Payload size knob, `1..=8`; the workload scales allocation by it.
    pub size: usize,
}

/// Generates the full arrival schedule for `cfg`. Five PRNG draws per
/// arrival in fixed order (gap, tenant, session, kind, size), so the
/// schedule is reproducible and extending a run only appends.
pub fn schedule(cfg: &TrafficConfig) -> Vec<Arrival> {
    let mut rng = SplitMix64::new(cfg.seed);
    let rate = if cfg.rate_hz > 0.0 { cfg.rate_hz } else { 1.0 };
    let tenants = cfg.tenants.max(1) as u64;
    let sessions = cfg.sessions_per_tenant.max(1) as u64;
    let mut out = Vec::with_capacity(cfg.requests);
    let mut t_ns = 0u64;
    for _ in 0..cfg.requests {
        let gap_s = match cfg.process {
            ArrivalProcess::Poisson => {
                let u = rng.next_f64();
                -(1.0 - u).ln() / rate
            }
            ArrivalProcess::Uniform => {
                let _ = rng.next_f64(); // keep the draw order identical
                1.0 / rate
            }
        };
        t_ns = t_ns.saturating_add((gap_s * 1e9) as u64);
        let tenant = (rng.next_u64() % tenants) as usize;
        let session = (rng.next_u64() % sessions) as usize;
        let kind = cfg.mix.pick(rng.next_u64());
        let size = (rng.next_u64() % 8 + 1) as usize;
        out.push(Arrival {
            at_ns: t_ns,
            tenant,
            session,
            kind,
            size,
        });
    }
    out
}

/// FNV-1a digest over every field of every arrival: a compact witness
/// that two schedules are identical.
pub fn schedule_digest(sched: &[Arrival]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for a in sched {
        mix(a.at_ns);
        mix(a.tenant as u64);
        mix(a.session as u64);
        mix(kind_tag(a.kind));
        mix(a.size as u64);
    }
    h
}

fn kind_tag(k: RequestKind) -> u64 {
    match k {
        RequestKind::Read => 0,
        RequestKind::Insert => 1,
        RequestKind::Feed => 2,
        RequestKind::Scan => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = TrafficConfig {
            tenants: 3,
            ..TrafficConfig::default()
        };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = schedule(&TrafficConfig::default());
        let b = schedule(&TrafficConfig {
            seed: 7,
            ..TrafficConfig::default()
        });
        assert_ne!(schedule_digest(&a), schedule_digest(&b));
    }

    #[test]
    fn arrivals_are_monotone_and_mean_rate_tracks_config() {
        for process in [ArrivalProcess::Poisson, ArrivalProcess::Uniform] {
            let cfg = TrafficConfig {
                rate_hz: 10_000.0,
                requests: 4_000,
                process,
                ..TrafficConfig::default()
            };
            let s = schedule(&cfg);
            assert!(s.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
            let span_s = s.last().unwrap().at_ns as f64 / 1e9;
            let rate = s.len() as f64 / span_s;
            assert!(
                (rate / cfg.rate_hz - 1.0).abs() < 0.15,
                "{process:?}: measured {rate:.0} rps vs configured {}",
                cfg.rate_hz
            );
        }
    }

    #[test]
    fn mix_weights_are_respected() {
        let cfg = TrafficConfig {
            requests: 8_000,
            ..TrafficConfig::default()
        };
        let s = schedule(&cfg);
        let reads = s.iter().filter(|a| a.kind == RequestKind::Read).count();
        let frac = reads as f64 / s.len() as f64;
        assert!((frac - 0.60).abs() < 0.05, "read fraction {frac:.3}");
    }

    #[test]
    fn routing_covers_all_tenants_and_sessions() {
        let cfg = TrafficConfig {
            tenants: 4,
            sessions_per_tenant: 3,
            ..TrafficConfig::default()
        };
        let s = schedule(&cfg);
        for t in 0..4 {
            assert!(s.iter().any(|a| a.tenant == t));
        }
        for sess in 0..3 {
            assert!(s.iter().any(|a| a.session == sess));
        }
        assert!(s.iter().all(|a| a.tenant < 4 && a.session < 3));
        assert!(s.iter().all(|a| (1..=8).contains(&a.size)));
    }
}
