//! Tenants: a budgeted session group on one persistent runtime.

use std::sync::Arc;

use mpl_heap::Value;
use mpl_obs::{family_histogram, Histogram};
use mpl_runtime::Runtime;
use mpl_runtime::TenantSession;

use crate::workload::{init_session, Profile, SessionState};

/// Static description of one tenant.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant name (budget label, report row, histogram label).
    pub name: String,
    /// Heap budget in bytes; `0` = unlimited (accounting only).
    pub budget_bytes: usize,
    /// How this tenant's request branches share state.
    pub profile: Profile,
    /// Number of persistent sessions the tenant owns.
    pub sessions: usize,
    /// Cache slots per session.
    pub cache_slots: usize,
    /// Multiplier on every request's payload size — the adversarial
    /// tenant in E12 sets this high to blow through its budget.
    pub payload_scale: usize,
}

impl TenantSpec {
    /// A default spec: disentangled, 2 sessions, 64 cache slots.
    pub fn new(name: &str, budget_bytes: usize) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            budget_bytes,
            profile: Profile::Disentangled,
            sessions: 2,
            cache_slots: 64,
            payload_scale: 1,
        }
    }

    /// Sets the access profile.
    pub fn profile(mut self, p: Profile) -> TenantSpec {
        self.profile = p;
        self
    }

    /// Sets the session count.
    pub fn sessions(mut self, n: usize) -> TenantSpec {
        self.sessions = n.max(1);
        self
    }

    /// Sets the per-session cache slot count.
    pub fn cache_slots(mut self, n: usize) -> TenantSpec {
        self.cache_slots = n.max(2);
        self
    }

    /// Sets the payload multiplier.
    pub fn payload_scale(mut self, n: usize) -> TenantSpec {
        self.payload_scale = n.max(1);
        self
    }
}

/// A live tenant: its runtime session (root heap + budget + persistent
/// root stack), its session states, its latency histogram, and the
/// dispatcher's admission counters.
pub struct Tenant {
    /// The spec this tenant was created from.
    pub spec: TenantSpec,
    /// The runtime session carrying heap, budget and roots.
    pub session: TenantSession,
    /// Per-session workload state, `spec.sessions` entries.
    pub states: Vec<SessionState>,
    /// Request latency (ns), measured from scheduled arrival to
    /// completion. Registered in the `"serve_latency"` histogram family
    /// under the tenant name, so exporters see it too.
    pub latency: Arc<Histogram>,
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests shed by budget admission control or by a mid-request
    /// budget `AllocError`.
    pub shed_budget: u64,
    /// Requests shed by an injected `serve/admit` failpoint.
    pub shed_injected: u64,
    /// Maintenance collections run when admission found the tenant over
    /// budget (the retry-after-collection path).
    pub maintenance_gcs: u64,
    /// Budget live-bytes after the last maintenance collection that
    /// failed to create headroom. While the reading is unchanged (shed
    /// requests allocate nothing), re-collecting is provably futile and
    /// the gate sheds without another GC.
    pub(crate) futile_at: Option<usize>,
}

impl Tenant {
    /// Creates the tenant on `rt`: allocates its budgeted session and
    /// initialises all per-session state in one setup request.
    pub fn create(rt: &Runtime, spec: TenantSpec) -> Tenant {
        let session = rt.new_tenant(&spec.name, spec.budget_bytes);
        let mut states = Vec::with_capacity(spec.sessions);
        {
            let states = &mut states;
            let sessions = spec.sessions.max(1);
            let slots = spec.cache_slots;
            rt.run_session(&session, move |m| {
                for _ in 0..sessions {
                    states.push(init_session(m, slots));
                }
                Value::Unit
            });
        }
        let latency = family_histogram("serve_latency", &spec.name);
        Tenant {
            spec,
            session,
            states,
            latency,
            admitted: 0,
            completed: 0,
            shed_budget: 0,
            shed_injected: 0,
            maintenance_gcs: 0,
            futile_at: None,
        }
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_budget + self.shed_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::RuntimeConfig;

    #[test]
    fn create_roots_sessions_and_budget() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let t = Tenant::create(&rt, TenantSpec::new("alpha", 1 << 20).sessions(3));
        assert_eq!(t.states.len(), 3);
        let b = t.session.budget().expect("budget attached");
        assert_eq!(b.limit(), 1 << 20);
        assert!(b.live_bytes() > 0, "session state must be charged");
        rt.retire_session(&t.session);
    }
}
