//! Tenants: a budgeted session group on one persistent runtime.

use std::sync::Arc;

use mpl_heap::Value;
use mpl_obs::{family_histogram, Histogram};
use mpl_runtime::Runtime;
use mpl_runtime::TenantSession;

use crate::workload::{init_session, Profile, SessionState};

/// Static description of one tenant.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant name (budget label, report row, histogram label).
    pub name: String,
    /// Heap budget in bytes; `0` = unlimited (accounting only).
    pub budget_bytes: usize,
    /// How this tenant's request branches share state.
    pub profile: Profile,
    /// Number of persistent sessions the tenant owns.
    pub sessions: usize,
    /// Cache slots per session.
    pub cache_slots: usize,
    /// Multiplier on every request's payload size — the adversarial
    /// tenant in E12 sets this high to blow through its budget.
    pub payload_scale: usize,
    /// Per-request timeout in nanoseconds; `0` (the default) runs
    /// requests without a deadline. Timed-out requests unwind at the
    /// runtime's next cancellation poll point
    /// (`Runtime::try_run_session_deadline`) with the session heap
    /// coherent, then retry per [`TenantSpec::retries`].
    pub timeout_ns: u64,
    /// Retry attempts after a timed-out request (exponential backoff
    /// with seeded jitter between attempts; see
    /// [`TenantSpec::backoff_ns`]).
    pub retries: u32,
    /// Base backoff in nanoseconds before a retry. Attempt `k` sleeps
    /// `backoff · 2^(k-1)` jittered in `[½, 1]×` by the dispatcher's
    /// seeded PRNG, so a deadline storm's retries decorrelate
    /// deterministically.
    pub backoff_ns: u64,
}

impl TenantSpec {
    /// A default spec: disentangled, 2 sessions, 64 cache slots.
    pub fn new(name: &str, budget_bytes: usize) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            budget_bytes,
            profile: Profile::Disentangled,
            sessions: 2,
            cache_slots: 64,
            payload_scale: 1,
            timeout_ns: 0,
            retries: 0,
            backoff_ns: 200_000,
        }
    }

    /// Sets the access profile.
    pub fn profile(mut self, p: Profile) -> TenantSpec {
        self.profile = p;
        self
    }

    /// Sets the session count.
    pub fn sessions(mut self, n: usize) -> TenantSpec {
        self.sessions = n.max(1);
        self
    }

    /// Sets the per-session cache slot count.
    pub fn cache_slots(mut self, n: usize) -> TenantSpec {
        self.cache_slots = n.max(2);
        self
    }

    /// Sets the payload multiplier.
    pub fn payload_scale(mut self, n: usize) -> TenantSpec {
        self.payload_scale = n.max(1);
        self
    }

    /// Sets the per-request timeout (see [`TenantSpec::timeout_ns`]).
    pub fn timeout(mut self, d: std::time::Duration) -> TenantSpec {
        self.timeout_ns = d.as_nanos() as u64;
        self
    }

    /// Sets the retry budget for timed-out requests.
    pub fn retries(mut self, n: u32) -> TenantSpec {
        self.retries = n;
        self
    }

    /// Sets the base retry backoff (see [`TenantSpec::backoff_ns`]).
    pub fn backoff(mut self, d: std::time::Duration) -> TenantSpec {
        self.backoff_ns = d.as_nanos() as u64;
        self
    }
}

/// Circuit-breaker state for one tenant (see [`Breaker`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are shed without touching the runtime until `until_ns`
    /// (dispatcher clock), then one probe is allowed through.
    Open {
        /// Dispatcher-clock instant the breaker half-opens.
        until_ns: u64,
    },
    /// One probe request is in flight; success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

/// A per-tenant circuit breaker over *run failures* (timeouts after all
/// retries, panics — not budget sheds, which are ordinary admission
/// control). A tenant whose requests keep burning their full deadline
/// gets its traffic shed at the door, protecting every other tenant's
/// latency from the doomed work.
#[derive(Clone, Copy, Debug)]
pub struct Breaker {
    /// Current state.
    pub state: BreakerState,
    /// Run failures since the last success.
    pub consecutive_failures: u32,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }
}

impl Breaker {
    /// Whether a request may proceed at dispatcher-clock `now_ns`. An
    /// expired `Open` transitions to `HalfOpen` and admits the probe.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Records a completed request: resets the failure streak and closes
    /// a half-open breaker.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a run failure; once `threshold` consecutive failures
    /// accumulate (or a half-open probe fails) the breaker opens until
    /// `now_ns + open_ns`. Returns true iff this call opened it.
    pub fn on_failure(&mut self, now_ns: u64, threshold: u32, open_ns: u64) -> bool {
        self.consecutive_failures += 1;
        let reopen = matches!(self.state, BreakerState::HalfOpen);
        if reopen || self.consecutive_failures >= threshold {
            self.state = BreakerState::Open {
                until_ns: now_ns.saturating_add(open_ns),
            };
            return true;
        }
        false
    }
}

/// A live tenant: its runtime session (root heap + budget + persistent
/// root stack), its session states, its latency histogram, and the
/// dispatcher's admission counters.
pub struct Tenant {
    /// The spec this tenant was created from.
    pub spec: TenantSpec,
    /// The runtime session carrying heap, budget and roots.
    pub session: TenantSession,
    /// Per-session workload state, `spec.sessions` entries.
    pub states: Vec<SessionState>,
    /// Request latency (ns), measured from scheduled arrival to
    /// completion. Registered in the `"serve_latency"` histogram family
    /// under the tenant name, so exporters see it too.
    pub latency: Arc<Histogram>,
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests shed by budget admission control or by a mid-request
    /// budget `AllocError`.
    pub shed_budget: u64,
    /// Requests shed by an injected `serve/admit` failpoint.
    pub shed_injected: u64,
    /// Maintenance collections run when admission found the tenant over
    /// budget (the retry-after-collection path).
    pub maintenance_gcs: u64,
    /// Request attempts that exhausted their deadline (every timed-out
    /// attempt counts, including ones that later succeeded on retry).
    pub timed_out: u64,
    /// Retry attempts launched after a timeout.
    pub retried: u64,
    /// Times this tenant's circuit breaker opened.
    pub breaker_opens: u64,
    /// Requests shed at the door by an open breaker.
    pub breaker_shed: u64,
    /// Requests shed by the server's brownout ladder (entangled-profile
    /// load shedding under memory/pause pressure).
    pub brownout_shed: u64,
    /// Requests served degraded (cheap read instead of the scheduled
    /// kind) while the server was at the brownout ladder's last rung.
    pub degraded: u64,
    /// Circuit-breaker state over this tenant's run failures.
    pub breaker: Breaker,
    /// Budget live-bytes after the last maintenance collection that
    /// failed to create headroom. While the reading is unchanged (shed
    /// requests allocate nothing), re-collecting is provably futile and
    /// the gate sheds without another GC.
    pub(crate) futile_at: Option<usize>,
}

impl Tenant {
    /// Creates the tenant on `rt`: allocates its budgeted session and
    /// initialises all per-session state in one setup request.
    pub fn create(rt: &Runtime, spec: TenantSpec) -> Tenant {
        let session = rt.new_tenant(&spec.name, spec.budget_bytes);
        let mut states = Vec::with_capacity(spec.sessions);
        {
            let states = &mut states;
            let sessions = spec.sessions.max(1);
            let slots = spec.cache_slots;
            rt.run_session(&session, move |m| {
                for _ in 0..sessions {
                    states.push(init_session(m, slots));
                }
                Value::Unit
            });
        }
        let latency = family_histogram("serve_latency", &spec.name);
        Tenant {
            spec,
            session,
            states,
            latency,
            admitted: 0,
            completed: 0,
            shed_budget: 0,
            shed_injected: 0,
            maintenance_gcs: 0,
            timed_out: 0,
            retried: 0,
            breaker_opens: 0,
            breaker_shed: 0,
            brownout_shed: 0,
            degraded: 0,
            breaker: Breaker::default(),
            futile_at: None,
        }
    }

    /// Total requests shed for any reason (budget, injected fault, open
    /// breaker, brownout).
    pub fn shed_total(&self) -> u64 {
        self.shed_budget + self.shed_injected + self.breaker_shed + self.brownout_shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_runtime::RuntimeConfig;

    #[test]
    fn create_roots_sessions_and_budget() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let t = Tenant::create(&rt, TenantSpec::new("alpha", 1 << 20).sessions(3));
        assert_eq!(t.states.len(), 3);
        let b = t.session.budget().expect("budget attached");
        assert_eq!(b.limit(), 1 << 20);
        assert!(b.live_bytes() > 0, "session state must be charged");
        rt.retire_session(&t.session);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let mut b = Breaker::default();
        assert!(b.admit(0));
        assert!(!b.on_failure(100, 3, 1_000), "1 failure: still closed");
        assert!(!b.on_failure(200, 3, 1_000));
        assert!(b.on_failure(300, 3, 1_000), "3rd failure opens");
        assert_eq!(b.state, BreakerState::Open { until_ns: 1_300 });
        assert!(!b.admit(500), "open: shed");
        assert!(b.admit(1_300), "expired: probe admitted");
        assert_eq!(b.state, BreakerState::HalfOpen);
        assert!(b.on_failure(1_400, 3, 1_000), "failed probe re-opens");
        assert!(b.admit(3_000));
        b.on_success();
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(b.consecutive_failures, 0);
    }

    #[test]
    fn spec_timeout_retry_backoff_builders() {
        use std::time::Duration;
        let s = TenantSpec::new("t", 0)
            .timeout(Duration::from_millis(2))
            .retries(3)
            .backoff(Duration::from_micros(50));
        assert_eq!(s.timeout_ns, 2_000_000);
        assert_eq!(s.retries, 3);
        assert_eq!(s.backoff_ns, 50_000);
        let d = TenantSpec::new("d", 0);
        assert_eq!(d.timeout_ns, 0, "no deadline by default");
        assert_eq!(d.retries, 0);
    }
}
