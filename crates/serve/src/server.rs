//! The open-loop dispatcher: admission control, timeouts with
//! retry/backoff, per-tenant circuit breaking, brownout shedding, SLO
//! capture.

use std::time::{Duration, Instant};

use mpl_heap::Value;
use mpl_obs::{flight_record, histogram, FlightKind, Metric, EV_BREAKER_OPEN, EV_DEADLINE_STORM};
use mpl_runtime::{CancelReason, RunError, Runtime};

use crate::report::{live_slope, GcReport, ServerReport, TenantReport};
use crate::tenant::{Tenant, TenantSpec};
use crate::traffic::{schedule, schedule_digest, RequestKind, SplitMix64, TrafficConfig};
use crate::workload::{run_request, Profile};

/// Failpoint site on the admission path: an injected `Error` here sheds
/// the request before it touches the runtime (simulating an upstream
/// admission-control fault).
pub const FP_ADMIT: &str = "serve/admit";
/// Failpoint site on the shed path: fires as a request is being shed for
/// budget reasons (chaos schedules use it to add delay/yield storms in
/// exactly the moments the server is degraded).
pub const FP_SHED: &str = "serve/shed";

/// Default admission estimate: a request is admitted only if the tenant
/// budget has at least this much headroom (after at most one maintenance
/// collection). Coarse on purpose — admission is a gate, not a meter.
pub const DEFAULT_ADMIT_ESTIMATE: usize = 32 * 1024;

/// Consecutive run failures (timeouts after retries, panics) before a
/// tenant's circuit breaker opens.
pub const BREAKER_THRESHOLD: u32 = 4;

/// Dispatched-arrival window over which the brownout ladder and the
/// deadline-storm detector are recomputed.
pub const BROWNOUT_WINDOW: u64 = 64;

/// The server's brownout ladder: graduated load shedding under memory
/// or latency pressure, recomputed every [`BROWNOUT_WINDOW`] arrivals
/// from the window's timeout rate plus (when the runtime is
/// telemetered) heap-census fragmentation and GC pause-histogram
/// deltas. Each rung keeps the previous rung's behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Brownout {
    /// No pressure: all requests run as scheduled.
    Normal,
    /// Shed entangled-profile tenants' requests at the door: entangled
    /// work is what pins objects, fragments the entangled space, and
    /// feeds CGC pauses, so it goes first.
    ShedEntangled,
    /// Additionally degrade every remaining request to a cheap
    /// read-only response (minimum payload), trading fidelity for
    /// bounded latency.
    Degraded,
}

/// Why one admitted request ultimately failed (dispatcher-internal).
enum Failure {
    /// Deadline exhausted on the final attempt.
    Timeout,
    /// Mid-flight budget `AllocError` — ordinary shed, not a breaker
    /// failure.
    Budget,
    /// Unexpected panic or non-deadline cancellation.
    Fatal,
}

/// A multi-tenant server bound to one persistent [`Runtime`].
pub struct Server<'rt> {
    rt: &'rt Runtime,
    /// Live tenants, in spec order. Arrivals are routed modulo this.
    pub tenants: Vec<Tenant>,
    /// Admission headroom estimate in bytes (see [`DEFAULT_ADMIT_ESTIMATE`]).
    pub admit_estimate: usize,
    /// Current brownout rung (recomputed during [`Server::run`]).
    pub brownout: Brownout,
}

impl<'rt> Server<'rt> {
    /// Creates all tenants (allocating their budgeted sessions) on `rt`.
    pub fn new(rt: &'rt Runtime, specs: Vec<TenantSpec>) -> Server<'rt> {
        let tenants = specs.into_iter().map(|s| Tenant::create(rt, s)).collect();
        Server {
            rt,
            tenants,
            admit_estimate: DEFAULT_ADMIT_ESTIMATE,
            brownout: Brownout::Normal,
        }
    }

    /// Runs one open-loop traffic schedule to completion and reports.
    ///
    /// The dispatcher replays the precomputed schedule against real time:
    /// it sleeps until each arrival's instant, then admits or sheds. A
    /// request's latency is `completion − scheduled arrival`, so time a
    /// request spends queued behind a slow predecessor counts against the
    /// SLO (no coordinated omission). Admission control:
    ///
    /// 1. the `serve/admit` failpoint may shed it (injected fault);
    /// 2. the brownout ladder may shed it (entangled-profile tenants
    ///    first) or degrade it to a cheap read — see [`Brownout`];
    /// 3. the tenant's circuit breaker may shed it while open after a
    ///    streak of run failures — see [`crate::tenant::Breaker`];
    /// 4. if the tenant budget lacks [`Self::admit_estimate`] headroom,
    ///    one maintenance collection runs on the tenant's root heap and
    ///    the check retries — still over means shed (`serve/shed` fires,
    ///    the budget records it);
    /// 5. admitted requests run under the tenant's deadline (when
    ///    `timeout_ns > 0`) via `try_run_session_deadline`; a timed-out
    ///    attempt unwinds coherently and retries up to `retries` times
    ///    with seeded-jitter exponential backoff before counting as a
    ///    run failure;
    /// 6. requests that exhaust the budget mid-flight are shed by the
    ///    `AllocError` backstop, leaving the session intact.
    ///
    /// Every [`BROWNOUT_WINDOW`] arrivals the dispatcher recomputes the
    /// brownout rung and, when ≥ 1/4 of the window timed out, records a
    /// deadline-storm flight event for post-mortems.
    pub fn run(&mut self, traffic: &TrafficConfig) -> ServerReport {
        let sched = schedule(traffic);
        let digest = schedule_digest(&sched);
        let offered = sched.len();
        let stats0 = self.rt.stats();
        let samples0 = self.rt.telemetry_samples().len();
        let ntenants = self.tenants.len().max(1);
        let lat0: Vec<_> = self.tenants.iter().map(|t| t.latency.snapshot()).collect();
        // Tenant counters accumulate for the server's lifetime; the
        // report covers this run only.
        let counts0: Vec<[u64; 11]> = self
            .tenants
            .iter()
            .map(|t| {
                [
                    t.admitted,
                    t.completed,
                    t.shed_budget,
                    t.shed_injected,
                    t.maintenance_gcs,
                    t.timed_out,
                    t.retried,
                    t.breaker_opens,
                    t.breaker_shed,
                    t.brownout_shed,
                    t.degraded,
                ]
            })
            .collect();
        // Retry jitter is seeded from the traffic seed so overload runs
        // replay deterministically.
        let mut rng = SplitMix64::new(traffic.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut window_total: u64 = 0;
        let mut window_timeouts: u64 = 0;
        let mut pause0 = (
            histogram(Metric::LgcPause).snapshot(),
            histogram(Metric::CgcPause).snapshot(),
        );
        let t0 = Instant::now();
        for a in &sched {
            // Open loop: wait out the gap to the scheduled instant.
            let target = Duration::from_nanos(a.at_ns);
            loop {
                let now = t0.elapsed();
                if now >= target {
                    break;
                }
                let gap = target - now;
                if gap > Duration::from_micros(300) {
                    std::thread::sleep(gap - Duration::from_micros(200));
                } else {
                    std::hint::spin_loop();
                }
            }
            // Window bookkeeping: recompute the brownout rung and check
            // for a deadline storm every BROWNOUT_WINDOW arrivals.
            window_total += 1;
            if window_total >= BROWNOUT_WINDOW {
                if window_timeouts * 4 >= window_total {
                    flight_record(
                        FlightKind::Event,
                        EV_DEADLINE_STORM,
                        window_timeouts,
                        window_total,
                    );
                }
                let frac = window_timeouts as f64 / window_total as f64;
                self.brownout = brownout_level(self.rt, frac, &mut pause0);
                window_total = 0;
                window_timeouts = 0;
            }
            let brownout = self.brownout;
            let tn = &mut self.tenants[a.tenant % ntenants];
            // 1. Injected admission fault.
            if mpl_fail::hit(FP_ADMIT).is_err() {
                tn.shed_injected += 1;
                continue;
            }
            // 2. Brownout ladder: entangled-profile work (the pin and
            //    CGC feeder) is shed at the door under pressure.
            if brownout >= Brownout::ShedEntangled && tn.spec.profile == Profile::Entangled {
                mpl_fail::hit_hard(FP_SHED);
                tn.brownout_shed += 1;
                continue;
            }
            // 3. Circuit breaker: a tenant with a streak of run failures
            //    is shed without touching the runtime until its breaker
            //    half-opens for a probe.
            if !tn.breaker.admit(t0.elapsed().as_nanos() as u64) {
                tn.breaker_shed += 1;
                continue;
            }
            // 4. Budget admission gate, with one collect-and-retry. A
            //    collection that created no headroom is not repeated
            //    until the budget reading moves (sheds allocate nothing,
            //    so re-collecting the same retained set is futile).
            if let Some(b) = tn.session.budget().cloned() {
                if b.would_exceed(self.admit_estimate) {
                    if tn.futile_at != Some(b.live_bytes()) {
                        tn.maintenance_gcs += 1;
                        let _ = self.rt.try_run_session(&tn.session, |m| {
                            m.force_lgc(&mut []);
                            Value::Unit
                        });
                    }
                    if b.would_exceed(self.admit_estimate) {
                        tn.futile_at = Some(b.live_bytes());
                        mpl_fail::hit_hard(FP_SHED);
                        b.on_shed();
                        tn.shed_budget += 1;
                        continue;
                    }
                    tn.futile_at = None;
                }
            }
            // 5. Run it, under the tenant deadline when one is set; the
            //    AllocError backstop sheds mid-flight exhaustion without
            //    poisoning the session.
            tn.admitted += 1;
            let mut kind = a.kind;
            let mut size = a.size * tn.spec.payload_scale;
            if brownout >= Brownout::Degraded && kind != RequestKind::Read {
                kind = RequestKind::Read;
                size = 1;
                tn.degraded += 1;
            }
            let profile = tn.spec.profile;
            let timeout_ns = tn.spec.timeout_ns;
            let mut attempt: u32 = 0;
            let outcome: Result<(), Failure> = loop {
                attempt += 1;
                let st = tn.states[a.session % tn.states.len()].clone();
                let res = if timeout_ns > 0 {
                    self.rt.try_run_session_deadline(
                        &tn.session,
                        Duration::from_nanos(timeout_ns),
                        move |m| run_request(m, &st, kind, size, profile),
                    )
                } else {
                    self.rt.try_run_session(&tn.session, move |m| {
                        run_request(m, &st, kind, size, profile)
                    })
                };
                match res {
                    Ok(_) => break Ok(()),
                    Err(RunError::Cancelled(c)) if matches!(c.reason, CancelReason::Deadline) => {
                        tn.timed_out += 1;
                        window_timeouts += 1;
                        self.rt.note_request_timeout();
                        if attempt <= tn.spec.retries {
                            tn.retried += 1;
                            self.rt.note_request_retry();
                            // Exponential backoff jittered into [½, 1]×
                            // so a storm's retries decorrelate.
                            let base = tn.spec.backoff_ns.max(1) << (attempt - 1).min(16);
                            let sleep = base / 2 + rng.next_u64() % (base / 2 + 1);
                            std::thread::sleep(Duration::from_nanos(sleep));
                            continue;
                        }
                        break Err(Failure::Timeout);
                    }
                    Err(RunError::Alloc(_)) => break Err(Failure::Budget),
                    Err(_) => break Err(Failure::Fatal),
                }
            };
            match outcome {
                Ok(()) => {
                    tn.breaker.on_success();
                    tn.completed += 1;
                    let done_ns = t0.elapsed().as_nanos() as u64;
                    tn.latency.record(done_ns.saturating_sub(a.at_ns));
                }
                Err(Failure::Budget) => {
                    // Ordinary budget shed: not a breaker failure (the
                    // budget gate, not the tenant's latency, is at fault).
                    mpl_fail::hit_hard(FP_SHED);
                    tn.shed_budget += 1;
                }
                Err(Failure::Timeout) | Err(Failure::Fatal) => {
                    let now_ns = t0.elapsed().as_nanos() as u64;
                    let open_ns = (4 * timeout_ns.max(500_000)).max(2_000_000);
                    if tn.breaker.on_failure(now_ns, BREAKER_THRESHOLD, open_ns) {
                        tn.breaker_opens += 1;
                        self.rt.note_breaker_open();
                        flight_record(
                            FlightKind::Event,
                            EV_BREAKER_OPEN,
                            (a.tenant % ntenants) as u64,
                            tn.breaker.consecutive_failures as u64,
                        );
                    }
                }
            }
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let stats1 = self.rt.stats();
        let d = stats1.delta(&stats0);
        let wall_s = (wall_ns as f64 / 1e9).max(1e-9);
        let mut all_samples = self.rt.telemetry_samples();
        let samples = if samples0 <= all_samples.len() {
            all_samples.split_off(samples0)
        } else {
            Vec::new()
        };
        // End-of-run heap census: only when the runtime is telemetered —
        // the walk is cheap but the report should stay byte-identical to
        // earlier runs for untelemetered configurations.
        let census = self.rt.config().telemetry.then(|| self.rt.heap_census());
        let tenants = self
            .tenants
            .iter()
            .zip(lat0.iter())
            .zip(counts0.iter())
            .map(|((t, l0), c0)| {
                let snap = t.latency.snapshot();
                // This run's own recordings: the family histogram is
                // process-global, so subtract the pre-run snapshot.
                let lat = diff_hist(&snap, l0);
                TenantReport {
                    name: t.spec.name.clone(),
                    admitted: t.admitted - c0[0],
                    completed: t.completed - c0[1],
                    shed_budget: t.shed_budget - c0[2],
                    shed_injected: t.shed_injected - c0[3],
                    maintenance_gcs: t.maintenance_gcs - c0[4],
                    timed_out: t.timed_out - c0[5],
                    retried: t.retried - c0[6],
                    breaker_opens: t.breaker_opens - c0[7],
                    breaker_shed: t.breaker_shed - c0[8],
                    brownout_shed: t.brownout_shed - c0[9],
                    degraded: t.degraded - c0[10],
                    p50_ns: lat.percentile(0.50),
                    p99_ns: lat.percentile(0.99),
                    p999_ns: lat.percentile(0.999),
                    max_ns: lat.max,
                    mean_ns: lat.mean(),
                    goodput_rps: (t.completed - c0[1]) as f64 / wall_s,
                    budget: t.session.budget().map(|b| b.snapshot()),
                    census: census
                        .as_ref()
                        .and_then(|c| c.tenants.iter().find(|r| r.name == t.spec.name).cloned()),
                }
            })
            .collect::<Vec<_>>();
        let completed_total: u64 = tenants.iter().map(|t| t.completed).sum();
        let shed_total: u64 = tenants
            .iter()
            .map(|t| t.shed_budget + t.shed_injected + t.breaker_shed + t.brownout_shed)
            .sum();
        ServerReport {
            digest,
            wall_ns,
            offered,
            completed_total,
            shed_total,
            goodput_rps: completed_total as f64 / wall_s,
            tenants,
            gc: GcReport {
                lgc_runs: d.lgc_runs,
                cgc_runs: d.cgc_runs,
                lgc_pause_ns: d.lgc_pause_ns_total,
                cgc_pause_ns: d.cgc_pause_ns_total,
                pause_overlap_pct: 100.0 * (d.lgc_pause_ns_total + d.cgc_pause_ns_total) as f64
                    / wall_ns.max(1) as f64,
                gc_forced_by_pressure: d.gc_forced_by_pressure,
                alloc_failures: d.alloc_failures,
                lgc_dead_traced: d.lgc_dead_traced,
                pins: d.pins,
                live_bytes: stats1.live_bytes,
                pinned_bytes: stats1.pinned_bytes,
            },
            // Steady-state slope: fit on the second half of the window so
            // startup growth (caches and feeds filling) doesn't read as a
            // leak. The witness E12 wants is the long-run trend.
            live_slope_bytes_per_s: live_slope(&samples[samples.len() / 2..]),
            live_samples: samples.len(),
            census,
        }
    }

    /// Retires every tenant session, releasing their persistent roots.
    pub fn shutdown(self) {
        for t in &self.tenants {
            self.rt.retire_session(&t.session);
        }
    }
}

/// Computes the brownout rung from this window's timeout fraction plus,
/// when the runtime is telemetered, heap-census fragmentation and the
/// window's GC pause-histogram p99 delta. Takes the worst rung any
/// signal demands; `pause0` is advanced to the current pause snapshots
/// so the next window measures only its own pauses.
fn brownout_level(
    rt: &Runtime,
    timeout_frac: f64,
    pause0: &mut (mpl_obs::HistSnapshot, mpl_obs::HistSnapshot),
) -> Brownout {
    let mut level = if timeout_frac >= 0.5 {
        Brownout::Degraded
    } else if timeout_frac >= 0.25 {
        Brownout::ShedEntangled
    } else {
        Brownout::Normal
    };
    if rt.config().telemetry {
        // Memory pressure: fragmentation of the allocated blocks. A
        // heavily fragmented heap means evacuation/sweep work is about
        // to get expensive, so back off before pauses spike.
        let frag = rt.heap_census().fragmentation();
        level = level.max(if frag >= 0.75 {
            Brownout::Degraded
        } else if frag >= 0.55 {
            Brownout::ShedEntangled
        } else {
            Brownout::Normal
        });
        // Latency pressure: the pause p99 over this window only.
        let lgc = histogram(Metric::LgcPause).snapshot();
        let cgc = histogram(Metric::CgcPause).snapshot();
        let p99 = diff_hist(&lgc, &pause0.0)
            .percentile(0.99)
            .max(diff_hist(&cgc, &pause0.1).percentile(0.99));
        level = level.max(if p99 >= 20_000_000 {
            Brownout::Degraded
        } else if p99 >= 5_000_000 {
            Brownout::ShedEntangled
        } else {
            Brownout::Normal
        });
        *pause0 = (lgc, cgc);
    }
    level
}

/// Bucket-wise difference of two snapshots of one (monotone) histogram:
/// the recordings that happened between them.
fn diff_hist(now: &mpl_obs::HistSnapshot, then: &mpl_obs::HistSnapshot) -> mpl_obs::HistSnapshot {
    let mut out = *now;
    out.count = now.count.saturating_sub(then.count);
    out.sum = now.sum.saturating_sub(then.sum);
    for (o, t) in out.buckets.iter_mut().zip(then.buckets.iter()) {
        *o = o.saturating_sub(*t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ArrivalProcess;
    use crate::workload::Profile;
    use mpl_runtime::RuntimeConfig;

    #[test]
    fn serves_all_offered_requests_when_unbudgeted() {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("a", 0),
                TenantSpec::new("b", 0).profile(Profile::Entangled),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 120,
            rate_hz: 20_000.0,
            tenants: 2,
            process: ArrivalProcess::Uniform,
            ..TrafficConfig::default()
        });
        assert_eq!(rep.offered, 120);
        assert_eq!(rep.completed_total, 120);
        assert_eq!(rep.shed_total, 0);
        assert!(rep.tenants.iter().all(|t| t.p99_ns > 0));
        srv.shutdown();
        assert_eq!(rt.live_root_stacks(), 0);
        rt.assert_heap_sound();
    }

    #[test]
    fn deadline_timeouts_retry_and_open_the_breaker() {
        use crate::traffic::RequestMix;
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        // A 1 ns deadline is expired by the first poll point of every
        // insert, so each attempt unwinds; one retry per request, then
        // the breaker opens after BREAKER_THRESHOLD final failures and
        // sheds the rest of the burst at the door.
        let mut srv = Server::new(
            &rt,
            vec![TenantSpec::new("storm", 0)
                .timeout(Duration::from_nanos(1))
                .retries(1)
                .backoff(Duration::from_micros(1))],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 40,
            rate_hz: 50_000.0,
            mix: RequestMix {
                read: 0,
                insert: 100,
                feed: 0,
                scan: 0,
            },
            ..TrafficConfig::default()
        });
        let t = &rep.tenants[0];
        assert!(t.timed_out > 0, "1ns deadline never timed out: {t:?}");
        assert!(t.retried > 0, "timeouts must retry: {t:?}");
        assert!(
            t.breaker_opens >= 1,
            "failure streak must open breaker: {t:?}"
        );
        assert!(
            t.breaker_shed > 0,
            "open breaker must shed at the door: {t:?}"
        );
        assert!(
            rep.shed_total >= t.breaker_shed,
            "breaker sheds count as sheds"
        );
        let s = rt.stats();
        assert!(s.requests_timed_out > 0, "runtime timeout counter");
        assert!(s.request_retries > 0, "runtime retry counter");
        assert!(s.breaker_open > 0, "runtime breaker counter");
        assert!(s.cancel_unwound > 0, "each timeout is a cancelled unwind");
        // Storms of mid-request unwinds leave the sessions coherent.
        srv.shutdown();
        rt.assert_heap_sound();
        assert_eq!(rt.parked_results(), 0);
        assert_eq!(rt.live_root_stacks(), 0);
    }

    #[test]
    fn brownout_sheds_entangled_and_degrades_the_rest() {
        use crate::traffic::RequestMix;
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("pin", 0).profile(Profile::Entangled),
                TenantSpec::new("plain", 0),
            ],
        );
        // Pin the ladder at its last rung; with fewer arrivals than
        // BROWNOUT_WINDOW the dispatcher never recomputes it, so the
        // rung's behavior is observed in isolation.
        srv.brownout = Brownout::Degraded;
        let rep = srv.run(&TrafficConfig {
            requests: 60,
            rate_hz: 20_000.0,
            tenants: 2,
            mix: RequestMix {
                read: 0,
                insert: 100,
                feed: 0,
                scan: 0,
            },
            ..TrafficConfig::default()
        });
        let pin = &rep.tenants[0];
        let plain = &rep.tenants[1];
        assert!(pin.brownout_shed > 0, "entangled tenant must shed: {pin:?}");
        assert_eq!(pin.completed, 0, "shed at the door, never admitted");
        assert!(plain.completed > 0, "disentangled tenant keeps serving");
        assert_eq!(
            plain.degraded, plain.admitted,
            "at Degraded every insert is rewritten to a cheap read"
        );
        assert_eq!(
            rep.completed_total + rep.shed_total,
            rep.offered as u64,
            "every arrival either completed or shed"
        );
        srv.shutdown();
        rt.assert_heap_sound();
    }

    #[test]
    fn timeout_storm_raises_the_brownout_ladder() {
        use crate::traffic::RequestMix;
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        // Tenant 0 times out every attempt (4 retries keeps the window's
        // timeout fraction over the ShedEntangled threshold even after
        // its breaker opens); tenant 1 is the entangled victim the
        // ladder sheds once the rung rises.
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("storm", 0)
                    .timeout(Duration::from_nanos(1))
                    .retries(4)
                    .backoff(Duration::from_micros(1)),
                TenantSpec::new("victim", 0).profile(Profile::Entangled),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 256,
            rate_hz: 50_000.0,
            tenants: 2,
            mix: RequestMix {
                read: 0,
                insert: 100,
                feed: 0,
                scan: 0,
            },
            ..TrafficConfig::default()
        });
        // The rung itself may have relaxed again by the end of the run
        // (an open breaker silences the storm), so the witness is the
        // victim's shed count, not the final rung.
        let victim = &rep.tenants[1];
        assert!(
            victim.brownout_shed > 0,
            "entangled victim must be shed under brownout: {victim:?}"
        );
        srv.shutdown();
        rt.assert_heap_sound();
        assert_eq!(rt.parked_results(), 0);
    }

    #[test]
    fn tiny_budget_sheds_but_server_survives() {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        // 64 KiB budget + huge payloads: this tenant must shed.
        let mut srv = Server::new(
            &rt,
            vec![TenantSpec::new("hog", 64 * 1024).payload_scale(64)],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 80,
            rate_hz: 50_000.0,
            ..TrafficConfig::default()
        });
        assert_eq!(rep.offered, 80);
        assert!(rep.shed_total > 0, "hog tenant never shed");
        let b = &rep.tenants[0].budget.as_ref().unwrap();
        assert!(b.sheds > 0);
        // The session survives shedding: runtime invariants hold.
        srv.shutdown();
        rt.assert_heap_sound();
        assert_eq!(rt.parked_results(), 0);
    }
}
