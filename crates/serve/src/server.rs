//! The open-loop dispatcher: admission control, shed/retry, SLO capture.

use std::time::{Duration, Instant};

use mpl_heap::Value;
use mpl_runtime::Runtime;

use crate::report::{live_slope, GcReport, ServerReport, TenantReport};
use crate::tenant::{Tenant, TenantSpec};
use crate::traffic::{schedule, schedule_digest, TrafficConfig};
use crate::workload::run_request;

/// Failpoint site on the admission path: an injected `Error` here sheds
/// the request before it touches the runtime (simulating an upstream
/// admission-control fault).
pub const FP_ADMIT: &str = "serve/admit";
/// Failpoint site on the shed path: fires as a request is being shed for
/// budget reasons (chaos schedules use it to add delay/yield storms in
/// exactly the moments the server is degraded).
pub const FP_SHED: &str = "serve/shed";

/// Default admission estimate: a request is admitted only if the tenant
/// budget has at least this much headroom (after at most one maintenance
/// collection). Coarse on purpose — admission is a gate, not a meter.
pub const DEFAULT_ADMIT_ESTIMATE: usize = 32 * 1024;

/// A multi-tenant server bound to one persistent [`Runtime`].
pub struct Server<'rt> {
    rt: &'rt Runtime,
    /// Live tenants, in spec order. Arrivals are routed modulo this.
    pub tenants: Vec<Tenant>,
    /// Admission headroom estimate in bytes (see [`DEFAULT_ADMIT_ESTIMATE`]).
    pub admit_estimate: usize,
}

impl<'rt> Server<'rt> {
    /// Creates all tenants (allocating their budgeted sessions) on `rt`.
    pub fn new(rt: &'rt Runtime, specs: Vec<TenantSpec>) -> Server<'rt> {
        let tenants = specs.into_iter().map(|s| Tenant::create(rt, s)).collect();
        Server {
            rt,
            tenants,
            admit_estimate: DEFAULT_ADMIT_ESTIMATE,
        }
    }

    /// Runs one open-loop traffic schedule to completion and reports.
    ///
    /// The dispatcher replays the precomputed schedule against real time:
    /// it sleeps until each arrival's instant, then admits or sheds. A
    /// request's latency is `completion − scheduled arrival`, so time a
    /// request spends queued behind a slow predecessor counts against the
    /// SLO (no coordinated omission). Admission control:
    ///
    /// 1. the `serve/admit` failpoint may shed it (injected fault);
    /// 2. if the tenant budget lacks [`Self::admit_estimate`] headroom,
    ///    one maintenance collection runs on the tenant's root heap and
    ///    the check retries — still over means shed (`serve/shed` fires,
    ///    the budget records it);
    /// 3. admitted requests that still exhaust the budget mid-flight are
    ///    shed by the `AllocError` backstop, leaving the session intact.
    pub fn run(&mut self, traffic: &TrafficConfig) -> ServerReport {
        let sched = schedule(traffic);
        let digest = schedule_digest(&sched);
        let offered = sched.len();
        let stats0 = self.rt.stats();
        let samples0 = self.rt.telemetry_samples().len();
        let ntenants = self.tenants.len().max(1);
        let lat0: Vec<_> = self.tenants.iter().map(|t| t.latency.snapshot()).collect();
        // Tenant counters accumulate for the server's lifetime; the
        // report covers this run only.
        let counts0: Vec<[u64; 5]> = self
            .tenants
            .iter()
            .map(|t| {
                [
                    t.admitted,
                    t.completed,
                    t.shed_budget,
                    t.shed_injected,
                    t.maintenance_gcs,
                ]
            })
            .collect();
        let t0 = Instant::now();
        for a in &sched {
            // Open loop: wait out the gap to the scheduled instant.
            let target = Duration::from_nanos(a.at_ns);
            loop {
                let now = t0.elapsed();
                if now >= target {
                    break;
                }
                let gap = target - now;
                if gap > Duration::from_micros(300) {
                    std::thread::sleep(gap - Duration::from_micros(200));
                } else {
                    std::hint::spin_loop();
                }
            }
            let tn = &mut self.tenants[a.tenant % ntenants];
            // 1. Injected admission fault.
            if mpl_fail::hit(FP_ADMIT).is_err() {
                tn.shed_injected += 1;
                continue;
            }
            // 2. Budget admission gate, with one collect-and-retry. A
            //    collection that created no headroom is not repeated
            //    until the budget reading moves (sheds allocate nothing,
            //    so re-collecting the same retained set is futile).
            if let Some(b) = tn.session.budget().cloned() {
                if b.would_exceed(self.admit_estimate) {
                    if tn.futile_at != Some(b.live_bytes()) {
                        tn.maintenance_gcs += 1;
                        let _ = self.rt.try_run_session(&tn.session, |m| {
                            m.force_lgc(&mut []);
                            Value::Unit
                        });
                    }
                    if b.would_exceed(self.admit_estimate) {
                        tn.futile_at = Some(b.live_bytes());
                        mpl_fail::hit_hard(FP_SHED);
                        b.on_shed();
                        tn.shed_budget += 1;
                        continue;
                    }
                    tn.futile_at = None;
                }
            }
            // 3. Run it; the AllocError backstop sheds mid-flight
            //    exhaustion without poisoning the session.
            tn.admitted += 1;
            let st = tn.states[a.session % tn.states.len()].clone();
            let kind = a.kind;
            let size = a.size * tn.spec.payload_scale;
            let profile = tn.spec.profile;
            match self.rt.try_run_session(&tn.session, move |m| {
                run_request(m, &st, kind, size, profile)
            }) {
                Ok(_) => {
                    tn.completed += 1;
                    let done_ns = t0.elapsed().as_nanos() as u64;
                    tn.latency.record(done_ns.saturating_sub(a.at_ns));
                }
                Err(_) => {
                    mpl_fail::hit_hard(FP_SHED);
                    tn.shed_budget += 1;
                }
            }
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let stats1 = self.rt.stats();
        let d = stats1.delta(&stats0);
        let wall_s = (wall_ns as f64 / 1e9).max(1e-9);
        let mut all_samples = self.rt.telemetry_samples();
        let samples = if samples0 <= all_samples.len() {
            all_samples.split_off(samples0)
        } else {
            Vec::new()
        };
        // End-of-run heap census: only when the runtime is telemetered —
        // the walk is cheap but the report should stay byte-identical to
        // earlier runs for untelemetered configurations.
        let census = self.rt.config().telemetry.then(|| self.rt.heap_census());
        let tenants = self
            .tenants
            .iter()
            .zip(lat0.iter())
            .zip(counts0.iter())
            .map(|((t, l0), c0)| {
                let snap = t.latency.snapshot();
                // This run's own recordings: the family histogram is
                // process-global, so subtract the pre-run snapshot.
                let lat = diff_hist(&snap, l0);
                TenantReport {
                    name: t.spec.name.clone(),
                    admitted: t.admitted - c0[0],
                    completed: t.completed - c0[1],
                    shed_budget: t.shed_budget - c0[2],
                    shed_injected: t.shed_injected - c0[3],
                    maintenance_gcs: t.maintenance_gcs - c0[4],
                    p50_ns: lat.percentile(0.50),
                    p99_ns: lat.percentile(0.99),
                    p999_ns: lat.percentile(0.999),
                    max_ns: lat.max,
                    mean_ns: lat.mean(),
                    goodput_rps: (t.completed - c0[1]) as f64 / wall_s,
                    budget: t.session.budget().map(|b| b.snapshot()),
                    census: census
                        .as_ref()
                        .and_then(|c| c.tenants.iter().find(|r| r.name == t.spec.name).cloned()),
                }
            })
            .collect::<Vec<_>>();
        let completed_total: u64 = tenants.iter().map(|t| t.completed).sum();
        let shed_total: u64 = tenants
            .iter()
            .map(|t| t.shed_budget + t.shed_injected)
            .sum();
        ServerReport {
            digest,
            wall_ns,
            offered,
            completed_total,
            shed_total,
            goodput_rps: completed_total as f64 / wall_s,
            tenants,
            gc: GcReport {
                lgc_runs: d.lgc_runs,
                cgc_runs: d.cgc_runs,
                lgc_pause_ns: d.lgc_pause_ns_total,
                cgc_pause_ns: d.cgc_pause_ns_total,
                pause_overlap_pct: 100.0 * (d.lgc_pause_ns_total + d.cgc_pause_ns_total) as f64
                    / wall_ns.max(1) as f64,
                gc_forced_by_pressure: d.gc_forced_by_pressure,
                alloc_failures: d.alloc_failures,
                lgc_dead_traced: d.lgc_dead_traced,
                pins: d.pins,
                live_bytes: stats1.live_bytes,
                pinned_bytes: stats1.pinned_bytes,
            },
            // Steady-state slope: fit on the second half of the window so
            // startup growth (caches and feeds filling) doesn't read as a
            // leak. The witness E12 wants is the long-run trend.
            live_slope_bytes_per_s: live_slope(&samples[samples.len() / 2..]),
            live_samples: samples.len(),
            census,
        }
    }

    /// Retires every tenant session, releasing their persistent roots.
    pub fn shutdown(self) {
        for t in &self.tenants {
            self.rt.retire_session(&t.session);
        }
    }
}

/// Bucket-wise difference of two snapshots of one (monotone) histogram:
/// the recordings that happened between them.
fn diff_hist(now: &mpl_obs::HistSnapshot, then: &mpl_obs::HistSnapshot) -> mpl_obs::HistSnapshot {
    let mut out = *now;
    out.count = now.count.saturating_sub(then.count);
    out.sum = now.sum.saturating_sub(then.sum);
    for (o, t) in out.buckets.iter_mut().zip(then.buckets.iter()) {
        *o = o.saturating_sub(*t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ArrivalProcess;
    use crate::workload::Profile;
    use mpl_runtime::RuntimeConfig;

    #[test]
    fn serves_all_offered_requests_when_unbudgeted() {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        let mut srv = Server::new(
            &rt,
            vec![
                TenantSpec::new("a", 0),
                TenantSpec::new("b", 0).profile(Profile::Entangled),
            ],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 120,
            rate_hz: 20_000.0,
            tenants: 2,
            process: ArrivalProcess::Uniform,
            ..TrafficConfig::default()
        });
        assert_eq!(rep.offered, 120);
        assert_eq!(rep.completed_total, 120);
        assert_eq!(rep.shed_total, 0);
        assert!(rep.tenants.iter().all(|t| t.p99_ns > 0));
        srv.shutdown();
        assert_eq!(rt.live_root_stacks(), 0);
        rt.assert_heap_sound();
    }

    #[test]
    fn tiny_budget_sheds_but_server_survives() {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        // 64 KiB budget + huge payloads: this tenant must shed.
        let mut srv = Server::new(
            &rt,
            vec![TenantSpec::new("hog", 64 * 1024).payload_scale(64)],
        );
        let rep = srv.run(&TrafficConfig {
            requests: 80,
            rate_hz: 50_000.0,
            ..TrafficConfig::default()
        });
        assert_eq!(rep.offered, 80);
        assert!(rep.shed_total > 0, "hog tenant never shed");
        let b = &rep.tenants[0].budget.as_ref().unwrap();
        assert!(b.sheds > 0);
        // The session survives shedding: runtime invariants hold.
        srv.shutdown();
        rt.assert_heap_sound();
        assert_eq!(rt.parked_results(), 0);
    }
}
