//! SLO reporting: per-tenant latency percentiles, goodput, shed counts,
//! GC overlap, and the flat-memory witness (live-bytes slope).

use mpl_heap::BudgetSnapshot;
use mpl_obs::{JsonWriter, Sample};

/// Per-tenant SLO row.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed for budget reasons (admission gate or mid-flight).
    pub shed_budget: u64,
    /// Requests shed by injected admission faults.
    pub shed_injected: u64,
    /// Maintenance collections triggered by the admission gate.
    pub maintenance_gcs: u64,
    /// Request attempts that exhausted their deadline (including ones
    /// that later succeeded on retry).
    pub timed_out: u64,
    /// Retry attempts launched after a timeout.
    pub retried: u64,
    /// Times the tenant's circuit breaker opened.
    pub breaker_opens: u64,
    /// Requests shed at the door by an open breaker.
    pub breaker_shed: u64,
    /// Requests shed by the brownout ladder.
    pub brownout_shed: u64,
    /// Requests served degraded (cheap read) under brownout.
    pub degraded: u64,
    /// Median request latency, ns (from scheduled arrival).
    pub p50_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// 99.9th percentile latency, ns.
    pub p999_ns: u64,
    /// Maximum recorded latency, ns.
    pub max_ns: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Completed requests per wall-clock second.
    pub goodput_rps: f64,
    /// Budget state at end of run (`None` if unbudgeted).
    pub budget: Option<BudgetSnapshot>,
    /// End-of-run heap-census attribution for this tenant — block count
    /// and side-metadata live bytes keyed off the tenant's budget heap
    /// ownership (`None` when the server ran without telemetry or the
    /// census had no row for the tenant).
    pub census: Option<mpl_obs::TenantCensus>,
}

/// Runtime/GC activity during the run (deltas over the run window).
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// Local (moving) collections.
    pub lgc_runs: u64,
    /// Concurrent (entangled-space) collections.
    pub cgc_runs: u64,
    /// Total LGC pause time, ns.
    pub lgc_pause_ns: u64,
    /// Total CGC pause time, ns.
    pub cgc_pause_ns: u64,
    /// GC pause time as a percentage of wall clock: how much of the run
    /// overlapped a collector pause.
    pub pause_overlap_pct: f64,
    /// Collections forced by heap-limit or budget pressure.
    pub gc_forced_by_pressure: u64,
    /// Allocation failures raised (budget/limit sheds).
    pub alloc_failures: u64,
    /// Dead objects traced by LGC (soundness canary: must be 0).
    pub lgc_dead_traced: u64,
    /// Entanglement pins during the run.
    pub pins: u64,
    /// Global live bytes at end of run.
    pub live_bytes: usize,
    /// Global pinned bytes at end of run (0 when quiescent).
    pub pinned_bytes: usize,
}

/// The full E12 report for one server run.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// FNV digest of the replayed schedule (determinism witness).
    pub digest: u64,
    /// Wall-clock duration of the run, ns.
    pub wall_ns: u64,
    /// Requests offered by the schedule.
    pub offered: usize,
    /// Requests completed across all tenants.
    pub completed_total: u64,
    /// Requests shed across all tenants.
    pub shed_total: u64,
    /// Aggregate goodput, completed requests per second.
    pub goodput_rps: f64,
    /// Per-tenant rows, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// GC activity over the run window.
    pub gc: GcReport,
    /// Least-squares slope of the live-bytes gauge over the run,
    /// bytes/second. ≈0 is the flat-memory steady-state witness.
    pub live_slope_bytes_per_s: f64,
    /// Telemetry samples the slope was fit over (0 ⇒ sampler off, slope
    /// trivially 0 — CI requires this to be nonzero).
    pub live_samples: usize,
    /// End-of-run heap census (occupancy, fragmentation, per-tenant
    /// attribution); `None` when the server ran without telemetry.
    pub census: Option<mpl_obs::HeapCensus>,
}

/// Least-squares slope of `live_bytes` against time, in bytes/second.
/// Returns 0 for fewer than 2 samples or a degenerate time axis.
pub fn live_slope(samples: &[Sample]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for s in samples {
        let x = s.t_ns as f64 / 1e9;
        let y = s.live_bytes as f64;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

impl ServerReport {
    /// Renders the report as a JSON document (machine-readable mode; the
    /// E12 CI gate parses this).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("experiment", "e12_server")
            .field_u64("schedule_digest", self.digest)
            .field_u64("wall_ns", self.wall_ns)
            .field_u64("offered", self.offered as u64)
            .field_u64("completed", self.completed_total)
            .field_u64("shed", self.shed_total)
            .field_f64("goodput_rps", self.goodput_rps)
            .field_f64("live_slope_bytes_per_s", self.live_slope_bytes_per_s)
            .field_u64("live_samples", self.live_samples as u64);
        w.key("gc").begin_object();
        w.field_u64("lgc_runs", self.gc.lgc_runs)
            .field_u64("cgc_runs", self.gc.cgc_runs)
            .field_u64("lgc_pause_ns", self.gc.lgc_pause_ns)
            .field_u64("cgc_pause_ns", self.gc.cgc_pause_ns)
            .field_f64("pause_overlap_pct", self.gc.pause_overlap_pct)
            .field_u64("gc_forced_by_pressure", self.gc.gc_forced_by_pressure)
            .field_u64("alloc_failures", self.gc.alloc_failures)
            .field_u64("lgc_dead_traced", self.gc.lgc_dead_traced)
            .field_u64("pins", self.gc.pins)
            .field_u64("live_bytes", self.gc.live_bytes as u64)
            .field_u64("pinned_bytes", self.gc.pinned_bytes as u64);
        w.end_object();
        w.key("tenants").begin_array();
        for t in &self.tenants {
            w.begin_object()
                .field_str("name", &t.name)
                .field_u64("admitted", t.admitted)
                .field_u64("completed", t.completed)
                .field_u64("shed_budget", t.shed_budget)
                .field_u64("shed_injected", t.shed_injected)
                .field_u64("maintenance_gcs", t.maintenance_gcs)
                .field_u64("timed_out", t.timed_out)
                .field_u64("retried", t.retried)
                .field_u64("breaker_opens", t.breaker_opens)
                .field_u64("breaker_shed", t.breaker_shed)
                .field_u64("brownout_shed", t.brownout_shed)
                .field_u64("degraded", t.degraded)
                .field_u64("p50_ns", t.p50_ns)
                .field_u64("p99_ns", t.p99_ns)
                .field_u64("p999_ns", t.p999_ns)
                .field_u64("max_ns", t.max_ns)
                .field_f64("mean_ns", t.mean_ns)
                .field_f64("goodput_rps", t.goodput_rps);
            if let Some(b) = &t.budget {
                w.key("budget").begin_object();
                w.field_u64("limit", b.limit as u64)
                    .field_u64("live_bytes", b.live_bytes as u64)
                    .field_u64("max_live_bytes", b.max_live_bytes as u64)
                    .field_u64("sheds", b.sheds)
                    .field_u64("forced_gcs", b.forced_gcs);
                w.end_object();
            }
            if let Some(c) = &t.census {
                w.key("census").begin_object();
                w.field_u64("blocks", c.blocks)
                    .field_u64("entangled_blocks", c.entangled_blocks)
                    .field_u64("live_bytes", c.live_bytes)
                    .field_u64("pinned_objects", c.pinned_objects);
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        if let Some(census) = &self.census {
            // Spliced verbatim: the census renders itself so the schema
            // stays owned by `mpl_obs::HeapCensus::to_json`.
            w.key("census").value_raw(&census.to_json());
        }
        w.end_object();
        w.finish()
    }

    /// Renders a human-readable SLO table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offered {}  completed {}  shed {}  goodput {:.0} rps  wall {:.2}s  \
             gc-overlap {:.2}%  live-slope {:+.0} B/s (n={})\n",
            self.offered,
            self.completed_total,
            self.shed_total,
            self.goodput_rps,
            self.wall_ns as f64 / 1e9,
            self.gc.pause_overlap_pct,
            self.live_slope_bytes_per_s,
            self.live_samples,
        ));
        out.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>7} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
            "tenant",
            "admitted",
            "completed",
            "shed",
            "p50(us)",
            "p99(us)",
            "p999(us)",
            "max(us)",
            "goodput"
        ));
        for t in &self.tenants {
            out.push_str(&format!(
                "{:<10} {:>9} {:>9} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12.1}\n",
                t.name,
                t.admitted,
                t.completed,
                t.shed_budget + t.shed_injected + t.breaker_shed + t.brownout_shed,
                t.p50_ns as f64 / 1e3,
                t.p99_ns as f64 / 1e3,
                t.p999_ns as f64 / 1e3,
                t.max_ns as f64 / 1e3,
                t.goodput_rps,
            ));
            if t.timed_out + t.breaker_opens + t.brownout_shed + t.degraded > 0 {
                out.push_str(&format!(
                    "{:<10}   timeouts {}  retries {}  breaker-opens {}  breaker-shed {}  \
                     brownout-shed {}  degraded {}\n",
                    "",
                    t.timed_out,
                    t.retried,
                    t.breaker_opens,
                    t.breaker_shed,
                    t.brownout_shed,
                    t.degraded,
                ));
            }
            if let Some(b) = &t.budget {
                if b.limit != 0 {
                    out.push_str(&format!(
                        "{:<10}   budget {}/{} KiB  peak {} KiB  sheds {}  forced-gcs {}\n",
                        "",
                        b.live_bytes / 1024,
                        b.limit / 1024,
                        b.max_live_bytes / 1024,
                        b.sheds,
                        b.forced_gcs,
                    ));
                }
            }
            if let Some(c) = &t.census {
                out.push_str(&format!(
                    "{:<10}   census {} blocks ({} entangled)  {} KiB live  {} pinned\n",
                    "",
                    c.blocks,
                    c.entangled_blocks,
                    c.live_bytes / 1024,
                    c.pinned_objects,
                ));
            }
        }
        if let Some(census) = &self.census {
            out.push_str(&format!(
                "census: {} blocks  {} objects  frag {:.1}%  clean-blocks {:.1}%  \
                 provenance {} samples\n",
                census.blocks,
                census.objects(),
                census.fragmentation() * 100.0,
                census.clean_block_ratio() * 100.0,
                census.provenance.recorded,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ns: u64, live: u64) -> Sample {
        Sample {
            t_ns,
            alloc_bytes_per_s: 0.0,
            allocs_per_s: 0.0,
            live_bytes: live,
            pinned_bytes: 0,
            worker_utilization: 0.0,
        }
    }

    #[test]
    fn slope_of_flat_series_is_zero() {
        let s: Vec<_> = (0..10).map(|i| sample(i * 1_000_000_000, 4096)).collect();
        assert!(live_slope(&s).abs() < 1e-9);
    }

    #[test]
    fn slope_recovers_linear_growth() {
        // 1 KiB per second.
        let s: Vec<_> = (0..20)
            .map(|i| sample(i * 1_000_000_000, 1024 * i))
            .collect();
        let k = live_slope(&s);
        assert!((k - 1024.0).abs() < 1.0, "slope {k}");
    }

    #[test]
    fn slope_degenerate_cases() {
        assert_eq!(live_slope(&[]), 0.0);
        assert_eq!(live_slope(&[sample(5, 10)]), 0.0);
        assert_eq!(live_slope(&[sample(5, 10), sample(5, 99)]), 0.0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let rep = ServerReport {
            digest: 42,
            wall_ns: 1_000_000,
            offered: 10,
            completed_total: 9,
            shed_total: 1,
            goodput_rps: 9000.0,
            tenants: vec![TenantReport {
                name: "a\"b".into(),
                admitted: 10,
                completed: 9,
                shed_budget: 1,
                shed_injected: 0,
                maintenance_gcs: 2,
                timed_out: 3,
                retried: 2,
                breaker_opens: 1,
                breaker_shed: 4,
                brownout_shed: 5,
                degraded: 6,
                p50_ns: 100,
                p99_ns: 500,
                p999_ns: 900,
                max_ns: 1000,
                mean_ns: 150.0,
                goodput_rps: 9000.0,
                budget: Some(BudgetSnapshot {
                    name: "a\"b".into(),
                    limit: 1024,
                    live_bytes: 512,
                    max_live_bytes: 700,
                    sheds: 1,
                    forced_gcs: 3,
                }),
                census: Some(mpl_obs::TenantCensus {
                    name: "a\"b".into(),
                    blocks: 4,
                    entangled_blocks: 1,
                    live_bytes: 2048,
                    pinned_objects: 2,
                    budget_live_bytes: 512,
                    budget_limit: 1024,
                }),
            }],
            gc: GcReport::default(),
            live_slope_bytes_per_s: -1.5,
            live_samples: 7,
            census: Some(mpl_obs::HeapCensus {
                blocks: 4,
                live_bytes: 2048,
                ..mpl_obs::HeapCensus::default()
            }),
        };
        let j = rep.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schedule_digest\":42"));
        assert!(j.contains("\"a\\\"b\""));
        assert!(j.contains("\"sheds\":1"));
        assert!(j.contains("\"census\""));
        assert!(j.contains("\"clean_block_ratio\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let table = rep.render_table();
        assert!(table.contains("tenant"));
        assert!(table.contains("budget"));
        assert!(table.contains("census"));
    }
}
