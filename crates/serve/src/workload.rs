//! Per-session state and fork/join request bodies.
//!
//! Every session owns three structures in its tenant's heap forest, all
//! rooted on the tenant's persistent root stack so they survive between
//! requests and across collections:
//!
//! * a **cache**: a mutable array of payload slots, overwritten by
//!   inserts (old payloads become garbage — the flat-memory invariant
//!   depends on the local collector reclaiming them);
//! * **counters**: a raw (pointer-free) array, updated with atomic RMWs
//!   from concurrent branches without any barrier traffic;
//! * a **feed**: a cons list pushed at the head and truncated once it
//!   reaches [`FEED_CAP`], bounding retained memory.
//!
//! Requests fork two branches over this state. Under
//! [`Profile::Disentangled`] the branches touch disjoint cache halves and
//! only read pre-request (ancestor-heap) objects, so the entanglement
//! barrier stays on its fast path. Under [`Profile::Entangled`] branches
//! deliberately publish fresh allocations into slots the sibling reads —
//! the sibling's read observes a remote object and the runtime pins it:
//! sustained entanglement pressure, the adversarial case E12 measures.
//!
//! Code here follows the moving-collector discipline the benchmark
//! suite uses throughout: a `Value` resolved from a [`Handle`] is
//! re-resolved (`m.get`) after every allocation and every fork, because
//! either may trigger a local collection that moves the object.

use mpl_heap::Value;
use mpl_runtime::{Handle, Mutator};

use crate::traffic::RequestKind;

/// Feed length at which the list is dropped and restarted. Bounds each
/// session's retained feed memory.
pub const FEED_CAP: u64 = 256;

/// Counter slot indices in the session's raw counter array.
const C_REQUESTS: usize = 0;
const C_READS: usize = 1;
const C_INSERTS: usize = 2;
const C_FEED_PUSHES: usize = 3;
const C_FEED_LEN: usize = 4;
const C_SCANS: usize = 5;
/// Number of raw counter slots.
const C_SLOTS: usize = 6;

/// How sibling branches of a request touch shared session state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Branches read only ancestor-heap data and write disjoint slots:
    /// no entangled reads, no pins, barrier fast path throughout.
    Disentangled,
    /// Branches publish fresh allocations into slots the sibling then
    /// reads: entangled reads, pinning, remset and CGC traffic.
    Entangled,
}

/// Handles to one session's rooted state. Cloneable (handles are slot
/// references into the tenant's persistent root stack).
#[derive(Clone, Debug)]
pub struct SessionState {
    /// The payload cache array.
    pub cache: Handle,
    /// The raw counter array.
    pub counters: Handle,
    /// Ref cell holding the feed list head (`Unit` when empty).
    pub feed: Handle,
    /// Cache slot count (fixed at init).
    pub slots: usize,
}

/// Allocates one session's state in the current (tenant root) heap and
/// roots it on the task's — i.e. the tenant session's — root stack.
/// Each structure is rooted before the next allocation so a collection
/// triggered mid-init cannot sweep it.
pub fn init_session(m: &mut Mutator<'_>, cache_slots: usize) -> SessionState {
    let slots = cache_slots.max(2);
    let cache = m.alloc_array(slots, Value::Unit);
    let cache = m.root(cache);
    let counters = m.alloc_raw(C_SLOTS);
    let counters = m.root(counters);
    let feed = m.alloc_ref(Value::Unit);
    let feed = m.root(feed);
    SessionState {
        cache,
        counters,
        feed,
        slots,
    }
}

/// Runs one request against `st`. Returns a checksum value (ignored by
/// the server, asserted by tests).
pub fn run_request(
    m: &mut Mutator<'_>,
    st: &SessionState,
    kind: RequestKind,
    size: usize,
    profile: Profile,
) -> Value {
    let counters = m.get(&st.counters);
    let seq = m.raw_fetch_add(counters, C_REQUESTS, 1);
    match kind {
        RequestKind::Read => read_request(m, st, seq),
        RequestKind::Insert => insert_request(m, st, seq, size, profile),
        RequestKind::Feed => feed_request(m, st, seq, size, profile),
        RequestKind::Scan => scan_request(m, st, seq),
    }
}

/// Sums payloads over one half of the cache. Reads only (no allocation,
/// so the resolved array cannot move mid-loop); every object it can see
/// was merged into the tenant root heap by an earlier join — or, under
/// the entangled profile, freshly published by the concurrent sibling.
fn sum_range(m: &mut Mutator<'_>, st: &SessionState, lo: usize, hi: usize) -> i64 {
    let cache = m.get(&st.cache);
    let mut acc = 0i64;
    for i in lo..hi {
        let v = m.arr_get(cache, i);
        if let Value::Obj(_) = v {
            if let Value::Int(x) = m.arr_get(v, 0) {
                acc = acc.wrapping_add(x);
            }
        }
    }
    acc
}

fn bump(m: &mut Mutator<'_>, st: &SessionState, slot: usize, by: u64) -> u64 {
    let counters = m.get(&st.counters);
    m.raw_fetch_add(counters, slot, by)
}

fn read_request(m: &mut Mutator<'_>, st: &SessionState, _seq: u64) -> Value {
    let mid = st.slots / 2;
    let slots = st.slots;
    let (stl, str_) = (st.clone(), st.clone());
    let (a, b) = m.fork(
        move |m| Value::Int(sum_range(m, &stl, 0, mid)),
        move |m| Value::Int(sum_range(m, &str_, mid, slots)),
    );
    bump(m, st, C_READS, 1);
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        _ => Value::Unit,
    }
}

/// Allocates one payload array of `size` cells, first cell = `tag`.
fn alloc_payload(m: &mut Mutator<'_>, size: usize, tag: i64) -> Value {
    m.alloc_array(size.max(1) * 8, Value::Int(tag))
}

/// One insert branch: publish a fresh payload into `write_slot`, then
/// read back `read_slot` (under the entangled profile that is the slot
/// the *sibling* writes, so the read may observe a remote object).
fn insert_branch(
    m: &mut Mutator<'_>,
    st: &SessionState,
    write_slot: usize,
    read_slot: usize,
    size: usize,
    tag: i64,
) -> Value {
    let p = alloc_payload(m, size, tag);
    // Re-resolve: the payload allocation may have moved the cache.
    let cache = m.get(&st.cache);
    m.arr_set(cache, write_slot, p);
    let v = m.arr_get(cache, read_slot);
    if let Value::Obj(_) = v {
        m.arr_get(v, 0)
    } else {
        Value::Int(0)
    }
}

fn insert_request(
    m: &mut Mutator<'_>,
    st: &SessionState,
    seq: u64,
    size: usize,
    profile: Profile,
) -> Value {
    let slots = st.slots;
    let mid = slots / 2;
    // Each branch publishes a fresh payload. Disentangled: branches keep
    // to their own half and read back only their *own* slot. Entangled:
    // each branch reads the slot the *sibling* writes — whichever branch
    // reads after its sibling's write observes a remote (unjoined-heap)
    // object, and the barrier pins it.
    let la = (seq as usize) % mid.max(1);
    let rb = mid + (seq as usize) % (slots - mid).max(1);
    let (read_l, read_r) = match profile {
        Profile::Disentangled => (la, rb),
        Profile::Entangled => (rb, la),
    };
    let (stl, str_) = (st.clone(), st.clone());
    let tag = seq as i64;
    let (a, b) = m.fork(
        move |m| insert_branch(m, &stl, la, read_l, size, tag),
        move |m| insert_branch(m, &str_, rb, read_r, size, -tag),
    );
    bump(m, st, C_INSERTS, 1);
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        _ => Value::Unit,
    }
}

/// Pushes `n` nodes onto the feed list head. Re-resolves the head ref
/// on every iteration: each node allocation can move it.
fn push_feed(m: &mut Mutator<'_>, st: &SessionState, n: usize, tag: i64) -> i64 {
    let mut acc = 0i64;
    for i in 0..n {
        let feed = m.get(&st.feed);
        let head = m.read_ref(feed);
        let node = m.alloc_tuple(&[Value::Int(tag.wrapping_add(i as i64)), head]);
        let feed = m.get(&st.feed);
        m.write_ref(feed, node);
        acc = acc.wrapping_add(tag.wrapping_add(i as i64));
    }
    acc
}

/// Walks up to `limit` feed nodes, summing values. Read-only: no
/// allocation, so the chain cannot move underfoot (remote nodes are
/// pinned by the read barrier as they are traversed).
fn walk_feed(m: &mut Mutator<'_>, st: &SessionState, limit: usize) -> i64 {
    let feed = m.get(&st.feed);
    let mut cur = m.read_ref(feed);
    let mut acc = 0i64;
    let mut n = 0;
    while let Value::Obj(_) = cur {
        if n >= limit {
            break;
        }
        if let Value::Int(x) = m.tuple_get(cur, 0) {
            acc = acc.wrapping_add(x);
        }
        cur = m.tuple_get(cur, 1);
        n += 1;
    }
    acc
}

fn feed_request(
    m: &mut Mutator<'_>,
    st: &SessionState,
    seq: u64,
    size: usize,
    profile: Profile,
) -> Value {
    let n = size.max(1);
    let (stl, str_) = (st.clone(), st.clone());
    let (a, b) = match profile {
        // Left pushes; right only touches the pointer-free counters, so
        // it never observes the sibling's fresh nodes.
        Profile::Disentangled => m.fork(
            move |m| Value::Int(push_feed(m, &stl, n, seq as i64)),
            move |m| {
                let c = bump(m, &str_, C_FEED_PUSHES, n as u64);
                Value::Int(c as i64)
            },
        ),
        // Left pushes while right walks the head: the walk crosses into
        // the sibling's unjoined heap and pins every node it traverses.
        Profile::Entangled => m.fork(
            move |m| Value::Int(push_feed(m, &stl, n, seq as i64)),
            move |m| {
                bump(m, &str_, C_FEED_PUSHES, n as u64);
                Value::Int(walk_feed(m, &str_, n * 2))
            },
        ),
    };
    // Truncate: once the list reaches FEED_CAP the whole chain is
    // dropped, so retained feed memory is bounded and the old nodes are
    // the local collector's to reclaim.
    let len = bump(m, st, C_FEED_LEN, n as u64) + n as u64;
    if len >= FEED_CAP {
        let feed = m.get(&st.feed);
        m.write_ref(feed, Value::Unit);
        let counters = m.get(&st.counters);
        m.raw_set(counters, C_FEED_LEN, 0);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        _ => Value::Unit,
    }
}

fn scan_request(m: &mut Mutator<'_>, st: &SessionState, _seq: u64) -> Value {
    let slots = st.slots;
    let (stl, str_) = (st.clone(), st.clone());
    let (a, b) = m.fork(
        move |m| Value::Int(walk_feed(m, &stl, FEED_CAP as usize)),
        move |m| Value::Int(sum_range(m, &str_, 0, slots)),
    );
    bump(m, st, C_SCANS, 1);
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        _ => Value::Unit,
    }
}

/// Reads the session's request counter (tests/diagnostics).
pub fn requests_counted(m: &mut Mutator<'_>, st: &SessionState) -> u64 {
    let counters = m.get(&st.counters);
    m.raw_get(counters, C_REQUESTS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::RequestKind;
    use mpl_runtime::{Runtime, RuntimeConfig};

    fn drive(profile: Profile) -> (u64, mpl_heap::StatsSnapshot) {
        let rt = Runtime::new(RuntimeConfig::managed().with_threads_exact(2));
        let session = rt.new_tenant("w", 0);
        let mut states = Vec::new();
        rt.run_session(&session, |m| {
            states.push(init_session(m, 16));
            Value::Unit
        });
        let st = states.pop().unwrap();
        let kinds = [
            RequestKind::Insert,
            RequestKind::Read,
            RequestKind::Feed,
            RequestKind::Insert,
            RequestKind::Scan,
            RequestKind::Feed,
        ];
        for (i, k) in kinds.iter().cycle().take(60).enumerate() {
            let stc = st.clone();
            rt.run_session(&session, move |m| {
                run_request(m, &stc, *k, 1 + i % 4, profile)
            });
        }
        let stc = st.clone();
        let counted = match rt.run_session(&session, move |m| {
            Value::Int(requests_counted(m, &stc) as i64)
        }) {
            Value::Int(x) => x as u64,
            _ => 0,
        };
        rt.assert_heap_sound();
        (counted, rt.stats())
    }

    #[test]
    fn disentangled_requests_never_pin() {
        let (counted, stats) = drive(Profile::Disentangled);
        assert_eq!(counted, 60);
        assert_eq!(stats.entangled_reads, 0, "disentangled profile pinned");
        assert_eq!(stats.pins, 0);
    }

    #[test]
    fn entangled_requests_pin_and_unpin() {
        let (counted, stats) = drive(Profile::Entangled);
        assert_eq!(counted, 60);
        assert!(stats.pins > 0, "entangled profile never entangled");
        assert_eq!(stats.pinned_bytes, 0, "joins must unpin everything");
    }

    #[test]
    fn state_survives_across_requests() {
        let rt = Runtime::new(RuntimeConfig::managed());
        let session = rt.new_tenant("persist", 0);
        let mut states = Vec::new();
        rt.run_session(&session, |m| {
            states.push(init_session(m, 8));
            Value::Unit
        });
        let st = states.pop().unwrap();
        for i in 0..200u64 {
            let stc = st.clone();
            rt.run_session(&session, move |m| {
                run_request(m, &stc, RequestKind::Insert, 4, Profile::Disentangled)
            });
            // Plenty of garbage from overwritten slots; collections run
            // via carried debt. State must stay readable throughout.
            if i % 50 == 49 {
                let stc = st.clone();
                let counted = rt.run_session(&session, move |m| {
                    Value::Int(requests_counted(m, &stc) as i64)
                });
                assert!(matches!(counted, Value::Int(x) if x as u64 >= i));
            }
        }
        rt.assert_heap_sound();
    }
}
