//! # mpl-lang — the paper's core calculus, executable
//!
//! λ-par-ref: a call-by-value lambda calculus with pairs, recursion,
//! mutable references, fork-join parallelism (`par`), and strict futures
//! (`future`/`touch` — the paper's future-work direction), equipped with
//! the *hierarchical-heap* small-step semantics of *"Efficient Parallel
//! Functional Programming with Effects"* (PLDI 2023):
//!
//! * every object is tagged with its allocating task; the dynamic task
//!   tree is the heap hierarchy ([`tasktree`]);
//! * dereferencing a cell that reveals a pointer to a *concurrent* task's
//!   object is an **entangled read**; the object is pinned at the depth of
//!   the tasks' least common ancestor ([`machine`], [`store`]);
//! * joins merge heaps and unpin objects whose entanglement has ended;
//! * the cost metrics (work, span, entangled accesses, pin counts, maximum
//!   pinned set, entanglement footprint) are accumulated exactly as the
//!   paper defines them ([`machine::Costs`]).
//!
//! The interpreter ([`interp`]) drives the semantics under a configurable
//! schedule, making entanglement's schedule-dependence observable.
//!
//! ```
//! use mpl_lang::{run_program, Options};
//!
//! let out = run_program("let r = ref 41 in r := !r + 1; !r", Options::default()).unwrap();
//! assert_eq!(out.render(), "42");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod examples;
pub mod interp;
pub mod lexer;
pub mod machine;
pub mod parser;
pub mod store;
pub mod syntax;
pub mod tasktree;
pub mod value;

pub use interp::{run_expr, run_program, Options, Outcome, RunError, Schedule};
pub use machine::{Costs, LangError, LangMode, Machine, StepEvent};
pub use parser::{parse, ParseError};
pub use store::{LangObj, LangStore, Stored};
pub use syntax::{BinOp, Expr};
pub use tasktree::{TaskId, TaskTree};
pub use value::{Env, Loc, Val};
