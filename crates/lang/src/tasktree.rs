//! The dynamic task tree, which doubles as the heap hierarchy of the
//! formal semantics: each task owns the objects it allocates, `par`
//! extends the tree with two children, and a join merges both children
//! into the parent.

/// A task (equivalently, heap) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub usize);

#[derive(Clone, Debug)]
struct TNode {
    parent: usize,
    depth: u16,
    merged_into: usize,
}

/// The task tree with union-find merging (mirrors the runtime's O(1)
/// joins).
#[derive(Clone, Debug, Default)]
pub struct TaskTree {
    nodes: Vec<TNode>,
}

impl TaskTree {
    /// Creates a tree containing only the root task.
    pub fn new() -> (TaskTree, TaskId) {
        let t = TaskTree {
            nodes: vec![TNode {
                parent: 0,
                depth: 0,
                merged_into: 0,
            }],
        };
        (t, TaskId(0))
    }

    /// Forks two children under `parent`.
    pub fn fork(&mut self, parent: TaskId) -> (TaskId, TaskId) {
        let p = self.find(parent).0;
        let depth = self.nodes[p].depth + 1;
        let l = self.nodes.len();
        self.nodes.push(TNode {
            parent: p,
            depth,
            merged_into: l,
        });
        let r = self.nodes.len();
        self.nodes.push(TNode {
            parent: p,
            depth,
            merged_into: r,
        });
        (TaskId(l), TaskId(r))
    }

    /// Spawns a *single* child under `parent` (a future task). The parent
    /// keeps running concurrently with the child.
    pub fn spawn_one(&mut self, parent: TaskId) -> TaskId {
        let p = self.find(parent).0;
        let depth = self.nodes[p].depth + 1;
        let c = self.nodes.len();
        self.nodes.push(TNode {
            parent: p,
            depth,
            merged_into: c,
        });
        TaskId(c)
    }

    /// Merges a completed future's heap into its parent (no sibling — the
    /// single-child analogue of [`TaskTree::join`]).
    pub fn absorb(&mut self, child: TaskId) {
        let c = self.find(child).0;
        let p = self.find(TaskId(self.nodes[c].parent)).0;
        debug_assert_ne!(c, p, "cannot absorb the root");
        self.nodes[c].merged_into = p;
    }

    /// Merges both children into `parent` (the join).
    pub fn join(&mut self, parent: TaskId, left: TaskId, right: TaskId) {
        let p = self.find(parent).0;
        for c in [left, right] {
            let c = self.find(c).0;
            debug_assert_eq!(self.nodes[c].parent, p, "join of a non-child");
            self.nodes[c].merged_into = p;
        }
    }

    /// Canonicalizes a task id through completed joins (path-compressing).
    pub fn find(&mut self, t: TaskId) -> TaskId {
        let mut cur = t.0;
        while self.nodes[cur].merged_into != cur {
            cur = self.nodes[cur].merged_into;
        }
        let mut walk = t.0;
        while walk != cur {
            let next = self.nodes[walk].merged_into;
            self.nodes[walk].merged_into = cur;
            walk = next;
        }
        TaskId(cur)
    }

    /// Depth of (the canonical representative of) `t`.
    pub fn depth(&mut self, t: TaskId) -> u16 {
        let c = self.find(t).0;
        self.nodes[c].depth
    }

    /// True if (canonical) `anc` lies on the root path of (canonical) `t`.
    /// This is the disentanglement test: an access from task `t` to an
    /// object owned by `o` is **local** iff `is_on_path(o, t)`.
    pub fn is_on_path(&mut self, anc: TaskId, t: TaskId) -> bool {
        let anc = self.find(anc).0;
        let mut cur = self.find(t).0;
        loop {
            if cur == anc {
                return true;
            }
            let p = self.nodes[cur].parent;
            let p = self.find(TaskId(p)).0;
            if p == cur {
                return false;
            }
            cur = p;
        }
    }

    /// Depth of the least common ancestor of two tasks — the entanglement
    /// level assigned when one accesses the other's object.
    pub fn lca_depth(&mut self, a: TaskId, b: TaskId) -> u16 {
        let mut a = self.find(a).0;
        let mut b = self.find(b).0;
        while a != b {
            let da = self.nodes[a].depth;
            let db = self.nodes[b].depth;
            if da >= db {
                a = self.find(TaskId(self.nodes[a].parent)).0;
            } else {
                b = self.find(TaskId(self.nodes[b].parent)).0;
            }
        }
        self.nodes[a].depth
    }

    /// Number of task ids ever created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty (never: the root always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_canonicalizes() {
        let (mut t, root) = TaskTree::new();
        let (l, r) = t.fork(root);
        assert_eq!(t.depth(l), 1);
        assert!(t.is_on_path(root, l));
        assert!(!t.is_on_path(l, r), "siblings are not on each other's path");
        t.join(root, l, r);
        assert_eq!(t.find(l), root);
        assert!(t.is_on_path(l, root), "merged ids alias the parent");
    }

    #[test]
    fn lca_depth_of_cousins() {
        let (mut t, root) = TaskTree::new();
        let (l, r) = t.fork(root);
        let (ll, _lr) = t.fork(l);
        let (rl, _rr) = t.fork(r);
        assert_eq!(t.lca_depth(ll, rl), 0, "cousins meet at the root");
        assert_eq!(t.lca_depth(ll, l), 1);
        assert_eq!(t.lca_depth(ll, ll), 2);
    }

    #[test]
    fn spawn_one_and_absorb() {
        let (mut t, root) = TaskTree::new();
        let f = t.spawn_one(root);
        assert_eq!(t.depth(f), 1);
        assert!(t.is_on_path(root, f), "the future is under its creator");
        assert!(!t.is_on_path(f, root), "but not vice versa");
        t.absorb(f);
        assert_eq!(t.find(f), root, "absorbed into the creator");
        assert!(t.is_on_path(f, root), "its objects are now the creator's");
    }

    #[test]
    fn future_under_fork_absorbs_into_the_branch() {
        let (mut t, root) = TaskTree::new();
        let (l, r) = t.fork(root);
        let f = t.spawn_one(l);
        assert!(!t.is_on_path(f, r), "siblings cannot see the future's heap");
        assert_eq!(t.lca_depth(f, r), 0, "they meet at the root");
        t.absorb(f);
        assert_eq!(t.find(f), t.find(l));
    }

    #[test]
    fn path_through_merged_nodes() {
        let (mut t, root) = TaskTree::new();
        let (l, r) = t.fork(root);
        let (ll, lr) = t.fork(l);
        t.join(l, ll, lr);
        // ll merged into l; objects owned by ll are now on the path of
        // any descendant of l.
        let (l2, _r2) = t.fork(l);
        assert!(t.is_on_path(ll, l2));
        assert!(!t.is_on_path(ll, r));
    }
}
