//! The language-level store: heap objects tagged with their allocating
//! task, pin state, and entanglement level — a direct transcription of the
//! paper's object-granularity formulation.

use std::rc::Rc;

use crate::syntax::Expr;
use crate::tasktree::TaskId;
use crate::value::{Env, Loc, Val};

/// Heap object payloads.
#[derive(Clone, Debug)]
pub enum Stored {
    /// An immutable pair.
    Pair(Val, Val),
    /// A (non-recursive) closure.
    Closure(Env, String, Rc<Expr>),
    /// A recursive closure (`fix f x => e`).
    FixClosure(Env, String, String, Rc<Expr>),
    /// A mutable reference cell.
    Cell(Val),
    /// A mutable array — like cells, a source of entanglement.
    Arr(Vec<Val>),
}

impl Stored {
    /// Values directly referenced by this object (traced edges).
    pub fn children(&self) -> Vec<Val> {
        match self {
            Stored::Pair(a, b) => vec![*a, *b],
            Stored::Closure(env, _, _) => env.values(),
            Stored::FixClosure(env, _, _, _) => env.values(),
            Stored::Cell(v) => vec![*v],
            Stored::Arr(vs) => vs.clone(),
        }
    }

    /// True for mutable objects (reads are barriered).
    pub fn is_mutable(&self) -> bool {
        matches!(self, Stored::Cell(_) | Stored::Arr(_))
    }
}

/// One heap object with the metadata the semantics tracks.
#[derive(Clone, Debug)]
pub struct LangObj {
    /// Payload.
    pub stored: Stored,
    /// The task (heap) that allocated the object. Canonicalize through
    /// the task tree after joins.
    pub owner: TaskId,
    /// `Some(level)` if pinned; the level is the depth of the LCA of the
    /// entangling tasks.
    pub pinned: Option<u16>,
}

/// The store: an append-only vector of objects (the formal semantics never
/// reuses locations; reclamation is modeled by the runtime, not the
/// calculus). A sorted index of pinned locations keeps join-time unpinning
/// proportional to the number of pins, not the store size.
#[derive(Clone, Debug, Default)]
pub struct LangStore {
    objs: Vec<LangObj>,
    pinned_set: std::collections::BTreeSet<usize>,
}

impl LangStore {
    /// An empty store.
    pub fn new() -> LangStore {
        LangStore::default()
    }

    /// Allocates an object owned by `owner`.
    pub fn alloc(&mut self, stored: Stored, owner: TaskId) -> Loc {
        self.objs.push(LangObj {
            stored,
            owner,
            pinned: None,
        });
        Loc(self.objs.len() - 1)
    }

    /// Immutable access.
    pub fn get(&self, l: Loc) -> &LangObj {
        &self.objs[l.0]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, l: Loc) -> &mut LangObj {
        &mut self.objs[l.0]
    }

    /// Number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Pins `l` at `level` (keeping the minimum if already pinned).
    /// Returns true if this call created the pin.
    pub fn pin(&mut self, l: Loc, level: u16) -> bool {
        let obj = &mut self.objs[l.0];
        match obj.pinned {
            None => {
                obj.pinned = Some(level);
                self.pinned_set.insert(l.0);
                true
            }
            Some(old) => {
                obj.pinned = Some(old.min(level));
                false
            }
        }
    }

    /// Unpins a single object; returns true if it was pinned.
    pub fn unpin(&mut self, l: Loc) -> bool {
        let obj = &mut self.objs[l.0];
        let was = obj.pinned.is_some();
        obj.pinned = None;
        self.pinned_set.remove(&l.0);
        was
    }

    /// Applies the unpin-at-join rule: unpins every object whose level is
    /// `>= join_depth` **and** whose owner satisfies `in_subtree` (the
    /// joined subtree — pins between unrelated concurrent subtrees must
    /// survive). Returns how many were unpinned.
    pub fn unpin_at_join_where(
        &mut self,
        join_depth: u16,
        mut in_subtree: impl FnMut(TaskId) -> bool,
    ) -> usize {
        let candidates: Vec<usize> = self.pinned_set.iter().copied().collect();
        let mut n = 0;
        for i in candidates {
            let obj = &mut self.objs[i];
            if let Some(level) = obj.pinned {
                if level >= join_depth && in_subtree(obj.owner) {
                    obj.pinned = None;
                    self.pinned_set.remove(&i);
                    n += 1;
                }
            }
        }
        n
    }

    /// Unpin-at-join over the whole store (tests and single-subtree
    /// scenarios).
    pub fn unpin_at_join(&mut self, join_depth: u16) -> usize {
        self.unpin_at_join_where(join_depth, |_| true)
    }

    /// Currently pinned locations (sorted).
    pub fn pinned_locs(&self) -> Vec<Loc> {
        self.pinned_set.iter().map(|&i| Loc(i)).collect()
    }

    /// The **entanglement footprint**: every object reachable from a
    /// pinned object — the paper's bound on the space cost of
    /// entanglement (what the moving collector must leave in place).
    pub fn entanglement_footprint(&self) -> usize {
        let mut seen = vec![false; self.objs.len()];
        let mut stack: Vec<Loc> = self.pinned_locs();
        let mut count = 0;
        while let Some(l) = stack.pop() {
            if seen[l.0] {
                continue;
            }
            seen[l.0] = true;
            count += 1;
            for v in self.objs[l.0].stored.children() {
                if let Val::Loc(c) = v {
                    if !seen[c.0] {
                        stack.push(c);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut s = LangStore::new();
        let l = s.alloc(Stored::Cell(Val::Int(1)), TaskId(0));
        assert!(matches!(s.get(l).stored, Stored::Cell(Val::Int(1))));
        assert_eq!(s.get(l).owner, TaskId(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pin_keeps_minimum_level() {
        let mut s = LangStore::new();
        let l = s.alloc(Stored::Cell(Val::Unit), TaskId(0));
        assert!(s.pin(l, 4));
        assert!(!s.pin(l, 7));
        assert_eq!(s.get(l).pinned, Some(4));
        assert!(!s.pin(l, 2));
        assert_eq!(s.get(l).pinned, Some(2));
    }

    #[test]
    fn unpin_at_join_filters_by_level() {
        let mut s = LangStore::new();
        let a = s.alloc(Stored::Cell(Val::Unit), TaskId(0));
        let b = s.alloc(Stored::Cell(Val::Unit), TaskId(0));
        s.pin(a, 0);
        s.pin(b, 3);
        assert_eq!(s.unpin_at_join(2), 1, "only level >= 2 unpins");
        assert_eq!(s.get(a).pinned, Some(0));
        assert_eq!(s.get(b).pinned, None);
    }

    #[test]
    fn footprint_is_reachable_closure() {
        let mut s = LangStore::new();
        let inner = s.alloc(Stored::Pair(Val::Int(1), Val::Int(2)), TaskId(0));
        let mid = s.alloc(Stored::Pair(Val::Loc(inner), Val::Unit), TaskId(0));
        let cell = s.alloc(Stored::Cell(Val::Loc(mid)), TaskId(0));
        let _unrelated = s.alloc(Stored::Cell(Val::Int(9)), TaskId(0));
        s.pin(cell, 0);
        assert_eq!(s.entanglement_footprint(), 3, "cell -> mid -> inner");
    }
}
