//! The per-task abstract machine: a CEK-style small-step evaluator whose
//! heap accesses implement the paper's entanglement semantics.
//!
//! Each task in the configuration owns one `Machine`. The interpreter
//! ([`crate::interp`]) drives machines one step at a time under a chosen
//! schedule; `par` surfaces as a [`StepEvent::Fork`] that the interpreter
//! turns into two child tasks.

use std::fmt;
use std::rc::Rc;

use crate::store::{LangStore, Stored};
use crate::syntax::{BinOp, Expr};
use crate::tasktree::{TaskId, TaskTree};
use crate::value::{Env, Val};

/// Dynamic errors of the calculus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LangError {
    /// Unbound variable.
    Unbound(String),
    /// Ill-typed operation (e.g. applying an integer).
    Type(String),
    /// Division or modulus by zero.
    DivZero,
    /// Array index out of bounds.
    Bounds,
    /// Entanglement under `DetectOnly` semantics (prior MPL aborts here).
    Entangled,
    /// Global step budget exhausted.
    Fuel,
    /// Every remaining task is blocked on a `touch` (cyclic futures).
    Deadlock,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            LangError::Type(m) => write!(f, "type error: {m}"),
            LangError::DivZero => write!(f, "division by zero"),
            LangError::Deadlock => {
                write!(f, "deadlock: all remaining tasks are blocked on touch")
            }
            LangError::Bounds => write!(f, "array index out of bounds"),
            LangError::Entangled => write!(f, "entanglement detected (DetectOnly semantics)"),
            LangError::Fuel => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for LangError {}

/// Whether entanglement is managed (pinned) or fatal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LangMode {
    /// Manage entanglement by pinning (this paper).
    #[default]
    Managed,
    /// Abort on entanglement (prior MPL).
    DetectOnly,
}

/// Cost metrics accumulated by the semantics — the formal counterpart of
/// the runtime's `mpl_heap::StatsSnapshot`-style counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Costs {
    /// Total small steps (work `W`).
    pub steps: u64,
    /// Critical-path steps (span `S`).
    pub span: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Barriered reads (`!`).
    pub derefs: u64,
    /// Barriered writes (`:=`).
    pub assigns: u64,
    /// Reads that returned a remote pointer.
    pub entangled_reads: u64,
    /// Writes involving a remote object.
    pub entangled_writes: u64,
    /// Pin events (first pins only).
    pub pins: u64,
    /// Unpin events (joins).
    pub unpins: u64,
    /// High-water mark of simultaneously pinned objects.
    pub max_pinned: u64,
    /// High-water mark of the entanglement footprint (objects reachable
    /// from pinned objects) — the paper's space-cost bound.
    pub max_footprint: u64,
    /// Number of `par` expressions executed.
    pub forks: u64,
    /// Number of futures spawned.
    pub futures: u64,
    /// Number of touches performed.
    pub touches: u64,
}

/// One machine step's externally visible outcome.
#[derive(Clone, Debug)]
pub enum StepEvent {
    /// Keep stepping.
    Continue,
    /// The task finished with a value.
    Done(Val),
    /// The task hit `par(e1, e2)`: the interpreter must fork.
    Fork(Rc<Expr>, Rc<Expr>, Env),
    /// The task hit `future e`: the interpreter must spawn a future task
    /// and resume this machine with its handle.
    SpawnFuture(Rc<Expr>, Env),
    /// The task touched the future with this interpreter index; the
    /// interpreter delivers the result (or parks the task).
    Touch(usize),
}

/// Continuation frames.
#[derive(Clone, Debug)]
enum Frame {
    AppFun(Rc<Expr>, Env),
    AppArg(Val),
    PairL(Rc<Expr>, Env),
    PairR(Val),
    FstF,
    SndF,
    LetF(String, Rc<Expr>, Env),
    IfF(Rc<Expr>, Rc<Expr>, Env),
    RefF,
    DerefF,
    AssignL(Rc<Expr>, Env),
    AssignR(Val),
    SeqF(Rc<Expr>, Env),
    ArrLen(Rc<Expr>, Env),
    ArrInit(Val),
    SubArr(Rc<Expr>, Env),
    SubIdx(Val),
    UpdArr(Rc<Expr>, Rc<Expr>, Env),
    UpdIdx(Val, Rc<Expr>, Env),
    UpdVal(Val, Val),
    LengthF,
    TouchF,
    BinL(BinOp, Rc<Expr>, Env),
    BinR(BinOp, Val),
    AndF(Rc<Expr>, Env),
    OrF(Rc<Expr>, Env),
}

/// Control: evaluating an expression or returning a value.
#[derive(Clone, Debug)]
enum Ctrl {
    Eval(Rc<Expr>, Env),
    Ret(Val),
}

/// A task's machine state.
#[derive(Clone, Debug)]
pub struct Machine {
    ctrl: Ctrl,
    stack: Vec<Frame>,
}

impl Machine {
    /// A machine about to evaluate `e` in `env`.
    pub fn new(e: Rc<Expr>, env: Env) -> Machine {
        Machine {
            ctrl: Ctrl::Eval(e, env),
            stack: Vec::new(),
        }
    }

    /// Resumes the machine with a value (after a join delivers the pair).
    pub fn resume_with(&mut self, v: Val) {
        self.ctrl = Ctrl::Ret(v);
    }

    /// Performs one small step on behalf of `task`.
    pub fn step(
        &mut self,
        task: TaskId,
        store: &mut LangStore,
        tree: &mut TaskTree,
        mode: LangMode,
        costs: &mut Costs,
    ) -> Result<StepEvent, LangError> {
        costs.steps += 1;
        let ctrl = std::mem::replace(&mut self.ctrl, Ctrl::Ret(Val::Unit));
        match ctrl {
            Ctrl::Eval(e, env) => self.eval_step(e, env, task, store, costs),
            Ctrl::Ret(v) => self.ret_step(v, task, store, tree, mode, costs),
        }
    }

    fn eval_step(
        &mut self,
        e: Rc<Expr>,
        env: Env,
        task: TaskId,
        store: &mut LangStore,
        costs: &mut Costs,
    ) -> Result<StepEvent, LangError> {
        match &*e {
            Expr::Var(x) => {
                let v = env.lookup(x).ok_or_else(|| LangError::Unbound(x.clone()))?;
                self.ctrl = Ctrl::Ret(v);
            }
            Expr::Int(n) => self.ctrl = Ctrl::Ret(Val::Int(*n)),
            Expr::Bool(b) => self.ctrl = Ctrl::Ret(Val::Bool(*b)),
            Expr::Unit => self.ctrl = Ctrl::Ret(Val::Unit),
            Expr::Lam(x, b) => {
                costs.allocs += 1;
                let l = store.alloc(Stored::Closure(env, x.clone(), Rc::clone(b)), task);
                self.ctrl = Ctrl::Ret(Val::Loc(l));
            }
            Expr::Fix(f, x, b) => {
                costs.allocs += 1;
                let l = store.alloc(
                    Stored::FixClosure(env, f.clone(), x.clone(), Rc::clone(b)),
                    task,
                );
                self.ctrl = Ctrl::Ret(Val::Loc(l));
            }
            Expr::App(a, b) => {
                self.stack.push(Frame::AppFun(Rc::clone(b), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Pair(a, b) => {
                self.stack.push(Frame::PairL(Rc::clone(b), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Fst(a) => {
                self.stack.push(Frame::FstF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Snd(a) => {
                self.stack.push(Frame::SndF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Let(x, a, b) => {
                self.stack
                    .push(Frame::LetF(x.clone(), Rc::clone(b), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::If(c, t, f) => {
                self.stack
                    .push(Frame::IfF(Rc::clone(t), Rc::clone(f), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(c), env);
            }
            Expr::Ref(a) => {
                self.stack.push(Frame::RefF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Deref(a) => {
                self.stack.push(Frame::DerefF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Assign(a, b) => {
                self.stack.push(Frame::AssignL(Rc::clone(b), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Seq(a, b) => {
                self.stack.push(Frame::SeqF(Rc::clone(b), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Par(a, b) => {
                costs.forks += 1;
                return Ok(StepEvent::Fork(Rc::clone(a), Rc::clone(b), env));
            }
            Expr::Future(body) => {
                costs.futures += 1;
                return Ok(StepEvent::SpawnFuture(Rc::clone(body), env));
            }
            Expr::Touch(a) => {
                self.stack.push(Frame::TouchF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Array(n, init) => {
                self.stack.push(Frame::ArrLen(Rc::clone(init), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(n), env);
            }
            Expr::Sub(a, i) => {
                self.stack.push(Frame::SubArr(Rc::clone(i), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Update(a, i, v) => {
                self.stack
                    .push(Frame::UpdArr(Rc::clone(i), Rc::clone(v), env.clone()));
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Length(a) => {
                self.stack.push(Frame::LengthF);
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
            Expr::Bin(op, a, b) => {
                match op {
                    BinOp::And => self.stack.push(Frame::AndF(Rc::clone(b), env.clone())),
                    BinOp::Or => self.stack.push(Frame::OrF(Rc::clone(b), env.clone())),
                    _ => self.stack.push(Frame::BinL(*op, Rc::clone(b), env.clone())),
                }
                self.ctrl = Ctrl::Eval(Rc::clone(a), env);
            }
        }
        Ok(StepEvent::Continue)
    }

    fn ret_step(
        &mut self,
        v: Val,
        task: TaskId,
        store: &mut LangStore,
        tree: &mut TaskTree,
        mode: LangMode,
        costs: &mut Costs,
    ) -> Result<StepEvent, LangError> {
        let Some(frame) = self.stack.pop() else {
            return Ok(StepEvent::Done(v));
        };
        match frame {
            Frame::AppFun(arg, env) => {
                self.stack.push(Frame::AppArg(v));
                self.ctrl = Ctrl::Eval(arg, env);
            }
            Frame::AppArg(fv) => {
                let Val::Loc(fl) = fv else {
                    return Err(LangError::Type(format!("cannot apply {fv}")));
                };
                // Closure reads are immutable: no barrier, per the paper.
                match store.get(fl).stored.clone() {
                    Stored::Closure(cenv, x, body) => {
                        self.ctrl = Ctrl::Eval(body, cenv.bind(x, v));
                    }
                    Stored::FixClosure(cenv, f, x, body) => {
                        self.ctrl = Ctrl::Eval(body, cenv.bind(f, fv).bind(x, v));
                    }
                    other => {
                        return Err(LangError::Type(format!(
                            "cannot apply non-function {other:?}"
                        )))
                    }
                }
            }
            Frame::PairL(b, env) => {
                self.stack.push(Frame::PairR(v));
                self.ctrl = Ctrl::Eval(b, env);
            }
            Frame::PairR(a) => {
                costs.allocs += 1;
                let l = store.alloc(Stored::Pair(a, v), task);
                self.ctrl = Ctrl::Ret(Val::Loc(l));
            }
            Frame::FstF | Frame::SndF => {
                let first = matches!(frame, Frame::FstF);
                let Val::Loc(l) = v else {
                    return Err(LangError::Type(format!("projection from {v}")));
                };
                match &store.get(l).stored {
                    Stored::Pair(a, b) => {
                        self.ctrl = Ctrl::Ret(if first { *a } else { *b });
                    }
                    other => {
                        return Err(LangError::Type(format!(
                            "projection from non-pair {other:?}"
                        )))
                    }
                }
            }
            Frame::LetF(x, b, env) => {
                self.ctrl = Ctrl::Eval(b, env.bind(x, v));
            }
            Frame::IfF(t, f, env) => match v {
                Val::Bool(true) => self.ctrl = Ctrl::Eval(t, env),
                Val::Bool(false) => self.ctrl = Ctrl::Eval(f, env),
                other => return Err(LangError::Type(format!("if on {other}"))),
            },
            Frame::RefF => {
                costs.allocs += 1;
                let l = store.alloc(Stored::Cell(v), task);
                self.ctrl = Ctrl::Ret(Val::Loc(l));
            }
            Frame::DerefF => {
                let Val::Loc(l) = v else {
                    return Err(LangError::Type(format!("deref of {v}")));
                };
                let Stored::Cell(contents) = store.get(l).stored else {
                    return Err(LangError::Type("deref of non-cell".into()));
                };
                costs.derefs += 1;
                // The read barrier: a revealed remote pointer is an
                // entangled read.
                if let Val::Loc(t) = contents {
                    let owner = store.get(t).owner;
                    if !tree.is_on_path(owner, task) {
                        if mode == LangMode::DetectOnly {
                            return Err(LangError::Entangled);
                        }
                        costs.entangled_reads += 1;
                        let level = tree.lca_depth(task, owner);
                        pin(store, t, level, costs);
                    }
                }
                self.ctrl = Ctrl::Ret(contents);
            }
            Frame::AssignL(b, env) => {
                self.stack.push(Frame::AssignR(v));
                self.ctrl = Ctrl::Eval(b, env);
            }
            Frame::AssignR(target) => {
                let Val::Loc(l) = target else {
                    return Err(LangError::Type(format!("assignment to {target}")));
                };
                if !matches!(store.get(l).stored, Stored::Cell(_)) {
                    return Err(LangError::Type("assignment to non-cell".into()));
                }
                costs.assigns += 1;
                let cell_owner = store.get(l).owner;
                let cell_local = tree.is_on_path(cell_owner, task);
                // The write barrier.
                if !cell_local {
                    if mode == LangMode::DetectOnly {
                        return Err(LangError::Entangled);
                    }
                    costs.entangled_writes += 1;
                    if let Val::Loc(t) = v {
                        let level = tree.lca_depth(cell_owner, store.get(t).owner);
                        pin(store, t, level, costs);
                    }
                } else if let Val::Loc(t) = v {
                    let t_owner = store.get(t).owner;
                    if !tree.is_on_path(t_owner, task) {
                        // Storing an already-remote pointer locally.
                        costs.entangled_writes += 1;
                        let level = tree.lca_depth(cell_owner, t_owner);
                        pin(store, t, level, costs);
                    }
                }
                if let Stored::Cell(c) = &mut store.get_mut(l).stored {
                    *c = v;
                }
                self.ctrl = Ctrl::Ret(Val::Unit);
            }
            Frame::SeqF(b, env) => {
                self.ctrl = Ctrl::Eval(b, env);
            }
            Frame::ArrLen(init, env) => {
                self.stack.push(Frame::ArrInit(v));
                self.ctrl = Ctrl::Eval(init, env);
            }
            Frame::ArrInit(nv) => {
                let n = nv
                    .as_int()
                    .ok_or_else(|| LangError::Type(format!("array length {nv}")))?;
                if n < 0 {
                    return Err(LangError::Bounds);
                }
                costs.allocs += 1;
                let l = store.alloc(Stored::Arr(vec![v; n as usize]), task);
                self.ctrl = Ctrl::Ret(Val::Loc(l));
            }
            Frame::SubArr(i, env) => {
                self.stack.push(Frame::SubIdx(v));
                self.ctrl = Ctrl::Eval(i, env);
            }
            Frame::SubIdx(av) => {
                let Val::Loc(l) = av else {
                    return Err(LangError::Type(format!("sub on {av}")));
                };
                let idx = v
                    .as_int()
                    .ok_or_else(|| LangError::Type(format!("index {v}")))?;
                let Stored::Arr(vs) = &store.get(l).stored else {
                    return Err(LangError::Type("sub on non-array".into()));
                };
                let elem = *vs
                    .get(usize::try_from(idx).map_err(|_| LangError::Bounds)?)
                    .ok_or(LangError::Bounds)?;
                costs.derefs += 1;
                // The read barrier, identical to cell dereference.
                if let Val::Loc(t) = elem {
                    let owner = store.get(t).owner;
                    if !tree.is_on_path(owner, task) {
                        if mode == LangMode::DetectOnly {
                            return Err(LangError::Entangled);
                        }
                        costs.entangled_reads += 1;
                        let level = tree.lca_depth(task, owner);
                        pin(store, t, level, costs);
                    }
                }
                self.ctrl = Ctrl::Ret(elem);
            }
            Frame::UpdArr(i, val, env) => {
                self.stack.push(Frame::UpdIdx(v, val, env.clone()));
                self.ctrl = Ctrl::Eval(i, env);
            }
            Frame::UpdIdx(av, val, env) => {
                self.stack.push(Frame::UpdVal(av, v));
                self.ctrl = Ctrl::Eval(val, env);
            }
            Frame::UpdVal(av, iv) => {
                let Val::Loc(l) = av else {
                    return Err(LangError::Type(format!("update on {av}")));
                };
                let idx = iv
                    .as_int()
                    .ok_or_else(|| LangError::Type(format!("index {iv}")))?;
                let idx = usize::try_from(idx).map_err(|_| LangError::Bounds)?;
                {
                    let Stored::Arr(vs) = &store.get(l).stored else {
                        return Err(LangError::Type("update on non-array".into()));
                    };
                    if idx >= vs.len() {
                        return Err(LangError::Bounds);
                    }
                }
                costs.assigns += 1;
                // The write barrier, identical to cell assignment.
                let arr_owner = store.get(l).owner;
                let arr_local = tree.is_on_path(arr_owner, task);
                if !arr_local {
                    if mode == LangMode::DetectOnly {
                        return Err(LangError::Entangled);
                    }
                    costs.entangled_writes += 1;
                    if let Val::Loc(t) = v {
                        let level = tree.lca_depth(arr_owner, store.get(t).owner);
                        pin(store, t, level, costs);
                    }
                } else if let Val::Loc(t) = v {
                    let t_owner = store.get(t).owner;
                    if !tree.is_on_path(t_owner, task) {
                        costs.entangled_writes += 1;
                        let level = tree.lca_depth(arr_owner, t_owner);
                        pin(store, t, level, costs);
                    }
                }
                if let Stored::Arr(vs) = &mut store.get_mut(l).stored {
                    vs[idx] = v;
                }
                self.ctrl = Ctrl::Ret(Val::Unit);
            }
            Frame::LengthF => {
                let Val::Loc(l) = v else {
                    return Err(LangError::Type(format!("length of {v}")));
                };
                let Stored::Arr(vs) = &store.get(l).stored else {
                    return Err(LangError::Type("length of non-array".into()));
                };
                self.ctrl = Ctrl::Ret(Val::Int(vs.len() as i64));
            }
            Frame::TouchF => {
                let Val::Fut(i) = v else {
                    return Err(LangError::Type(format!("touch of {v}")));
                };
                costs.touches += 1;
                return Ok(StepEvent::Touch(i));
            }
            Frame::BinL(op, b, env) => {
                self.stack.push(Frame::BinR(op, v));
                self.ctrl = Ctrl::Eval(b, env);
            }
            Frame::BinR(op, a) => {
                self.ctrl = Ctrl::Ret(prim(op, a, v)?);
            }
            Frame::AndF(b, env) => match v {
                Val::Bool(true) => self.ctrl = Ctrl::Eval(b, env),
                Val::Bool(false) => self.ctrl = Ctrl::Ret(Val::Bool(false)),
                other => return Err(LangError::Type(format!("andalso on {other}"))),
            },
            Frame::OrF(b, env) => match v {
                Val::Bool(false) => self.ctrl = Ctrl::Eval(b, env),
                Val::Bool(true) => self.ctrl = Ctrl::Ret(Val::Bool(true)),
                other => return Err(LangError::Type(format!("orelse on {other}"))),
            },
        }
        Ok(StepEvent::Continue)
    }
}

/// Pins `t` at `level`, updating the pin-count and footprint gauges.
pub(crate) fn pin(store: &mut LangStore, t: crate::value::Loc, level: u16, costs: &mut Costs) {
    if store.pin(t, level) {
        costs.pins += 1;
        let pinned_now = store.pinned_locs().len() as u64;
        costs.max_pinned = costs.max_pinned.max(pinned_now);
        costs.max_footprint = costs
            .max_footprint
            .max(store.entanglement_footprint() as u64);
    }
}

fn prim(op: BinOp, a: Val, b: Val) -> Result<Val, LangError> {
    use BinOp::*;
    let ints = |a: Val, b: Val| -> Result<(i64, i64), LangError> {
        match (a, b) {
            (Val::Int(x), Val::Int(y)) => Ok((x, y)),
            _ => Err(LangError::Type(format!("{op} on {a} and {b}"))),
        }
    };
    Ok(match op {
        Add => {
            let (x, y) = ints(a, b)?;
            Val::Int(x.wrapping_add(y))
        }
        Sub => {
            let (x, y) = ints(a, b)?;
            Val::Int(x.wrapping_sub(y))
        }
        Mul => {
            let (x, y) = ints(a, b)?;
            Val::Int(x.wrapping_mul(y))
        }
        Div => {
            let (x, y) = ints(a, b)?;
            if y == 0 {
                return Err(LangError::DivZero);
            }
            Val::Int(x.div_euclid(y))
        }
        Mod => {
            let (x, y) = ints(a, b)?;
            if y == 0 {
                return Err(LangError::DivZero);
            }
            Val::Int(x.rem_euclid(y))
        }
        Lt => {
            let (x, y) = ints(a, b)?;
            Val::Bool(x < y)
        }
        Le => {
            let (x, y) = ints(a, b)?;
            Val::Bool(x <= y)
        }
        Gt => {
            let (x, y) = ints(a, b)?;
            Val::Bool(x > y)
        }
        Ge => {
            let (x, y) = ints(a, b)?;
            Val::Bool(x >= y)
        }
        Eq => Val::Bool(a == b),
        And | Or => unreachable!("short-circuit ops handled by frames"),
    })
}
