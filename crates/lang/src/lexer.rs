//! Tokenizer for the λ-par-ref concrete syntax.

use std::fmt;

/// Lexical tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// A keyword (`fn`, `fix`, `let`, `in`, `if`, ...).
    Kw(&'static str),
    /// A symbolic token (`=>`, `:=`, `(`, ...).
    Sym(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Kw(s) | Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "fn", "fix", "let", "in", "if", "then", "else", "ref", "fst", "snd", "par", "true", "false",
    "div", "mod", "andalso", "orelse", "array", "sub", "update", "length", "future", "touch",
];

/// Tokenizes a source string. Comments run from `#` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() || (c == '~' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            // ML-style negative literals with `~`.
            let neg = c == '~';
            if neg {
                i += 1;
            }
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().map_err(|_| LexError {
                pos: start,
                msg: "integer literal out of range".into(),
            })?;
            out.push(Token::Int(if neg { -n } else { n }));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
            {
                i += 1;
            }
            let word = &src[start..i];
            match KEYWORDS.iter().find(|&&k| k == word) {
                Some(&k) => out.push(Token::Kw(k)),
                None => out.push(Token::Ident(word.to_string())),
            }
            continue;
        }
        // Symbols, longest first.
        let rest = &src[i..];
        let sym = [
            "=>", ":=", "<=", ">=", "<>", "(", ")", ",", ";", "!", "=", "<", ">", "+", "-", "*",
        ]
        .iter()
        .find(|&&s| rest.starts_with(s));
        match sym {
            Some(&s) => {
                out.push(Token::Sym(s));
                i += s.len();
            }
            None => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_program() {
        let toks = lex("let x = ref 1 in !x + 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Kw("let"),
                Token::Ident("x".into()),
                Token::Sym("="),
                Token::Kw("ref"),
                Token::Int(1),
                Token::Kw("in"),
                Token::Sym("!"),
                Token::Ident("x".into()),
                Token::Sym("+"),
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn lexes_arrows_and_assign() {
        let toks = lex("fn x => x := 1").unwrap();
        assert!(toks.contains(&Token::Sym("=>")));
        assert!(toks.contains(&Token::Sym(":=")));
    }

    #[test]
    fn negative_literals_use_tilde() {
        assert_eq!(lex("~42").unwrap(), vec![Token::Int(-42)]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("1 # a comment\n 2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Int(2)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("1 @ 2").is_err());
    }

    #[test]
    fn primes_in_identifiers() {
        let toks = lex("x' y''").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("x'".into()), Token::Ident("y''".into())]
        );
    }
}
