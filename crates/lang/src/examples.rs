//! A library of sample λ-par-ref programs used by tests, documentation,
//! and the cost-bound experiments (E8).

/// Parallel Fibonacci — purely functional, fully disentangled.
pub const FIB: &str = r#"
let fib = fix fib n =>
  if n < 2 then n
  else
    let p = par(fib (n - 1), fib (n - 2)) in
    fst p + snd p
in fib 10
"#;

/// Parallel tree sum over an implicit balanced tree (disentangled).
pub const TREE_SUM: &str = r#"
let sum = fix sum range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then lo
  else
    let mid = (lo + hi) div 2 in
    let p = par(sum (lo, mid), sum (mid, hi)) in
    fst p + snd p
in sum (0, 64)
"#;

/// Sequential counter loop through a ref (local effects, disentangled).
pub const COUNTER: &str = r#"
let r = ref 0 in
let loop = fix loop n =>
  if n = 0 then !r
  else (r := !r + 1; loop (n - 1))
in loop 100
"#;

/// The paper's canonical entanglement example: a pre-fork cell, one branch
/// publishes a freshly allocated pair into it, the other dereferences it.
/// Under `Managed` the read pins; under `DetectOnly` it aborts (when the
/// schedule exposes the write before the read).
pub const ENTANGLE_PUBLISH: &str = r#"
let cell = ref (0, 0) in
let p = par(
  (cell := (1, 2); 0),
  (fst !cell) + (snd !cell)
) in
snd p
"#;

/// Entanglement across a deeper tree: a grandchild publishes, the far
/// subtree reads. Pin level is the root (0), so the pin survives the inner
/// join and clears only at the outer one.
pub const ENTANGLE_DEEP: &str = r#"
let cell = ref (0, 0) in
let p = par(
  snd par((cell := (40, 2); 0), 0),
  fst !cell + snd !cell
) in
snd p
"#;

/// A deterministic-by-construction racy accumulator: both branches
/// increment a shared counter; the sum is schedule-independent even though
/// the interleaving is not.
pub const SHARED_COUNTER: &str = r#"
let c = ref 0 in
let p = par(
  (c := !c + 1; 0),
  (c := !c + 2; 0)
) in
!c
"#;

/// Builds a list (nested pairs) in one branch, shares it through a cell,
/// and measures a larger entanglement footprint in the reader. (The
/// nested-pair type is fixed so the program is also ML-well-typed.)
pub const ENTANGLE_LIST: &str = r#"
let cell = ref (0, (0, (0, (0, 0)))) in
let p = par(
  (cell := (1, (2, (3, (4, 5)))); 0),
  fst !cell
) in
snd p
"#;

/// Parallel array fill + sum: children `update` an ancestor-allocated
/// array (down-path writes: local, disentangled), then a parallel
/// reduction reads it back.
pub const ARRAY_SUM: &str = r#"
let a = array(64, 0) in
let fill = fix fill range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then (update(a, lo, lo * 2); 0)
  else
    let mid = (lo + hi) div 2 in
    let p = par(fill (lo, mid), fill (mid, hi)) in
    0
in
let sum = fix sum range =>
  let lo = fst range in
  let hi = snd range in
  if hi - lo = 1 then sub(a, lo)
  else
    let mid = (lo + hi) div 2 in
    let p = par(sum (lo, mid), sum (mid, hi)) in
    fst p + snd p
in
let q = fill (0, length a) in
sum (0, length a)
"#;

/// Entangled arrays: one branch publishes boxed records into a shared
/// array; the sibling reads them concurrently (entangled reads through
/// `sub`).
pub const ARRAY_PUBLISH: &str = r#"
let a = array(4, (0, 0)) in
let p = par(
  (update(a, 0, (1, 2)); update(a, 1, (3, 4)); 0),
  (fst sub(a, 0)) + (snd sub(a, 1))
) in
snd p
"#;

/// All examples with names (for the experiment harness).
pub const ALL: &[(&str, &str)] = &[
    ("fib", FIB),
    ("tree_sum", TREE_SUM),
    ("counter", COUNTER),
    ("entangle_publish", ENTANGLE_PUBLISH),
    ("entangle_deep", ENTANGLE_DEEP),
    ("shared_counter", SHARED_COUNTER),
    ("entangle_list", ENTANGLE_LIST),
    ("array_sum", ARRAY_SUM),
    ("array_publish", ARRAY_PUBLISH),
];

/// True if the named example deliberately creates entanglement (a task
/// acquiring a concurrent sibling's allocation). Pure/disentangled
/// examples never pin under any schedule; entangled ones may. Note that
/// `shared_counter` is *not* here: it races on a pre-fork int cell —
/// shared state, but never a sibling's object.
pub fn is_entangled(name: &str) -> bool {
    matches!(
        name,
        "entangle_publish" | "entangle_deep" | "entangle_list" | "array_publish"
    )
}

/// A futures pipeline (semantics-level extension): three stages chained
/// by `touch`. Deterministic under every schedule.
pub const FUTURE_PIPELINE: &str = r#"
let s1 = future (2 * 3) in
let s2 = future (touch s1 + 10) in
let s3 = future (touch s2 * 2) in
touch s3
"#;

/// A future whose heap result is touched across families: the left
/// branch publishes the handle through a pre-fork cell; the right branch
/// touches it — an entangled read the managed semantics pins.
pub const FUTURE_PUBLISH: &str = r#"
let c = ref (future (0, 0)) in
let p = par((c := future (1, 2); 0), fst (touch !c)) in
snd p
"#;

/// Semantics-only examples (futures): run by the `mpl-lang` interpreter;
/// the compiled backend rejects them (fork-join only). Kept out of
/// [`ALL`] so the pipeline-agreement suites skip them.
pub const SEMANTICS_ONLY: &[(&str, &str)] = &[
    ("future_pipeline", FUTURE_PIPELINE),
    ("future_publish", FUTURE_PUBLISH),
];
