//! Abstract syntax of λ-par-ref, the paper's core calculus: a call-by-value
//! lambda calculus with pairs, recursion, mutable references, and
//! fork-join parallelism (`par`).
//!
//! Concrete syntax (parsed by [`crate::parser`]):
//!
//! ```text
//! e ::= x | n | true | false | ()
//!     | fn x => e            (abstraction)
//!     | fix f x => e         (recursive abstraction)
//!     | e1 e2                (application, left-assoc)
//!     | (e1, e2)             (pair)  | fst e | snd e
//!     | let x = e1 in e2
//!     | if e1 then e2 else e3
//!     | ref e | !e | e1 := e2
//!     | par(e1, e2)          (fork-join; evaluates to a pair)
//!     | array(e_n, e_init)   (mutable array allocation)
//!     | sub(e_a, e_i)        (barriered array read)
//!     | update(e_a, e_i, e_v)(barriered array write; unit)
//!     | length e             (array length)
//!     | e1 ; e2              (sequencing)
//!     | e1 op e2             (op ∈ + - * div mod < <= = > >= andalso orelse)
//! ```

use std::fmt;
use std::rc::Rc;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (`div`).
    Div,
    /// Remainder (`mod`).
    Mod,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Equality (integers, booleans, unit).
    Eq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "andalso",
            BinOp::Or => "orelse",
        };
        f.write_str(s)
    }
}

/// Expressions. Shared subterms use `Rc` so closures can capture bodies
/// cheaply.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Unit literal.
    Unit,
    /// `fn x => e`.
    Lam(String, Rc<Expr>),
    /// `fix f x => e` — `f` is bound to the closure itself in `e`.
    Fix(String, String, Rc<Expr>),
    /// Application.
    App(Rc<Expr>, Rc<Expr>),
    /// Pair construction (heap-allocating).
    Pair(Rc<Expr>, Rc<Expr>),
    /// First projection.
    Fst(Rc<Expr>),
    /// Second projection.
    Snd(Rc<Expr>),
    /// `let x = e1 in e2`.
    Let(String, Rc<Expr>, Rc<Expr>),
    /// Conditional.
    If(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// `ref e` — allocates a mutable cell.
    Ref(Rc<Expr>),
    /// `!e` — dereference (the barriered read of the paper).
    Deref(Rc<Expr>),
    /// `e1 := e2` — assignment (the barriered write).
    Assign(Rc<Expr>, Rc<Expr>),
    /// `par(e1, e2)` — evaluate both in parallel subtasks; yields a pair.
    Par(Rc<Expr>, Rc<Expr>),
    /// `array(n, init)` — allocates a mutable array of `n` copies of
    /// `init`.
    Array(Rc<Expr>, Rc<Expr>),
    /// `sub(a, i)` — barriered array read.
    Sub(Rc<Expr>, Rc<Expr>),
    /// `update(a, i, v)` — barriered array write; evaluates to unit.
    Update(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// `length a` — array length.
    Length(Rc<Expr>),
    /// `future e` — spawns `e` as a *future* task: the spawner keeps
    /// running and receives a first-class handle; `touch` waits for (and
    /// reads) the result. Futures are **strict**: a task completes only
    /// after every future it spawned has completed (region-bounded),
    /// which keeps the unpin-at-join theory intact.
    Future(Rc<Expr>),
    /// `touch e` — waits for the future `e` and yields its result (a
    /// barriered read: a revealed remote pointer is an entangled read).
    Touch(Rc<Expr>),
    /// Sequencing (`e1 ; e2`), sugar for `let _ = e1 in e2`.
    Seq(Rc<Expr>, Rc<Expr>),
    /// Primitive binary operation.
    Bin(BinOp, Rc<Expr>, Rc<Expr>),
}

impl Expr {
    /// Convenience constructor wrapping in `Rc`.
    pub fn rc(self) -> Rc<Expr> {
        Rc::new(self)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            // ML-style negative literals: `~5` (a bare `-` is the binary
            // operator, so `-5` would not re-parse).
            Expr::Int(n) if *n < 0 => write!(f, "~{}", n.unsigned_abs()),
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Unit => write!(f, "()"),
            Expr::Lam(x, b) => write!(f, "(fn {x} => {b})"),
            Expr::Fix(g, x, b) => write!(f, "(fix {g} {x} => {b})"),
            Expr::App(a, b) => write!(f, "({a} {b})"),
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::Fst(e) => write!(f, "(fst {e})"),
            Expr::Snd(e) => write!(f, "(snd {e})"),
            Expr::Let(x, a, b) => write!(f, "(let {x} = {a} in {b})"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Ref(e) => write!(f, "(ref {e})"),
            Expr::Deref(e) => write!(f, "(!{e})"),
            Expr::Assign(a, b) => write!(f, "({a} := {b})"),
            Expr::Par(a, b) => write!(f, "par({a}, {b})"),
            Expr::Array(n, i) => write!(f, "array({n}, {i})"),
            Expr::Sub(a, i) => write!(f, "sub({a}, {i})"),
            Expr::Update(a, i, v) => write!(f, "update({a}, {i}, {v})"),
            Expr::Length(a) => write!(f, "(length {a})"),
            Expr::Future(e) => write!(f, "(future {e})"),
            Expr::Touch(e) => write!(f, "(touch {e})"),
            Expr::Seq(a, b) => write!(f, "({a}; {b})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let e = Expr::Let(
            "x".into(),
            Expr::Int(1).rc(),
            Expr::Bin(BinOp::Add, Expr::Var("x".into()).rc(), Expr::Int(2).rc()).rc(),
        );
        assert_eq!(e.to_string(), "(let x = 1 in (x + 2))");
    }

    #[test]
    fn par_displays() {
        let e = Expr::Par(Expr::Int(1).rc(), Expr::Int(2).rc());
        assert_eq!(e.to_string(), "par(1, 2)");
    }
}
