//! Runtime values and environments of the calculus.

use std::fmt;
use std::rc::Rc;

/// A heap location in the language-level store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Loc(pub usize);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Values: immediates or heap locations. Pairs, closures, and ref cells
/// are all heap objects, so entanglement is defined uniformly at object
/// granularity as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Val {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Heap object.
    Loc(Loc),
    /// A future handle (interpreter task index). Handles are immediates:
    /// copying one is free; only `touch` reads through it.
    Fut(usize),
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Unit => write!(f, "()"),
            Val::Bool(b) => write!(f, "{b}"),
            // ML-style negatives, matching the expression syntax.
            Val::Int(n) if *n < 0 => write!(f, "~{}", n.unsigned_abs()),
            Val::Int(n) => write!(f, "{n}"),
            Val::Loc(l) => write!(f, "{l}"),
            Val::Fut(i) => write!(f, "<future #{i}>"),
        }
    }
}

impl Val {
    /// The integer payload, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The location payload, if any.
    pub fn as_loc(self) -> Option<Loc> {
        match self {
            Val::Loc(l) => Some(l),
            _ => None,
        }
    }

    /// The future-handle payload, if any.
    pub fn as_fut(self) -> Option<usize> {
        match self {
            Val::Fut(i) => Some(i),
            _ => None,
        }
    }
}

/// A persistent environment (immutable linked list, cheap to capture in
/// closures).
#[derive(Clone, Default, Debug, PartialEq)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug, PartialEq)]
struct EnvNode {
    name: String,
    val: Val,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends the environment with a binding.
    pub fn bind(&self, name: impl Into<String>, val: Val) -> Env {
        Env(Some(Rc::new(EnvNode {
            name: name.into(),
            val,
            next: self.clone(),
        })))
    }

    /// Looks up a variable.
    pub fn lookup(&self, name: &str) -> Option<Val> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if node.name == name {
                return Some(node.val);
            }
            cur = &node.next.0;
        }
        None
    }

    /// Iterates over all bound values (for root-set computation).
    pub fn values(&self) -> Vec<Val> {
        let mut out = Vec::new();
        let mut cur = &self.0;
        while let Some(node) = cur {
            out.push(node.val);
            cur = &node.next.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup_shadowing() {
        let e = Env::empty().bind("x", Val::Int(1)).bind("y", Val::Int(2));
        assert_eq!(e.lookup("x"), Some(Val::Int(1)));
        assert_eq!(e.lookup("y"), Some(Val::Int(2)));
        assert_eq!(e.lookup("z"), None);
        let e2 = e.bind("x", Val::Int(9));
        assert_eq!(e2.lookup("x"), Some(Val::Int(9)));
        assert_eq!(e.lookup("x"), Some(Val::Int(1)), "persistence");
    }

    #[test]
    fn values_collects_all() {
        let e = Env::empty()
            .bind("a", Val::Loc(Loc(3)))
            .bind("b", Val::Int(1));
        let vs = e.values();
        assert!(vs.contains(&Val::Loc(Loc(3))));
        assert_eq!(vs.len(), 2);
    }
}
