//! Recursive-descent parser for λ-par-ref.
//!
//! Precedence, loosest to tightest:
//!
//! 1. `;` (right-assoc sequencing)
//! 2. `:=` (non-assoc assignment)
//! 3. `orelse` / `andalso`
//! 4. comparisons `< <= = <> > >=` (non-assoc)
//! 5. `+ -` (left)
//! 6. `* div mod` (left)
//! 7. application (left)
//! 8. atoms, prefix `! ref fst snd length`,
//!    `fn`/`fix`/`let`/`if`/`par`/`array`/`sub`/`update`

use std::fmt;
use std::rc::Rc;

use crate::lexer::{lex, LexError, Token};
use crate::syntax::{BinOp, Expr};

/// A parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of what went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.to_string() }
    }
}

/// Parses a complete program.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing input at token {:?}", p.peek())));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { msg: msg.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Token::Sym(match_sym(s))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if let Some(Token::Kw(kk)) = self.peek() {
            if *kk == k {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: &str) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{k}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // e ::= seq
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.seq()
    }

    fn seq(&mut self) -> Result<Expr, ParseError> {
        let a = self.assign()?;
        if self.eat_sym(";") {
            let b = self.seq()?;
            Ok(Expr::Seq(Rc::new(a), Rc::new(b)))
        } else {
            Ok(a)
        }
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        let a = self.logic()?;
        if self.eat_sym(":=") {
            let b = self.logic()?;
            Ok(Expr::Assign(Rc::new(a), Rc::new(b)))
        } else {
            Ok(a)
        }
    }

    fn logic(&mut self) -> Result<Expr, ParseError> {
        let mut a = self.cmp()?;
        loop {
            if self.eat_kw("andalso") {
                let b = self.cmp()?;
                a = Expr::Bin(BinOp::And, Rc::new(a), Rc::new(b));
            } else if self.eat_kw("orelse") {
                let b = self.cmp()?;
                a = Expr::Bin(BinOp::Or, Rc::new(a), Rc::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let a = self.additive()?;
        let op = match self.peek() {
            Some(Token::Sym("<")) => Some(BinOp::Lt),
            Some(Token::Sym("<=")) => Some(BinOp::Le),
            Some(Token::Sym("=")) => Some(BinOp::Eq),
            Some(Token::Sym(">")) => Some(BinOp::Gt),
            Some(Token::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let b = self.additive()?;
            Ok(Expr::Bin(op, Rc::new(a), Rc::new(b)))
        } else {
            Ok(a)
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut a = self.multiplicative()?;
        loop {
            if self.eat_sym("+") {
                let b = self.multiplicative()?;
                a = Expr::Bin(BinOp::Add, Rc::new(a), Rc::new(b));
            } else if self.eat_sym("-") {
                let b = self.multiplicative()?;
                a = Expr::Bin(BinOp::Sub, Rc::new(a), Rc::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut a = self.application()?;
        loop {
            if self.eat_sym("*") {
                let b = self.application()?;
                a = Expr::Bin(BinOp::Mul, Rc::new(a), Rc::new(b));
            } else if self.eat_kw("div") {
                let b = self.application()?;
                a = Expr::Bin(BinOp::Div, Rc::new(a), Rc::new(b));
            } else if self.eat_kw("mod") {
                let b = self.application()?;
                a = Expr::Bin(BinOp::Mod, Rc::new(a), Rc::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn application(&mut self) -> Result<Expr, ParseError> {
        let mut a = self.prefix()?;
        while self.starts_atom() {
            let b = self.prefix()?;
            a = Expr::App(Rc::new(a), Rc::new(b));
        }
        Ok(a)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Int(_))
                | Some(Token::Ident(_))
                | Some(Token::Sym("("))
                | Some(Token::Sym("!"))
                | Some(Token::Kw("true"))
                | Some(Token::Kw("false"))
                | Some(Token::Kw("ref"))
                | Some(Token::Kw("fst"))
                | Some(Token::Kw("snd"))
                | Some(Token::Kw("length"))
                | Some(Token::Kw("array"))
                | Some(Token::Kw("sub"))
                | Some(Token::Kw("update"))
        )
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("!") {
            let e = self.prefix()?;
            return Ok(Expr::Deref(Rc::new(e)));
        }
        if self.eat_kw("ref") {
            let e = self.prefix()?;
            return Ok(Expr::Ref(Rc::new(e)));
        }
        if self.eat_kw("fst") {
            let e = self.prefix()?;
            return Ok(Expr::Fst(Rc::new(e)));
        }
        if self.eat_kw("snd") {
            let e = self.prefix()?;
            return Ok(Expr::Snd(Rc::new(e)));
        }
        if self.eat_kw("length") {
            let e = self.prefix()?;
            return Ok(Expr::Length(Rc::new(e)));
        }
        if self.eat_kw("future") {
            let e = self.prefix()?;
            return Ok(Expr::Future(Rc::new(e)));
        }
        if self.eat_kw("touch") {
            let e = self.prefix()?;
            return Ok(Expr::Touch(Rc::new(e)));
        }
        self.atom()
    }

    /// Parses `kw(e1, ..., en)` argument lists.
    fn call_args(&mut self, n: usize) -> Result<Vec<Expr>, ParseError> {
        self.expect_sym("(")?;
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            if k > 0 {
                self.expect_sym(",")?;
            }
            out.push(self.expr()?);
        }
        self.expect_sym(")")?;
        Ok(out)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Int(n))
            }
            Some(Token::Ident(x)) => {
                self.pos += 1;
                Ok(Expr::Var(x))
            }
            Some(Token::Kw("true")) => {
                self.pos += 1;
                Ok(Expr::Bool(true))
            }
            Some(Token::Kw("false")) => {
                self.pos += 1;
                Ok(Expr::Bool(false))
            }
            Some(Token::Kw("fn")) => {
                self.pos += 1;
                let x = self.ident()?;
                self.expect_sym("=>")?;
                let b = self.expr()?;
                Ok(Expr::Lam(x, Rc::new(b)))
            }
            Some(Token::Kw("fix")) => {
                self.pos += 1;
                let f = self.ident()?;
                let x = self.ident()?;
                self.expect_sym("=>")?;
                let b = self.expr()?;
                Ok(Expr::Fix(f, x, Rc::new(b)))
            }
            Some(Token::Kw("let")) => {
                self.pos += 1;
                let x = self.ident()?;
                self.expect_sym("=")?;
                let a = self.expr()?;
                self.expect_kw("in")?;
                let b = self.expr()?;
                Ok(Expr::Let(x, Rc::new(a), Rc::new(b)))
            }
            Some(Token::Kw("if")) => {
                self.pos += 1;
                let c = self.expr()?;
                self.expect_kw("then")?;
                let t = self.expr()?;
                self.expect_kw("else")?;
                let e = self.expr()?;
                Ok(Expr::If(Rc::new(c), Rc::new(t), Rc::new(e)))
            }
            Some(Token::Kw("par")) => {
                self.pos += 1;
                let mut args = self.call_args(2)?;
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(Expr::Par(Rc::new(a), Rc::new(b)))
            }
            Some(Token::Kw("array")) => {
                self.pos += 1;
                let mut args = self.call_args(2)?;
                let i = args.pop().unwrap();
                let n = args.pop().unwrap();
                Ok(Expr::Array(Rc::new(n), Rc::new(i)))
            }
            Some(Token::Kw("sub")) => {
                self.pos += 1;
                let mut args = self.call_args(2)?;
                let i = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(Expr::Sub(Rc::new(a), Rc::new(i)))
            }
            Some(Token::Kw("update")) => {
                self.pos += 1;
                let mut args = self.call_args(3)?;
                let v = args.pop().unwrap();
                let i = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(Expr::Update(Rc::new(a), Rc::new(i), Rc::new(v)))
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                if self.eat_sym(")") {
                    return Ok(Expr::Unit);
                }
                let a = self.expr()?;
                if self.eat_sym(",") {
                    let b = self.expr()?;
                    self.expect_sym(")")?;
                    Ok(Expr::Pair(Rc::new(a), Rc::new(b)))
                } else {
                    self.expect_sym(")")?;
                    Ok(a)
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

fn match_sym(s: &str) -> &'static str {
    [
        "=>", ":=", "<=", ">=", "<>", "(", ")", ",", ";", "!", "=", "<", ">", "+", "-", "*",
    ]
    .iter()
    .find(|&&k| k == s)
    .copied()
    .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse(src).unwrap_or_else(|e| panic!("{e} in {src:?}"))
    }

    #[test]
    fn precedence_arith() {
        assert_eq!(p("1 + 2 * 3").to_string(), "(1 + (2 * 3))");
        assert_eq!(p("(1 + 2) * 3").to_string(), "((1 + 2) * 3)");
    }

    #[test]
    fn application_binds_tighter_than_ops() {
        assert_eq!(p("f 1 + g 2").to_string(), "((f 1) + (g 2))");
        assert_eq!(p("f g x").to_string(), "((f g) x)");
    }

    #[test]
    fn let_if_fn() {
        assert_eq!(
            p("let x = 1 in if x < 2 then x else 0").to_string(),
            "(let x = 1 in (if (x < 2) then x else 0))"
        );
        assert_eq!(p("fn x => x + 1").to_string(), "(fn x => (x + 1))");
        assert_eq!(
            p("fix f n => f (n - 1)").to_string(),
            "(fix f n => (f (n - 1)))"
        );
    }

    #[test]
    fn refs_and_assignment() {
        assert_eq!(
            p("let r = ref 0 in r := !r + 1; !r").to_string(),
            "(let r = (ref 0) in ((r := ((!r) + 1)); (!r)))"
        );
    }

    #[test]
    fn pairs_and_projections() {
        assert_eq!(
            p("fst (1, 2) + snd (3, 4)").to_string(),
            "((fst (1, 2)) + (snd (3, 4)))"
        );
    }

    #[test]
    fn par_is_parsed() {
        assert_eq!(p("par(1 + 1, 2 * 2)").to_string(), "par((1 + 1), (2 * 2))");
    }

    #[test]
    fn unit_and_parens() {
        assert_eq!(p("()").to_string(), "()");
        assert_eq!(p("(1)").to_string(), "1");
    }

    #[test]
    fn trailing_input_is_an_error() {
        assert!(parse("1 2 )").is_err());
        assert!(parse("let x = in x").is_err());
    }

    #[test]
    fn seq_is_right_assoc_and_loosest() {
        assert_eq!(p("1; 2; 3").to_string(), "(1; (2; 3))");
        assert_eq!(p("r := 1; 2").to_string(), "((r := 1); 2)");
    }
}
