//! The global interpreter: a scheduled small-step semantics over the task
//! tree.
//!
//! Each global step picks one runnable task (per the configured
//! [`Schedule`]) and advances its machine. `par` splits a task in two;
//! when both children finish, their heaps merge into the parent
//! (unpinning by the join rule) and the parent resumes with the result
//! pair allocated in its own heap.
//!
//! Because entanglement depends on the interleaving of reads and writes,
//! different schedules may produce different entanglement *costs* — but
//! determinacy-race-free programs produce the same *result* under every
//! schedule, which the property tests check.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::machine::{Costs, LangError, LangMode, Machine, StepEvent};
use crate::parser::{parse, ParseError};
use crate::store::{LangStore, Stored};
use crate::syntax::Expr;
use crate::tasktree::{TaskId, TaskTree};
use crate::value::{Env, Val};

/// Task-interleaving policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Schedule {
    /// Always step the most recently spawned runnable task (left-first
    /// depth-first execution — deterministic, mirrors the runtime's
    /// sequential executor).
    #[default]
    DepthFirst,
    /// Step runnable tasks in rotation (maximal interleaving).
    RoundRobin,
    /// Uniformly random runnable task, seeded (schedule exploration).
    Random(u64),
}

/// Interpreter options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Interleaving policy.
    pub schedule: Schedule,
    /// Entanglement treatment.
    pub mode: LangMode,
    /// Global small-step budget (guards non-termination).
    pub fuel: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::Managed,
            fuel: 10_000_000,
        }
    }
}

/// A completed run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The program's result value.
    pub result: Val,
    /// Measured cost metrics.
    pub costs: Costs,
    /// The final store (for inspecting entanglement state and rendering
    /// structured results).
    pub store: LangStore,
}

impl Outcome {
    /// Renders the result, following pairs and cells (depth-limited).
    pub fn render(&self) -> String {
        render_val(&self.store, self.result, 16)
    }
}

fn render_val(store: &LangStore, v: Val, depth: usize) -> String {
    if depth == 0 {
        return "…".into();
    }
    match v {
        Val::Loc(l) => match &store.get(l).stored {
            Stored::Pair(a, b) => format!(
                "({}, {})",
                render_val(store, *a, depth - 1),
                render_val(store, *b, depth - 1)
            ),
            Stored::Cell(c) => format!("ref {}", render_val(store, *c, depth - 1)),
            Stored::Arr(vs) => {
                let inner: Vec<String> = vs
                    .iter()
                    .take(8)
                    .map(|v| render_val(store, *v, depth - 1))
                    .collect();
                let ell = if vs.len() > 8 { ", …" } else { "" };
                format!("[|{}{}|]", inner.join(", "), ell)
            }
            Stored::Closure(..) | Stored::FixClosure(..) => "<fn>".into(),
        },
        imm => imm.to_string(),
    }
}

enum TState {
    Run(Machine),
    Wait {
        machine: Machine,
        left: usize,
        right: usize,
    },
    /// Parked on `touch` of an unfinished future.
    WaitFut {
        machine: Machine,
        fut: usize,
    },
    /// The machine finished, but spawned futures are still running —
    /// strict futures: completion is deferred until they are done.
    Draining(Val),
    Done(Val),
}

struct Task {
    id: TaskId,
    parent: Option<usize>,
    state: TState,
    /// Span accounting: critical-path steps up to this task's current
    /// point.
    span: u64,
    /// Futures this task spawned that have not yet completed (strict
    /// futures: this task cannot complete before they do).
    pending_futures: Vec<usize>,
    /// True if this task is a future (absorbed into its tree parent at
    /// completion rather than joining a sibling).
    is_future: bool,
}

/// Runs an already-parsed expression.
pub fn run_expr(e: &Expr, opts: Options) -> Result<Outcome, LangError> {
    let mut store = LangStore::new();
    let (mut tree, root) = TaskTree::new();
    let mut costs = Costs::default();
    let mut tasks = vec![Task {
        id: root,
        parent: None,
        state: TState::Run(Machine::new(e.clone().rc(), Env::empty())),
        span: 0,
        pending_futures: Vec::new(),
        is_future: false,
    }];
    let mut rng = match opts.schedule {
        Schedule::Random(seed) => Some(ChaCha8Rng::seed_from_u64(seed)),
        _ => None,
    };
    let mut rr_cursor = 0usize;
    let mut fuel = opts.fuel;

    loop {
        // Collect runnable task indices.
        let runnable: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TState::Run(_)))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            // Either the root is done, or every remaining task is parked
            // on a touch (cyclic futures): deadlock.
            match &tasks[0].state {
                TState::Done(v) => {
                    costs.span = tasks[0].span;
                    return Ok(Outcome {
                        result: *v,
                        costs,
                        store,
                    });
                }
                _ => return Err(LangError::Deadlock),
            }
        }
        let pick = match opts.schedule {
            // Left-first depth-first: the deepest runnable task, ties to
            // the earliest-created (left) one. Matches the runtime's
            // sequential executor.
            Schedule::DepthFirst => runnable
                .iter()
                .copied()
                .max_by_key(|&i| (tree.depth(tasks[i].id), std::cmp::Reverse(i)))
                .unwrap(),
            Schedule::RoundRobin => {
                rr_cursor = (rr_cursor + 1) % runnable.len();
                runnable[rr_cursor]
            }
            Schedule::Random(_) => {
                let r = rng.as_mut().unwrap().gen_range(0..runnable.len());
                runnable[r]
            }
        };
        if fuel == 0 {
            return Err(LangError::Fuel);
        }
        fuel -= 1;

        let tid = tasks[pick].id;
        let TState::Run(machine) = &mut tasks[pick].state else {
            unreachable!()
        };
        let event = machine.step(tid, &mut store, &mut tree, opts.mode, &mut costs)?;
        tasks[pick].span += 1;

        match event {
            StepEvent::Continue => {}
            StepEvent::Fork(a, b, env) => {
                let (lt, rt) = tree.fork(tid);
                let span = tasks[pick].span;
                let TState::Run(machine) =
                    std::mem::replace(&mut tasks[pick].state, TState::Done(Val::Unit))
                else {
                    unreachable!()
                };
                let left = tasks.len();
                let right = left + 1;
                tasks[pick].state = TState::Wait {
                    machine,
                    left,
                    right,
                };
                tasks.push(Task {
                    id: lt,
                    parent: Some(pick),
                    state: TState::Run(Machine::new(a, env.clone())),
                    span,
                    pending_futures: Vec::new(),
                    is_future: false,
                });
                tasks.push(Task {
                    id: rt,
                    parent: Some(pick),
                    state: TState::Run(Machine::new(b, env)),
                    span,
                    pending_futures: Vec::new(),
                    is_future: false,
                });
            }
            StepEvent::SpawnFuture(body, env) => {
                let ftid = tree.spawn_one(tid);
                let fidx = tasks.len();
                let span = tasks[pick].span;
                tasks[pick].pending_futures.push(fidx);
                let TState::Run(machine) = &mut tasks[pick].state else {
                    unreachable!()
                };
                machine.resume_with(Val::Fut(fidx));
                tasks.push(Task {
                    id: ftid,
                    parent: None,
                    state: TState::Run(Machine::new(body, env)),
                    span,
                    pending_futures: Vec::new(),
                    is_future: true,
                });
            }
            StepEvent::Touch(fi) => {
                if fi >= tasks.len() {
                    return Err(LangError::Type(format!("touch of unknown future #{fi}")));
                }
                if let TState::Done(v) = tasks[fi].state {
                    touch_barrier(tid, v, &mut store, &mut tree, opts.mode, &mut costs)?;
                    let fspan = tasks[fi].span;
                    let task = &mut tasks[pick];
                    task.span = task.span.max(fspan);
                    let TState::Run(machine) = &mut task.state else {
                        unreachable!()
                    };
                    machine.resume_with(v);
                } else {
                    let TState::Run(machine) =
                        std::mem::replace(&mut tasks[pick].state, TState::Done(Val::Unit))
                    else {
                        unreachable!()
                    };
                    tasks[pick].state = TState::WaitFut { machine, fut: fi };
                }
            }
            StepEvent::Done(v) => {
                complete(
                    pick, v, &mut tasks, &mut tree, &mut store, opts.mode, &mut costs,
                )?;
            }
        }
    }
}

/// The touch read barrier: revealing a remote pointer through a future's
/// result is an entangled read (it is pinned), exactly like `!` and `sub`.
fn touch_barrier(
    toucher: TaskId,
    v: Val,
    store: &mut LangStore,
    tree: &mut TaskTree,
    mode: LangMode,
    costs: &mut Costs,
) -> Result<(), LangError> {
    if let Val::Loc(t) = v {
        let owner = store.get(t).owner;
        if !tree.is_on_path(owner, toucher) {
            if mode == LangMode::DetectOnly {
                return Err(LangError::Entangled);
            }
            costs.entangled_reads += 1;
            let level = tree.lca_depth(toucher, owner);
            crate::machine::pin(store, t, level, costs);
        }
    }
    Ok(())
}

/// Marks `idx`'s machine as finished with `v`, deferring completion while
/// spawned futures are still running (strict futures), then cascades:
/// absorb future heaps, wake parked touchers, re-check draining spawners,
/// and run the par join protocol.
fn complete(
    idx: usize,
    v: Val,
    tasks: &mut [Task],
    tree: &mut TaskTree,
    store: &mut LangStore,
    mode: LangMode,
    costs: &mut Costs,
) -> Result<(), LangError> {
    let mut work = vec![(idx, v)];
    while let Some((i, v)) = work.pop() {
        if tasks[i]
            .pending_futures
            .iter()
            .any(|&f| !matches!(tasks[f].state, TState::Done(_)))
        {
            tasks[i].state = TState::Draining(v);
            continue;
        }
        // Truly complete: a future's heap is absorbed into its tree
        // parent. Pins at level >= the future's depth belong to accessors
        // within its (fully completed) subtree, so they unpin — the
        // single-child analogue of the unpin-at-join rule. Shallower pins
        // stay: their accessors may still run.
        if tasks[i].is_future {
            let ftid = tasks[i].id;
            let fdepth = tree.depth(ftid);
            let unpinned = store.unpin_at_join_where(fdepth, |owner| tree.is_on_path(ftid, owner));
            costs.unpins += unpinned as u64;
            tree.absorb(ftid);
        }
        tasks[i].state = TState::Done(v);
        let fspan = tasks[i].span;

        // Wake every task parked on this future.
        let parked: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.state, TState::WaitFut { fut, .. } if *fut == i))
            .map(|(w, _)| w)
            .collect();
        for w in parked {
            touch_barrier(tasks[w].id, v, store, tree, mode, costs)?;
            let TState::WaitFut { mut machine, .. } =
                std::mem::replace(&mut tasks[w].state, TState::Done(Val::Unit))
            else {
                unreachable!()
            };
            machine.resume_with(v);
            tasks[w].span = tasks[w].span.max(fspan);
            tasks[w].state = TState::Run(machine);
        }

        // A draining spawner may now be unblocked.
        for j in 0..tasks.len() {
            if let TState::Draining(dv) = tasks[j].state {
                if tasks[j]
                    .pending_futures
                    .iter()
                    .all(|&f| matches!(tasks[f].state, TState::Done(_)))
                {
                    work.push((j, dv));
                }
            }
        }

        // The par join protocol (futures have no join sibling).
        try_join(i, tasks, tree, store, costs);
    }
    Ok(())
}

/// If `finished`'s parent has both children done, perform the join.
fn try_join(
    finished: usize,
    tasks: &mut [Task],
    tree: &mut TaskTree,
    store: &mut LangStore,
    costs: &mut Costs,
) {
    let Some(pidx) = tasks[finished].parent else {
        return;
    };
    let TState::Wait { left, right, .. } = &tasks[pidx].state else {
        return;
    };
    let (left, right) = (*left, *right);
    let (TState::Done(lv), TState::Done(rv)) = (&tasks[left].state, &tasks[right].state) else {
        return;
    };
    let (lv, rv) = (*lv, *rv);
    let ptid = tasks[pidx].id;
    let (lt, rt) = (tasks[left].id, tasks[right].id);
    let join_depth = tree.depth(ptid);

    // Heap merge + unpin-at-join over the joined subtree.
    tree.join(ptid, lt, rt);
    // After `tree.join`, the children canonicalize to the parent, so
    // "owner in joined subtree" is "parent on owner's root path".
    let unpinned = store.unpin_at_join_where(join_depth, |owner| tree.is_on_path(ptid, owner));
    costs.unpins += unpinned as u64;

    // The parent resumes with the result pair, allocated in its heap.
    costs.allocs += 1;
    let pair = store.alloc(Stored::Pair(lv, rv), ptid);
    let child_span = tasks[left].span.max(tasks[right].span);
    let task = &mut tasks[pidx];
    task.span = child_span;
    let TState::Wait { mut machine, .. } =
        std::mem::replace(&mut task.state, TState::Done(Val::Unit))
    else {
        unreachable!()
    };
    machine.resume_with(Val::Loc(pair));
    task.state = TState::Run(machine);
}

/// Parses and runs a source program.
pub fn run_program(src: &str, opts: Options) -> Result<Outcome, RunError> {
    let e = parse(src)?;
    run_expr(&e, opts).map_err(RunError::from)
}

/// Errors from [`run_program`]: parse or evaluation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The source failed to parse.
    Parse(ParseError),
    /// Evaluation failed.
    Eval(LangError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "{e}"),
            RunError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ParseError> for RunError {
    fn from(e: ParseError) -> Self {
        RunError::Parse(e)
    }
}

impl From<LangError> for RunError {
    fn from(e: LangError) -> Self {
        RunError::Eval(e)
    }
}
