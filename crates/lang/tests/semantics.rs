//! End-to-end tests of the λ-par-ref semantics: evaluation correctness,
//! entanglement detection and management, cost metrics, and schedule
//! (in)dependence.

use mpl_lang::examples;
use mpl_lang::{run_program, LangError, LangMode, Options, RunError, Schedule, Val};

fn run(src: &str) -> mpl_lang::Outcome {
    run_program(src, Options::default()).unwrap_or_else(|e| panic!("{e}"))
}

fn run_with(src: &str, schedule: Schedule, mode: LangMode) -> Result<mpl_lang::Outcome, RunError> {
    run_program(
        src,
        Options {
            schedule,
            mode,
            fuel: 10_000_000,
        },
    )
}

#[test]
fn basic_evaluation() {
    assert_eq!(run("1 + 2 * 3").result, Val::Int(7));
    assert_eq!(run("(fn x => x + 1) 41").result, Val::Int(42));
    assert_eq!(run("if 1 < 2 then 10 else 20").result, Val::Int(10));
    assert_eq!(run("let x = 5 in x * x").result, Val::Int(25));
    assert_eq!(run("fst (1, 2) + snd (1, 2)").result, Val::Int(3));
    assert_eq!(run("7 div 2").result, Val::Int(3));
    assert_eq!(run("7 mod 2").result, Val::Int(1));
    assert_eq!(run("true andalso false").result, Val::Bool(false));
    assert_eq!(run("true orelse false").result, Val::Bool(true));
    assert_eq!(run("1 = 1").result, Val::Bool(true));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // The rhs would crash with a type error if evaluated.
    assert_eq!(run("false andalso (1 2 = 3)").result, Val::Bool(false));
    assert_eq!(run("true orelse (1 2 = 3)").result, Val::Bool(true));
}

#[test]
fn recursion_with_fix() {
    assert_eq!(
        run("let f = fix f n => if n = 0 then 1 else n * f (n - 1) in f 6").result,
        Val::Int(720)
    );
}

#[test]
fn refs_sequence_effects() {
    assert_eq!(run(examples::COUNTER).result, Val::Int(100));
}

#[test]
fn par_returns_pair() {
    let out = run("par(1 + 1, 2 + 2)");
    assert_eq!(out.render(), "(2, 4)");
    assert_eq!(out.costs.forks, 1);
}

#[test]
fn fib_is_correct_under_all_schedules() {
    for schedule in [
        Schedule::DepthFirst,
        Schedule::RoundRobin,
        Schedule::Random(1),
        Schedule::Random(99),
    ] {
        let out = run_with(examples::FIB, schedule, LangMode::Managed).unwrap();
        assert_eq!(out.result, Val::Int(55), "fib 10 under {schedule:?}");
        assert_eq!(out.costs.entangled_reads, 0, "pure program never entangles");
        assert_eq!(out.costs.pins, 0);
    }
}

#[test]
fn race_free_programs_have_schedule_independent_work() {
    let a = run_with(examples::TREE_SUM, Schedule::DepthFirst, LangMode::Managed).unwrap();
    let b = run_with(examples::TREE_SUM, Schedule::Random(7), LangMode::Managed).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(a.costs.steps, b.costs.steps, "same reductions, any order");
    assert_eq!(a.result, Val::Int((0..64).sum::<i64>()));
}

#[test]
fn span_is_less_than_work_for_parallel_programs() {
    let out = run(examples::FIB);
    assert!(out.costs.span < out.costs.steps);
    assert!(out.costs.span > 0);
}

#[test]
fn entangled_publish_is_managed() {
    let out = run_with(
        examples::ENTANGLE_PUBLISH,
        Schedule::DepthFirst,
        LangMode::Managed,
    )
    .unwrap();
    // Left-first: the write lands before the sibling's read.
    assert_eq!(out.result, Val::Int(3));
    assert!(out.costs.entangled_reads >= 1);
    assert_eq!(out.costs.pins, 1, "one object (the pair) gets pinned");
    assert_eq!(out.costs.unpins, 1, "the join unpins it");
    assert!(
        out.store.pinned_locs().is_empty(),
        "no pins survive the run"
    );
}

#[test]
fn entangled_publish_aborts_under_detect_only() {
    let err = run_with(
        examples::ENTANGLE_PUBLISH,
        Schedule::DepthFirst,
        LangMode::DetectOnly,
    )
    .unwrap_err();
    assert_eq!(err, RunError::Eval(LangError::Entangled));
}

#[test]
fn entanglement_is_schedule_dependent() {
    // Under a right-first-ish schedule the read can precede the write, in
    // which case no entanglement occurs and the result differs (the
    // program is racy by design). Find a seed exhibiting each behaviour.
    let mut saw_entangled = false;
    let mut saw_clean = false;
    for seed in 0..50 {
        let out = run_with(
            examples::ENTANGLE_PUBLISH,
            Schedule::Random(seed),
            LangMode::Managed,
        )
        .unwrap();
        match out.costs.entangled_reads {
            0 => saw_clean = true,
            _ => saw_entangled = true,
        }
        if saw_clean && saw_entangled {
            break;
        }
    }
    assert!(
        saw_entangled && saw_clean,
        "expected both behaviours across seeds (entangled={saw_entangled}, clean={saw_clean})"
    );
}

#[test]
fn deep_entanglement_pins_at_root_level() {
    let out = run_with(
        examples::ENTANGLE_DEEP,
        Schedule::DepthFirst,
        LangMode::Managed,
    )
    .unwrap();
    assert_eq!(out.result, Val::Int(42));
    assert!(out.costs.pins >= 1);
    assert!(out.costs.max_pinned >= 1);
    assert!(out.store.pinned_locs().is_empty());
}

#[test]
fn footprint_bounds_pinned_set() {
    let out = run_with(
        examples::ENTANGLE_LIST,
        Schedule::DepthFirst,
        LangMode::Managed,
    )
    .unwrap();
    assert_eq!(out.result, Val::Int(1));
    assert!(out.costs.max_footprint >= out.costs.max_pinned);
    assert!(
        out.costs.max_footprint >= 4,
        "the published list drags its spine into the footprint: {:?}",
        out.costs
    );
}

#[test]
fn shared_counter_total_is_schedule_dependent_but_bounded() {
    let mut totals = std::collections::BTreeSet::new();
    for seed in 0..30 {
        let out = run_with(
            examples::SHARED_COUNTER,
            Schedule::Random(seed),
            LangMode::Managed,
        )
        .unwrap();
        let n = out.result.as_int().unwrap();
        assert!((1..=3).contains(&n), "lost/observed updates stay in range");
        totals.insert(n);
    }
    assert!(totals.contains(&3), "some schedule sees both updates");
}

#[test]
fn runtime_errors_are_reported() {
    assert!(matches!(
        run_program("x", Options::default()).unwrap_err(),
        RunError::Eval(LangError::Unbound(_))
    ));
    assert!(matches!(
        run_program("1 2", Options::default()).unwrap_err(),
        RunError::Eval(LangError::Type(_))
    ));
    assert!(matches!(
        run_program("1 div 0", Options::default()).unwrap_err(),
        RunError::Eval(LangError::DivZero)
    ));
    assert!(matches!(
        run_program("1 +", Options::default()).unwrap_err(),
        RunError::Parse(_)
    ));
}

#[test]
fn fuel_guards_divergence() {
    let err = run_program(
        "let w = fix w x => w x in w 0",
        Options {
            fuel: 10_000,
            ..Options::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, RunError::Eval(LangError::Fuel));
}

#[test]
fn all_examples_run_under_managed_semantics() {
    for (name, src) in examples::ALL {
        let out = run_with(src, Schedule::DepthFirst, LangMode::Managed)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.store.pinned_locs().is_empty(),
            "{name}: pins must clear by the end"
        );
    }
}

#[test]
fn render_follows_structure() {
    assert_eq!(run("((1, 2), ref 3)").render(), "((1, 2), ref 3)");
    assert_eq!(run("fn x => x").render(), "<fn>");
}
