//! Futures (`future e` / `touch e`) — the paper's future-work direction,
//! implemented at the semantics level with *strict* (region-bounded)
//! futures so the unpin-at-join theory carries over unchanged.

use proptest::prelude::*;

use mpl_lang::{run_program, LangError, LangMode, Options, RunError, Schedule};

fn opts(schedule: Schedule) -> Options {
    Options {
        schedule,
        mode: LangMode::Managed,
        fuel: 1_000_000,
    }
}

fn run(src: &str, schedule: Schedule) -> mpl_lang::Outcome {
    run_program(src, opts(schedule)).expect("run")
}

const SCHEDULES: &[Schedule] = &[
    Schedule::DepthFirst,
    Schedule::RoundRobin,
    Schedule::Random(11),
];

#[test]
fn touch_delivers_the_result() {
    for &s in SCHEDULES {
        let out = run("let f = future (1 + 2) in touch f", s);
        assert_eq!(out.render(), "3");
        assert_eq!(out.costs.futures, 1);
        assert_eq!(out.costs.touches, 1);
    }
}

#[test]
fn creator_keeps_running_while_the_future_computes() {
    for &s in SCHEDULES {
        let out = run("let f = future 21 in touch f + 21", s);
        assert_eq!(out.render(), "42");
    }
}

#[test]
fn future_handles_are_first_class() {
    // The handle flows through a pair and a function before the touch.
    let src = "let f = future 7 in \
               let boxed = (f, 1) in \
               let get = fn p => touch (fst p) in \
               get boxed * 6";
    for &s in SCHEDULES {
        assert_eq!(run(src, s).render(), "42");
    }
}

#[test]
fn untouched_futures_still_complete_before_their_spawner() {
    // Strictness: the par child that spawns (and never touches) a future
    // cannot join until the future finishes; the program terminates with
    // every task accounted for.
    let src = "let p = par((let f = future 5 in 9), 8) in fst p + snd p";
    for &s in SCHEDULES {
        let out = run(src, s);
        assert_eq!(out.render(), "17");
        assert_eq!(out.costs.futures, 1);
        assert_eq!(out.costs.touches, 0);
    }
}

#[test]
fn future_pipeline_is_deterministic() {
    // A three-stage pipeline: each stage is a future touching the
    // previous one. Results agree under every schedule.
    let src = "let s1 = future (2 * 3) in \
               let s2 = future (touch s1 + 10) in \
               let s3 = future (touch s2 * 2) in \
               touch s3";
    let expect = "32";
    for &s in SCHEDULES {
        assert_eq!(run(src, s).render(), expect, "{s:?}");
    }
}

#[test]
fn cross_family_touch_entangles_and_unpins() {
    // The left par branch publishes a future handle (whose result is a
    // heap pair) through a pre-fork cell; the right branch touches it.
    // The revealed pair belongs to the left family: an entangled read,
    // pinned, and released by the join.
    let src = "let c = ref 0 in \
               let p = par((c := future (1, 2); 0), fst (touch !c)) in \
               snd p";
    let out = run(src, Schedule::DepthFirst);
    assert_eq!(out.render(), "1");
    assert!(out.costs.entangled_reads >= 1, "the touch crossed families");
    assert!(out.costs.pins >= 1);
    assert_eq!(out.costs.pins, out.costs.unpins, "pins resolve by the end");
    assert!(out.store.pinned_locs().is_empty());
    assert!(out.costs.max_footprint >= out.costs.max_pinned);
}

#[test]
fn cross_family_touch_aborts_under_detect_only() {
    let src = "let c = ref 0 in \
               let p = par((c := future (1, 2); 0), fst (touch !c)) in \
               snd p";
    let res = run_program(
        src,
        Options {
            schedule: Schedule::DepthFirst,
            mode: LangMode::DetectOnly,
            fuel: 1_000_000,
        },
    );
    assert!(
        matches!(res, Err(RunError::Eval(LangError::Entangled))),
        "prior MPL rejects entangling touches: {res:?}"
    );
}

#[test]
fn local_touch_of_a_flat_future_never_entangles() {
    // The future returns an immediate: nothing to pin, under any schedule.
    for &s in SCHEDULES {
        let out = run("let f = future (10 * 10) in touch f", s);
        assert_eq!(out.costs.entangled_reads, 0);
        assert_eq!(out.costs.pins, 0);
    }
}

#[test]
fn touching_the_creators_own_future_after_absorb_is_local() {
    // The creator touches its own (completed, absorbed) future: the
    // result was absorbed into the creator's heap, so the read is local.
    let out = run(
        "let f = future (3, 4) in fst (touch f) + snd (touch f)",
        Schedule::DepthFirst,
    );
    assert_eq!(out.render(), "7");
    assert_eq!(out.costs.entangled_reads, 0, "absorbed results are local");
    assert_eq!(out.costs.touches, 2);
}

#[test]
fn cyclic_touch_deadlocks_cleanly() {
    // Two-party cycle built through cells; round-robin interleaving lets
    // both sides reach their touch. The interpreter reports deadlock
    // instead of spinning fuel away.
    let src = "let flag = ref 0 in \
               let hold = ref 0 in \
               let f = future ( \
                 let w = fix w x => if !flag = 0 then w 0 else 0 in \
                 (w 0; touch !hold) \
               ) in \
               (hold := f; flag := 1; touch f)";
    let res = run_program(src, opts(Schedule::RoundRobin));
    assert!(
        matches!(res, Err(RunError::Eval(LangError::Deadlock))),
        "expected deadlock, got {res:?}"
    );
}

#[test]
fn touch_of_a_non_future_is_a_type_error() {
    let res = run_program("touch 5", opts(Schedule::DepthFirst));
    assert!(matches!(res, Err(RunError::Eval(LangError::Type(_)))));
}

#[test]
fn span_accounts_for_touch_dependencies() {
    // Sequential chain through touches: span ~ sum of stage spans, so it
    // must exceed each stage's own steps.
    let src = "let s1 = future (1 + 1) in let s2 = future (touch s1 + 1) in touch s2";
    let out = run(src, Schedule::RoundRobin);
    assert!(out.costs.span > 4, "span tracks the touch chain");
    assert!(out.costs.span <= out.costs.steps);
}

#[test]
fn futures_render_as_opaque_handles() {
    let out = run("future 1", Schedule::DepthFirst);
    assert!(out.render().starts_with("<future"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random future pipelines: each stage adds a random constant to a
    /// touch of a random earlier stage. Deterministic by construction —
    /// every schedule must agree, and every pin must resolve.
    #[test]
    fn random_pipelines_are_schedule_deterministic(
        consts in proptest::collection::vec((0i64..50, any::<proptest::sample::Index>()), 1..8),
    ) {
        let mut src = String::from("let s0 = future 1 in ");
        for (i, (c, pick)) in consts.iter().enumerate() {
            let dep = pick.index(i + 1); // any earlier stage
            src.push_str(&format!("let s{} = future (touch s{dep} + {c}) in ", i + 1));
        }
        src.push_str(&format!("touch s{}", consts.len()));

        let runs: Vec<String> = SCHEDULES
            .iter()
            .map(|&s| {
                let out = run_program(&src, opts(s)).expect("run");
                prop_assert!(out.store.pinned_locs().is_empty());
                Ok(out.render())
            })
            .collect::<Result<_, TestCaseError>>()?;
        prop_assert_eq!(&runs[0], &runs[1], "{}", src);
        prop_assert_eq!(&runs[0], &runs[2], "{}", src);
    }
}
