//! Property tests for the calculus: schedule-independence of pure
//! programs, conservation of the entanglement invariants, and parser
//! robustness over generated terms.

use proptest::prelude::*;

use mpl_lang::{parse, run_expr, BinOp, Expr, LangMode, Options, Schedule, Val};

/// Generates closed, terminating, *pure* expressions (no refs): integer
/// arithmetic, pairs, conditionals, and `par`.
fn pure_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Unit),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = pure_expr(depth - 1);
    prop_oneof![
        2 => leaf,
        2 => (sub.clone(), sub.clone(), prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)])
            .prop_map(|(a, b, op)| Expr::Bin(op, a.rc(), b.rc())),
        1 => (pure_int(depth - 1), sub.clone(), sub.clone())
            .prop_map(|(c, t, e)| Expr::If(
                Expr::Bin(BinOp::Lt, c.rc(), Expr::Int(0).rc()).rc(),
                t.rc(),
                e.rc(),
            )),
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| {
            // par evaluates both and projects the sum if both are ints;
            // keep it simple: build the pair and take fst.
            Expr::Fst(Expr::Par(a.rc(), b.rc()).rc())
        }),
        1 => (sub.clone(), sub).prop_map(|(a, b)| Expr::Snd(Expr::Pair(a.rc(), b.rc()).rc())),
    ]
    .boxed()
}

/// Pure integer-valued expressions (for conditions).
fn pure_int(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (-100i64..100).prop_map(Expr::Int);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = pure_int(depth - 1);
    prop_oneof![
        2 => leaf,
        1 => (sub.clone(), sub).prop_map(|(a, b)| Expr::Bin(BinOp::Add, a.rc(), b.rc())),
    ]
    .boxed()
}

fn run_with(e: &Expr, schedule: Schedule) -> Result<mpl_lang::Outcome, mpl_lang::LangError> {
    run_expr(
        e,
        Options {
            schedule,
            mode: LangMode::Managed,
            fuel: 2_000_000,
        },
    )
}

/// Deep value comparison through the store (locations differ between
/// runs; structure must not).
fn render(out: &mpl_lang::Outcome) -> String {
    out.render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pure programs are deterministic across schedules, never entangle,
    /// and do the same amount of work in any order.
    #[test]
    fn pure_programs_are_schedule_independent(e in pure_expr(5)) {
        let df = run_with(&e, Schedule::DepthFirst);
        let rr = run_with(&e, Schedule::RoundRobin);
        let rand = run_with(&e, Schedule::Random(17));
        match (df, rr, rand) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(render(&a), render(&b));
                prop_assert_eq!(render(&a), render(&c));
                prop_assert_eq!(a.costs.steps, b.costs.steps);
                prop_assert_eq!(a.costs.steps, c.costs.steps);
                prop_assert_eq!(a.costs.pins, 0);
                prop_assert_eq!(a.costs.entangled_reads, 0);
                prop_assert!(a.costs.span <= a.costs.steps);
            }
            (Err(_), Err(_), Err(_)) => {
                // Ill-typed programs fail everywhere, but *which* branch
                // errors first is legitimately schedule-dependent.
            }
            other => prop_assert!(false, "divergent outcomes: {other:?}"),
        }
    }

    /// Managed and DetectOnly agree completely on pure programs.
    #[test]
    fn detect_only_is_transparent_for_pure_programs(e in pure_expr(4)) {
        let managed = run_with(&e, Schedule::DepthFirst);
        let detect = run_expr(
            &e,
            Options {
                schedule: Schedule::DepthFirst,
                mode: LangMode::DetectOnly,
                fuel: 2_000_000,
            },
        );
        match (managed, detect) {
            (Ok(a), Ok(b)) => prop_assert_eq!(render(&a), render(&b)),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
            other => prop_assert!(false, "modes diverged on a pure program: {other:?}"),
        }
    }

    /// Printing and re-parsing an expression is the identity (the
    /// pretty-printer emits valid, fully parenthesized concrete syntax).
    #[test]
    fn pretty_print_parses_back(e in pure_expr(4)) {
        let text = e.to_string();
        let back = parse(&text);
        prop_assert!(back.is_ok(), "failed to re-parse {text:?}: {back:?}");
        prop_assert_eq!(back.unwrap().to_string(), text);
    }
}

// Programs with a shared counter: results vary with schedule, but the
// invariants (no leftover pins, footprint bound) always hold.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn effectful_programs_keep_invariants(seed in 0u64..500, incs in 1i64..4) {
        let src = format!(
            "let c = ref (0, 0) in let p = par((c := ({incs}, {incs}); 0), fst !c + snd !c) in snd p"
        );
        let out = mpl_lang::run_program(
            &src,
            Options {
                schedule: Schedule::Random(seed),
                mode: LangMode::Managed,
                fuel: 1_000_000,
            },
        ).expect("runs");
        // The two projections are separate barriered reads, so the read
        // task may observe the write between them: 0, incs, or 2*incs.
        let v = out.result;
        prop_assert!(
            v == Val::Int(0) || v == Val::Int(incs) || v == Val::Int(2 * incs),
            "{v:?}"
        );
        prop_assert!(out.store.pinned_locs().is_empty());
        prop_assert!(out.costs.max_footprint >= out.costs.max_pinned);
        prop_assert_eq!(out.costs.pins, out.costs.unpins);
    }
}
