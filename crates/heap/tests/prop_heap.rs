//! Property tests for the heap substrate: value encoding, hierarchy
//! queries against naive oracles, and pin-level algebra.

use proptest::prelude::*;

use mpl_heap::{HeapTable, ObjKind, ObjRef, Store, StoreConfig, Value, Word, INT_MAX, INT_MIN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every in-range integer survives the tagged-word roundtrip.
    #[test]
    fn int_word_roundtrip(i in INT_MIN..=INT_MAX) {
        prop_assert_eq!(Word::encode(Value::Int(i)).decode(), Value::Int(i));
    }

    /// Every (block, word) pair survives the roundtrip and registers as a
    /// pointer.
    #[test]
    fn obj_word_roundtrip(c in 0u32..=ObjRef::MAX_INDEX, s in 0u32..=ObjRef::MAX_INDEX) {
        let r = ObjRef::new(c, s);
        let w = Word::encode(Value::Obj(r));
        prop_assert!(w.is_pointer());
        prop_assert_eq!(w.decode(), Value::Obj(r));
    }
}

/// A random fork/join script over the heap table, mirrored by a naive
/// tree with explicit parent links.
#[derive(Clone, Debug)]
enum Op {
    /// Fork the leaf identified by (index into the live-leaf list mod len).
    Fork(usize),
    /// Join the most recently forked unjoined pair.
    Join,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![(0usize..8).prop_map(Op::Fork), Just(Op::Join)],
        1..40,
    )
}

/// Naive oracle mirroring forks/joins with plain parent vectors.
#[derive(Default)]
struct Oracle {
    parent: Vec<usize>,
    depth: Vec<u16>,
    merged: Vec<usize>,
}

impl Oracle {
    fn find(&self, mut i: usize) -> usize {
        while self.merged[i] != i {
            i = self.merged[i];
        }
        i
    }

    fn on_path(&self, anc: usize, mut node: usize) -> bool {
        let anc = self.find(anc);
        node = self.find(node);
        loop {
            if node == anc {
                return true;
            }
            let p = self.find(self.parent[node]);
            if p == node {
                return false;
            }
            node = p;
        }
    }

    fn lca_depth(&self, a: usize, b: usize) -> u16 {
        let mut a = self.find(a);
        let mut b = self.find(b);
        while a != b {
            if self.depth[a] >= self.depth[b] {
                a = self.find(self.parent[a]);
            } else {
                b = self.find(self.parent[b]);
            }
        }
        self.depth[a]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The heap table agrees with the naive oracle on canonicalization,
    /// path membership, and LCA depth across arbitrary fork/join scripts.
    #[test]
    fn hierarchy_matches_oracle(script in ops()) {
        let table = HeapTable::new();
        let root = table.new_root();
        let mut oracle = Oracle {
            parent: vec![root as usize],
            depth: vec![0],
            merged: vec![root as usize],
        };
        // Live leaves + stack of unjoined forks (parent, l, r).
        let mut leaves: Vec<u32> = vec![root];
        let mut forks: Vec<(u32, u32, u32)> = Vec::new();

        for op in script {
            match op {
                Op::Fork(k) => {
                    let leaf = leaves[k % leaves.len()];
                    let (l, r) = table.fork(leaf);
                    oracle.parent.push(leaf as usize);
                    oracle.parent.push(leaf as usize);
                    let d = oracle.depth[oracle.find(leaf as usize)] + 1;
                    oracle.depth.push(d);
                    oracle.depth.push(d);
                    oracle.merged.push(l as usize);
                    oracle.merged.push(r as usize);
                    leaves.retain(|&x| x != leaf);
                    leaves.push(l);
                    leaves.push(r);
                    forks.push((leaf, l, r));
                }
                Op::Join => {
                    // Join the innermost fork whose children are leaves.
                    let pos = forks.iter().rposition(|&(_, l, r)| {
                        leaves.contains(&l) && leaves.contains(&r)
                    });
                    if let Some(pos) = pos {
                        let (p, l, r) = forks.remove(pos);
                        table.merge_child(p, l);
                        table.merge_child(p, r);
                        oracle.merged[l as usize] = p as usize;
                        oracle.merged[r as usize] = p as usize;
                        leaves.retain(|&x| x != l && x != r);
                        leaves.push(p);
                    }
                }
            }
        }

        let n = oracle.parent.len();
        for i in 0..n as u32 {
            prop_assert_eq!(table.find(i) as usize, oracle.find(i as usize), "find({})", i);
            let (canon, depth) = table.canonical_and_depth(i);
            prop_assert_eq!(canon as usize, oracle.find(i as usize));
            prop_assert_eq!(depth, oracle.depth[oracle.find(i as usize)]);
            for j in 0..n as u32 {
                prop_assert_eq!(
                    table.is_ancestor(i, j),
                    oracle.on_path(i as usize, j as usize),
                    "is_ancestor({}, {})", i, j
                );
                prop_assert_eq!(
                    table.lca_of(i, j),
                    oracle.lca_depth(i as usize, j as usize),
                    "lca({}, {})", i, j
                );
            }
        }

        // Path-relation agrees with membership + lca for every live leaf.
        for &leaf in &leaves {
            // Build the leaf's root path from the oracle.
            let mut path = Vec::new();
            let mut cur = oracle.find(leaf as usize);
            loop {
                path.push(cur as u32);
                let p = oracle.find(oracle.parent[cur]);
                if p == cur {
                    break;
                }
                cur = p;
            }
            path.reverse();
            for h in 0..n as u32 {
                let (_, _, lca) = table.path_relation(&path, h);
                let local = oracle.on_path(h as usize, leaf as usize);
                prop_assert_eq!(lca.is_none(), local, "relation({}, leaf {})", h, leaf);
                if let Some(d) = lca {
                    prop_assert_eq!(d, oracle.lca_depth(h as usize, leaf as usize));
                }
            }
        }
    }
}

/// Strategies for the inline-layout round-trip: every kind and a spread
/// of field shapes crossing every size class (including the overflow
/// class and the oversized dedicated-block path under a small
/// `block_words`).
fn boxed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (INT_MIN..=INT_MAX).prop_map(Value::Int),
    ]
}

fn shapes() -> impl Strategy<Value = Vec<(ObjKind, Vec<Value>)>> {
    let one = prop_oneof![
        proptest::collection::vec(boxed_value(), 0..=40).prop_map(|f| (ObjKind::Tuple, f)),
        boxed_value().prop_map(|v| (ObjKind::Ref, vec![v])),
        proptest::collection::vec(boxed_value(), 0..=40).prop_map(|f| (ObjKind::MutArr, f)),
    ];
    proptest::collection::vec(one, 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tentpole invariant: objects are laid out inline in raw block
    /// words, and every kind/field-shape combination round-trips through
    /// the bump allocator — header, kind, length, and every field —
    /// with all earlier objects still intact (no overlapping layouts).
    #[test]
    fn inline_layout_roundtrip(shapes in shapes()) {
        let s = Store::new(StoreConfig {
            block_words: 32, // small: forces overflow + oversized paths
            ..Default::default()
        });
        let h = s.new_root_heap();
        let mut allocated = Vec::new();
        for (kind, fields) in &shapes {
            let r = s.alloc_values(h, *kind, fields);
            allocated.push((r, *kind, fields.clone()));
        }
        // Read everything back only after all allocations: a layout bug
        // that overlaps a later object onto an earlier one shows up here.
        for (r, kind, fields) in &allocated {
            let block = s.blocks().get(r.block());
            let obj = block.get(r.word());
            let hdr = obj.header();
            prop_assert!(!hdr.is_dead() && !hdr.is_forwarded());
            prop_assert_eq!(obj.kind(), *kind);
            prop_assert_eq!(obj.len(), fields.len());
            prop_assert_eq!(
                obj.size_bytes(),
                mpl_heap::OBJECT_OVERHEAD_BYTES + 8 * fields.len()
            );
            let nwords = mpl_heap::OBJECT_HEADER_WORDS + fields.len();
            if nwords <= 32 {
                prop_assert_eq!(block.size_class(), mpl_heap::size_class(nwords));
            }
            for (i, want) in fields.iter().enumerate() {
                prop_assert_eq!(obj.field(i), *want, "field {} of {:?}", i, r);
            }
            // The publication bitmap knows exactly this object start.
            prop_assert!(
                block.objects().any(|(off, _)| off == r.word()),
                "obj_start bit missing for {:?}", r
            );
        }

        // Raw arrays round-trip bit-exactly through the same layout.
        let bits: Vec<Word> = (0..5u64)
            .map(|i| Word::from_bits(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        let r = s.alloc(h, ObjKind::RawArr, &bits);
        let block = s.blocks().get(r.block());
        let obj = block.get(r.word());
        prop_assert_eq!(obj.kind(), ObjKind::RawArr);
        for (i, w) in bits.iter().enumerate() {
            prop_assert_eq!(obj.load_raw(i), w.bits());
        }
    }
}
