//! Structured entanglement/GC event hooks.
//!
//! The collectors, the store, and the runtime's barriers announce
//! *events* — pin, unpin, remembered-set traffic, dead-marks, shield
//! tagging and boundary crossings, block retire/free — through this
//! module. When tracing is off (the default) an emission is a single
//! relaxed atomic load and a predicted-not-taken branch, so the
//! disentangled fast path keeps the paper's near-zero-cost discipline.
//! When tracing is on, events flow to an installed *sink*; the sink (a
//! lock-free per-worker ring buffer that can reconstruct the exact
//! interleaving behind a GC audit failure) lives in `mpl-gc`'s `audit`
//! module. This module only defines the contract, keeping the heap
//! crate free of collector dependencies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::value::ObjRef;

/// `aux` value for [`EventKind::DeadMark`]: killed by the local
/// collector's reclaim phase.
pub const DEAD_BY_LGC: u32 = 0;
/// `aux` value for [`EventKind::DeadMark`]: swept by the entanglement
/// (full-heap) collector.
pub const DEAD_BY_CGC: u32 = 1;
/// `aux` value for [`EventKind::DeadMark`]: an abandoned evacuation copy
/// (never published, killed by the copying collector's unwind path).
pub const DEAD_BY_ABANDON: u32 = 2;

/// What happened. Each variant documents how the generic `block`/`word`
/// (the subject object, when there is one) and `aux` fields are used.
#[repr(u8)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// An object was newly pinned (`aux` = pin level).
    Pin = 0,
    /// An object was unpinned at a join (`aux` = join depth).
    Unpin = 1,
    /// A remembered-set entry was recorded (`block`/`word` name the
    /// *source* object, `aux` = field index).
    RemsetInsert = 2,
    /// A remembered-set source field was repaired after an evacuation
    /// (`block`/`word` name the source object, `aux` = field index).
    RemsetRepair = 3,
    /// An object was dead-marked (`aux` = one of [`DEAD_BY_LGC`],
    /// [`DEAD_BY_CGC`], [`DEAD_BY_ABANDON`]).
    DeadMark = 4,
    /// The shield closure tagged an object into its heap's entangled
    /// space (`aux` = the collecting heap's id).
    Entangle = 5,
    /// The shield closure traversed *through* a foreign object — a
    /// cross-heap hop on a path from a pinned root (`block`/`word` name
    /// the foreign object, `aux` = the block the edge came from).
    ShieldCross = 6,
    /// A block was freed (`block` = its id, `aux` = its last owner).
    BlockFree = 7,
    /// A block was retired to the graveyard (`block` = its id).
    BlockRetire = 8,
    /// The allocation barrier pinned a remote pointee of a freshly
    /// allocated object (`aux` = pin level).
    AllocPin = 9,
    /// A mutator-private remembered-set buffer was flushed into a heap
    /// (`block` = the destination heap id, `aux` = entries published).
    RemsetFlush = 10,
    /// A scheduler worker finished executing a job (`aux` = the worker's
    /// pool index). Task-boundary markers let event-ring dumps
    /// reconstruct which task interleavings surround a GC failure.
    TaskBoundary = 11,
}

impl EventKind {
    /// Short stable name, used by the audit layer's dump format.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Pin => "pin",
            EventKind::Unpin => "unpin",
            EventKind::RemsetInsert => "remset-insert",
            EventKind::RemsetRepair => "remset-repair",
            EventKind::DeadMark => "dead-mark",
            EventKind::Entangle => "entangle",
            EventKind::ShieldCross => "shield-cross",
            EventKind::BlockFree => "block-free",
            EventKind::BlockRetire => "block-retire",
            EventKind::AllocPin => "alloc-pin",
            EventKind::RemsetFlush => "remset-flush",
            EventKind::TaskBoundary => "task-boundary",
        }
    }

    /// Decodes the `repr(u8)` discriminant (ring slots store raw bits).
    pub fn from_bits(bits: u8) -> Option<EventKind> {
        Some(match bits {
            0 => EventKind::Pin,
            1 => EventKind::Unpin,
            2 => EventKind::RemsetInsert,
            3 => EventKind::RemsetRepair,
            4 => EventKind::DeadMark,
            5 => EventKind::Entangle,
            6 => EventKind::ShieldCross,
            7 => EventKind::BlockFree,
            8 => EventKind::BlockRetire,
            9 => EventKind::AllocPin,
            10 => EventKind::RemsetFlush,
            11 => EventKind::TaskBoundary,
            _ => return None,
        })
    }
}

/// One recorded event. Sequence numbers are assigned by the sink.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Block id of the subject (or the block itself for block events).
    pub block: u32,
    /// Word offset of the subject within its block (0 for block events).
    pub word: u32,
    /// Kind-specific extra word (see [`EventKind`]).
    pub aux: u32,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<fn(Event)> = OnceLock::new();

/// Turns event emission on or off. Off is the default; emission sites
/// pay one relaxed load either way.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Release);
}

/// Whether events are currently being recorded.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Installs the process-wide event sink. First caller wins; later calls
/// are ignored (the audit layer installs exactly one).
pub fn install_sink(sink: fn(Event)) {
    let _ = SINK.set(sink);
}

/// Emits one event if tracing is enabled and a sink is installed.
#[inline]
pub fn emit(kind: EventKind, block: u32, word: u32, aux: u32) {
    if !TRACING.load(Ordering::Relaxed) {
        return;
    }
    if let Some(sink) = SINK.get() {
        sink(Event {
            kind,
            block,
            word,
            aux,
        });
    }
}

/// Emits one event about an object reference.
#[inline]
pub fn emit_obj(kind: EventKind, r: ObjRef, aux: u32) {
    emit(kind, r.block(), r.word(), aux);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_through_bits() {
        for k in [
            EventKind::Pin,
            EventKind::Unpin,
            EventKind::RemsetInsert,
            EventKind::RemsetRepair,
            EventKind::DeadMark,
            EventKind::Entangle,
            EventKind::ShieldCross,
            EventKind::BlockFree,
            EventKind::BlockRetire,
            EventKind::AllocPin,
            EventKind::RemsetFlush,
            EventKind::TaskBoundary,
        ] {
            assert_eq!(EventKind::from_bits(k as u8), Some(k), "{}", k.name());
        }
        assert_eq!(EventKind::from_bits(200), None);
    }

    #[test]
    fn emission_without_sink_is_a_no_op() {
        // Tracing defaults off; even toggled on, a missing sink is fine.
        emit(EventKind::Pin, 1, 2, 3);
    }
}
