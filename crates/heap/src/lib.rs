//! # mpl-heap — hierarchical heap substrate
//!
//! The memory substrate for a reproduction of *"Efficient Parallel
//! Functional Programming with Effects"* (Arora, Westrick, Acar; PLDI
//! 2023). It provides:
//!
//! * a tagged-word object model ([`value`], [`object`], [`header`]) with
//!   atomic headers carrying the **pin bit** and **entanglement level**;
//! * segregated size-class **blocks** with bump-pointer allocation,
//!   Immix-style line marks, and per-block side-metadata bitmaps for the
//!   GC bits ([`block`], [`registry`]);
//! * an SFT-style block-classification table so the barriers map any
//!   pointer to its heap with one shifted load ([`sft`]);
//! * the **heap hierarchy** mirroring the fork-join task tree, with O(1)
//!   joins via a concurrent union-find, per-heap remembered sets for
//!   down-pointers, and per-heap entangled-object indexes ([`heap`]);
//! * the [`store::Store`] facade combining all of the above, plus the
//!   measured cost metrics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use mpl_heap::{ObjKind, Store, StoreConfig, Value};
//!
//! let store = Store::new(StoreConfig::default());
//! let root = store.new_root_heap();
//! let (left, right) = store.fork_heaps(root);
//!
//! // The "right" task allocates a mutable cell; a task on the left path
//! // that acquires it sees it as remote and pins it.
//! let cell = store.alloc_values(right, ObjKind::Ref, &[Value::Int(42)]);
//! let left_path = [root, left];
//! assert!(!store.is_local(&left_path, cell));
//! let level = store.entanglement_level(&left_path, cell);
//! let (_, newly_pinned) = store.pin(cell, level);
//! assert!(newly_pinned);
//!
//! // The join makes the tasks non-concurrent and unpins the object.
//! let unpinned = store.join(root, left, right).unpinned;
//! assert_eq!(unpinned, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod budget;
pub mod events;
pub mod header;
pub mod heap;
pub mod inspect;
pub mod object;
pub mod registry;
pub mod sft;
pub mod stats;
pub mod store;
pub mod value;

pub use block::{
    size_class, Block, DEFAULT_BLOCK_WORDS, LINE_WORDS, NUM_SIZE_CLASSES, OBJECT_HEADER_WORDS,
    SIZE_CLASS_WORDS,
};
pub use budget::{BudgetSnapshot, TenantBudget};
pub use events::{Event, EventKind};
pub use header::{Header, ObjKind, NO_PIN_LEVEL};
pub use heap::{HeapInfo, HeapTable, RemsetEntry};
pub use inspect::{report, to_dot, HeapReport, StoreReport};
pub use object::{Object, PinOutcome, OBJECT_OVERHEAD_BYTES};
pub use registry::BlockRegistry;
pub use sft::{SftEntry, SftTable};
pub use stats::{StatsSnapshot, StoreStats};
pub use store::{JoinOutcome, ObjHandle, Store, StoreConfig};
pub use value::{ObjRef, Value, Word, INT_MAX, INT_MIN};
