//! Chunks: fixed-capacity object pages owned by a single heap.
//!
//! Allocation into a chunk is a single `fetch_add` on the bump index — no
//! locks, matching the paper's requirement that processors allocate without
//! synchronization. A chunk belongs to exactly one heap at a time; joins
//! transfer whole chunks to the parent heap in O(1) per chunk by updating
//! the owner field (object contents are untouched).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::object::Object;
use crate::value::ObjRef;

/// Default number of object slots per chunk.
pub const DEFAULT_CHUNK_SLOTS: usize = 256;

/// A fixed-capacity page of object slots.
#[derive(Debug)]
pub struct Chunk {
    id: u32,
    owner: AtomicU32,
    entangled: AtomicBool,
    next: AtomicU32,
    live_bytes: AtomicUsize,
    pinned_count: AtomicU32,
    slots: Box<[OnceLock<Object>]>,
}

impl Chunk {
    /// Creates an empty chunk with `capacity` slots, owned by heap `owner`.
    pub fn new(id: u32, owner: u32, capacity: usize) -> Chunk {
        assert!(capacity > 0, "chunk capacity must be positive");
        let slots: Vec<OnceLock<Object>> = (0..capacity).map(|_| OnceLock::new()).collect();
        Chunk {
            id,
            owner: AtomicU32::new(owner),
            entangled: AtomicBool::new(false),
            next: AtomicU32::new(0),
            live_bytes: AtomicUsize::new(0),
            pinned_count: AtomicU32::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// This chunk's index in the global registry.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The raw (possibly stale; canonicalize with the heap table) id of the
    /// owning heap.
    pub fn owner(&self) -> u32 {
        self.owner.load(Ordering::Acquire)
    }

    /// Reassigns the chunk to a different heap (join-time transfer).
    pub fn set_owner(&self, heap: u32) {
        self.owner.store(heap, Ordering::Release);
    }

    /// True if the local collector retained this chunk because it holds
    /// pinned (entangled) objects; such chunks are swept by the concurrent
    /// collector instead of being freed wholesale.
    pub fn is_entangled(&self) -> bool {
        self.entangled.load(Ordering::Acquire)
    }

    /// Flags the chunk as entangled.
    pub fn set_entangled(&self, v: bool) {
        self.entangled.store(v, Ordering::Release);
    }

    /// Number of slots already allocated.
    pub fn allocated(&self) -> usize {
        (self.next.load(Ordering::Acquire) as usize).min(self.slots.len())
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// True once every slot has been handed out.
    pub fn is_full(&self) -> bool {
        self.allocated() == self.capacity()
    }

    /// Attempts to allocate `obj` into this chunk, returning its reference.
    /// Returns the object back if the chunk is full.
    pub fn try_alloc(&self, obj: Object) -> Result<ObjRef, Object> {
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if (idx as usize) >= self.slots.len() {
            // Leave `next` saturated; concurrent allocators will also fail.
            return Err(obj);
        }
        let size = obj.size_bytes();
        self.slots[idx as usize]
            .set(obj)
            .unwrap_or_else(|_| unreachable!("slot {idx} allocated twice"));
        self.live_bytes.fetch_add(size, Ordering::Relaxed);
        Ok(ObjRef::new(self.id, idx))
    }

    /// Returns the object in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never allocated — that indicates a dangling
    /// or corrupted reference, which we want to fail loudly in this
    /// reproduction rather than read garbage.
    pub fn get(&self, slot: u32) -> &Object {
        self.slots
            .get(slot as usize)
            .and_then(|s| s.get())
            .unwrap_or_else(|| panic!("dangling reference c{}s{}", self.id, slot))
    }

    /// Returns the object in `slot` if it was allocated.
    pub fn try_get(&self, slot: u32) -> Option<&Object> {
        self.slots.get(slot as usize).and_then(|s| s.get())
    }

    /// Iterates over all allocated objects with their slot indices.
    pub fn objects(&self) -> impl Iterator<Item = (u32, &Object)> + '_ {
        let n = self.allocated();
        self.slots[..n]
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.get().map(|o| (i as u32, o)))
    }

    /// Current logical live bytes attributed to this chunk.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Subtracts reclaimed bytes (sweeping / evacuation accounting).
    pub fn sub_live_bytes(&self, bytes: usize) {
        let mut cur = self.live_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.live_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Number of pinned objects currently attributed to this chunk.
    pub fn pinned_count(&self) -> u32 {
        self.pinned_count.load(Ordering::Acquire)
    }

    /// Adjusts the pinned-object count by `delta`.
    pub fn add_pinned(&self, delta: i32) {
        if delta >= 0 {
            self.pinned_count.fetch_add(delta as u32, Ordering::AcqRel);
        } else {
            self.pinned_count
                .fetch_sub((-delta) as u32, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use crate::value::{Value, Word};

    fn mkobj(v: i64) -> Object {
        Object::new(ObjKind::Tuple, vec![Word::encode(Value::Int(v))])
    }

    #[test]
    fn alloc_until_full() {
        let c = Chunk::new(0, 0, 2);
        let a = c.try_alloc(mkobj(1)).unwrap();
        let b = c.try_alloc(mkobj(2)).unwrap();
        assert_eq!(a, ObjRef::new(0, 0));
        assert_eq!(b, ObjRef::new(0, 1));
        assert!(c.is_full());
        assert!(c.try_alloc(mkobj(3)).is_err());
        assert_eq!(c.get(0).field(0), Value::Int(1));
        assert_eq!(c.get(1).field(0), Value::Int(2));
    }

    #[test]
    fn owner_transfer() {
        let c = Chunk::new(5, 1, 4);
        assert_eq!(c.owner(), 1);
        c.set_owner(0);
        assert_eq!(c.owner(), 0);
    }

    #[test]
    #[should_panic(expected = "dangling reference")]
    fn dangling_access_panics() {
        let c = Chunk::new(0, 0, 4);
        let _ = c.get(3);
    }

    #[test]
    fn objects_iterates_allocated_prefix() {
        let c = Chunk::new(0, 0, 8);
        c.try_alloc(mkobj(10)).unwrap();
        c.try_alloc(mkobj(20)).unwrap();
        let vals: Vec<i64> = c.objects().map(|(_, o)| o.field(0).expect_int()).collect();
        assert_eq!(vals, vec![10, 20]);
    }

    #[test]
    fn live_bytes_accounting() {
        let c = Chunk::new(0, 0, 4);
        c.try_alloc(mkobj(1)).unwrap();
        let before = c.live_bytes();
        assert!(before > 0);
        c.sub_live_bytes(before - 1);
        assert_eq!(c.live_bytes(), 1);
        c.sub_live_bytes(100);
        assert_eq!(c.live_bytes(), 0, "saturating subtraction");
    }

    #[test]
    fn pinned_count_adjusts() {
        let c = Chunk::new(0, 0, 4);
        c.add_pinned(2);
        c.add_pinned(-1);
        assert_eq!(c.pinned_count(), 1);
    }
}
