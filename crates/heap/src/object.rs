//! Heap objects: an atomic header, a forwarding word, and atomic fields.
//!
//! All field accesses are individual atomic loads/stores (`Relaxed` for
//! data, `AcqRel` around publication points), which makes the object layout
//! safe to share between mutator threads and the collectors. Higher-level
//! ordering (who may read what, and when) is enforced by the hierarchical
//! heap discipline, not by this module.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::header::{Header, ObjKind, NO_PIN_LEVEL};
use crate::value::{ObjRef, Value, Word};

/// Estimated per-object overhead in bytes (header + forwarding word +
/// field-slice bookkeeping), used for residency accounting.
pub const OBJECT_OVERHEAD_BYTES: usize = 24;

/// Outcome of a pin attempt, reported so the caller can update the
/// entangled-object index and cost meters exactly once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinOutcome {
    /// The object was not pinned before; the caller must register it.
    NewlyPinned,
    /// Already pinned; the level may have been lowered.
    AlreadyPinned {
        /// True if this attempt lowered the pin level.
        lowered: bool,
    },
    /// The object has been forwarded; pin the new copy instead.
    Forwarded(ObjRef),
}

/// A heap object.
///
/// Objects are allocated into chunk slots and never move in Rust-memory
/// terms; "moving" an object means copying its payload to a fresh object
/// and installing a forwarding reference here.
#[derive(Debug)]
pub struct Object {
    header: AtomicU64,
    fwd: AtomicU64,
    fields: Box<[AtomicU64]>,
}

impl Object {
    /// Allocates an object of `kind` with the given initial field words.
    pub fn new(kind: ObjKind, fields: Vec<Word>) -> Object {
        let fields: Vec<AtomicU64> = fields
            .into_iter()
            .map(|w| AtomicU64::new(w.bits()))
            .collect();
        Object {
            header: AtomicU64::new(Header::new(kind).bits()),
            fwd: AtomicU64::new(0),
            fields: fields.into_boxed_slice(),
        }
    }

    /// Allocates an object whose fields are all unit.
    pub fn with_len(kind: ObjKind, len: usize) -> Object {
        Object::new(kind, vec![Word::UNIT; len])
    }

    /// A snapshot of the current header.
    pub fn header(&self) -> Header {
        Header::from_bits(self.header.load(Ordering::Acquire))
    }

    /// The object's kind (immutable after allocation).
    pub fn kind(&self) -> ObjKind {
        self.header().kind()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Approximate size in bytes, for residency accounting.
    pub fn size_bytes(&self) -> usize {
        OBJECT_OVERHEAD_BYTES + 8 * self.fields.len()
    }

    /// Loads field `i` as a raw word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn field_word(&self, i: usize) -> Word {
        Word::from_bits(self.fields[i].load(Ordering::Acquire))
    }

    /// Loads field `i` as a decoded value.
    pub fn field(&self, i: usize) -> Value {
        self.field_word(i).decode()
    }

    /// Stores a raw word into field `i`.
    pub fn set_field_word(&self, i: usize, w: Word) {
        self.fields[i].store(w.bits(), Ordering::Release);
    }

    /// Stores a value into field `i`.
    pub fn set_field(&self, i: usize, v: Value) {
        self.set_field_word(i, Word::encode(v));
    }

    /// Atomically replaces field `i`, returning the previous value.
    pub fn swap_field(&self, i: usize, v: Value) -> Value {
        let old = self.fields[i].swap(Word::encode(v).bits(), Ordering::AcqRel);
        Word::from_bits(old).decode()
    }

    /// Atomically compares-and-swaps field `i` from `expected` to `new`.
    /// Returns `Ok(())` on success and the actual current value on failure.
    pub fn cas_field(&self, i: usize, expected: Value, new: Value) -> Result<(), Value> {
        match self.fields[i].compare_exchange(
            Word::encode(expected).bits(),
            Word::encode(new).bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => Err(Word::from_bits(actual).decode()),
        }
    }

    /// Atomically adds `delta` to an integer field, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if the field does not currently hold an integer.
    pub fn fetch_add_int(&self, i: usize, delta: i64) -> i64 {
        loop {
            let cur = self.field(i);
            let n = cur.expect_int() + delta;
            if self.cas_field(i, cur, Value::Int(n)).is_ok() {
                return n;
            }
        }
    }

    /// Loads field `i` as raw bits (for [`ObjKind::RawArr`] payloads,
    /// which are opaque to the collectors).
    pub fn load_raw(&self, i: usize) -> u64 {
        self.fields[i].load(Ordering::Acquire)
    }

    /// Stores raw bits into field `i`.
    pub fn store_raw(&self, i: usize, bits: u64) {
        self.fields[i].store(bits, Ordering::Release);
    }

    /// Atomically compares-and-swaps raw bits in field `i`. Returns
    /// `Ok(())` on success and the observed bits on failure.
    pub fn cas_raw(&self, i: usize, expected: u64, new: u64) -> Result<(), u64> {
        self.fields[i]
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    /// Atomically adds to a raw 64-bit field, returning the previous bits.
    pub fn fetch_add_raw(&self, i: usize, delta: u64) -> u64 {
        self.fields[i].fetch_add(delta, Ordering::AcqRel)
    }

    /// Iterates over the current field words (a racy snapshot, one atomic
    /// load per field). Collectors use this for tracing.
    pub fn field_words(&self) -> impl Iterator<Item = Word> + '_ {
        self.fields
            .iter()
            .map(|f| Word::from_bits(f.load(Ordering::Acquire)))
    }

    // ---- pin protocol -------------------------------------------------

    /// Attempts to pin the object at `level` (lowering an existing level if
    /// already pinned). Follows forwarding: pinning a forwarded object is
    /// redirected to its new location by the caller.
    pub fn try_pin(&self, level: u16) -> PinOutcome {
        debug_assert!(level != NO_PIN_LEVEL, "NO_PIN_LEVEL is a sentinel");
        loop {
            let cur = self.header();
            if cur.is_forwarded() {
                return PinOutcome::Forwarded(
                    self.forward_ref().expect("forwarded object lacks fwd ref"),
                );
            }
            let newly = !cur.is_pinned();
            let lowered = cur.is_pinned() && level < cur.pin_level();
            if !newly && !lowered {
                return PinOutcome::AlreadyPinned { lowered: false };
            }
            let next = cur.with_pin(level).with_entangled_space();
            if self.cas_header(cur, next) {
                return if newly {
                    PinOutcome::NewlyPinned
                } else {
                    PinOutcome::AlreadyPinned { lowered }
                };
            }
        }
    }

    /// Clears the pin bit if the current pin level is `>= join_depth`
    /// (the unpin-at-join rule). Returns true if the object was unpinned.
    pub fn try_unpin_at_join(&self, join_depth: u16) -> bool {
        loop {
            let cur = self.header();
            if !cur.is_pinned() || cur.pin_level() < join_depth {
                return false;
            }
            let next = cur.without_pin().without_entangled_space();
            if self.cas_header(cur, next) {
                return true;
            }
        }
    }

    // ---- collector interface ------------------------------------------

    /// Claims the object for evacuation: atomically sets the forwarded bit
    /// and records the destination. Fails (returning the existing outcome)
    /// if the object was concurrently pinned or already forwarded.
    pub fn try_forward(&self, to: ObjRef) -> Result<(), Header> {
        loop {
            let cur = self.header();
            if cur.is_forwarded() || cur.is_pinned() {
                return Err(cur);
            }
            self.fwd
                .store(Word::encode(Value::Obj(to)).bits(), Ordering::Release);
            if self.cas_header(cur, cur.with_forwarded()) {
                return Ok(());
            }
        }
    }

    /// Rewrites the forwarding destination (forwarding-chain path
    /// compression: collectors point old copies directly at the final
    /// location before intermediate chunks are reclaimed).
    ///
    /// # Panics
    ///
    /// Panics if the object is not forwarded.
    pub fn compress_forward(&self, to: ObjRef) {
        assert!(
            self.header().is_forwarded(),
            "compress on unforwarded object"
        );
        self.fwd
            .store(Word::encode(Value::Obj(to)).bits(), Ordering::Release);
    }

    /// The forwarding destination, if the object has been evacuated.
    pub fn forward_ref(&self) -> Option<ObjRef> {
        if self.header().is_forwarded() {
            Word::from_bits(self.fwd.load(Ordering::Acquire))
                .decode()
                .as_obj()
        } else {
            None
        }
    }

    /// Sets the concurrent-collector mark bit; returns true if this call
    /// marked it (false if already marked). A single `fetch_or` — racing
    /// tracers are benign and exactly one of them wins the mark, which is
    /// what lets CGC trace packets share objects without coordination.
    pub fn try_mark(&self) -> bool {
        let prev = self.header.fetch_or(crate::header::MARK, Ordering::AcqRel);
        prev & crate::header::MARK == 0
    }

    /// Clears the mark bit (between concurrent-collection cycles).
    pub fn clear_mark(&self) {
        self.header
            .fetch_and(!crate::header::MARK, Ordering::AcqRel);
    }

    /// Marks the object dead (swept). The slot's memory is reclaimed when
    /// its chunk is dropped.
    pub fn set_dead(&self) {
        loop {
            let cur = self.header();
            if cur.is_dead() {
                return;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return;
            }
        }
    }

    /// Atomically dead-marks the object **iff** it is still plain local
    /// garbage: not pinned, not in an entangled space, not forwarded, not
    /// already dead. The eligibility conditions are re-verified on every
    /// CAS attempt, so a pin (or shield tag) landing between a caller's
    /// header inspection and the kill can never be lost — closing the
    /// load-then-[`set_dead`](Object::set_dead) window the local
    /// collector's reclaim phase used to have. Returns the header that
    /// was killed, or `None` if the object was no longer eligible.
    pub fn try_kill(&self) -> Option<Header> {
        loop {
            let cur = self.header();
            if cur.is_dead() || cur.is_pinned() || cur.is_forwarded() || cur.in_entangled_space() {
                return None;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return Some(cur);
            }
        }
    }

    /// Atomically dead-marks the object **iff** it is sweepable by the
    /// entanglement collector: resident in an entangled space, unmarked,
    /// not forwarded, not already dead (pinned is fine — an unmarked
    /// pinned object is garbage whose pin owner joined away). Returns the
    /// header that was killed so the caller can settle pin accounting
    /// from the *atomic* pre-kill state rather than a stale earlier load,
    /// or `None` if the object must be retained.
    pub fn try_kill_swept(&self) -> Option<Header> {
        loop {
            let cur = self.header();
            if cur.is_dead() || cur.is_forwarded() || cur.is_marked() || !cur.in_entangled_space() {
                return None;
            }
            if self.cas_header(cur, cur.with_dead()) {
                return Some(cur);
            }
        }
    }

    /// Marks the object as an entanglement suspect (it received a
    /// down-pointer write). Sticky; preserved across evacuation.
    pub fn mark_suspect(&self) {
        loop {
            let cur = self.header();
            if cur.is_suspect() {
                return;
            }
            if self.cas_header(cur, cur.with_suspect()) {
                return;
            }
        }
    }

    /// Flags the object as resident in its heap's entangled (non-moving)
    /// space without pinning it (used when the local collector transfers
    /// the closure of a pinned object).
    pub fn set_entangled_space(&self) {
        loop {
            let cur = self.header();
            if cur.in_entangled_space() {
                return;
            }
            if self.cas_header(cur, cur.with_entangled_space()) {
                return;
            }
        }
    }

    fn cas_header(&self, cur: Header, next: Header) -> bool {
        self.header
            .compare_exchange(cur.bits(), next.bits(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(kind: ObjKind, vals: &[Value]) -> Object {
        Object::new(kind, vals.iter().map(|&v| Word::encode(v)).collect())
    }

    #[test]
    fn fields_roundtrip() {
        let o = obj(
            ObjKind::Tuple,
            &[Value::Int(1), Value::Bool(true), Value::Unit],
        );
        assert_eq!(o.len(), 3);
        assert_eq!(o.field(0), Value::Int(1));
        assert_eq!(o.field(1), Value::Bool(true));
        assert_eq!(o.field(2), Value::Unit);
        o.set_field(2, Value::Int(9));
        assert_eq!(o.field(2), Value::Int(9));
    }

    #[test]
    fn swap_and_cas() {
        let o = obj(ObjKind::Ref, &[Value::Int(1)]);
        assert_eq!(o.swap_field(0, Value::Int(2)), Value::Int(1));
        assert_eq!(o.cas_field(0, Value::Int(2), Value::Int(3)), Ok(()));
        assert_eq!(
            o.cas_field(0, Value::Int(2), Value::Int(4)),
            Err(Value::Int(3))
        );
        assert_eq!(o.fetch_add_int(0, 10), 13);
    }

    #[test]
    fn pin_is_idempotent_and_lowers() {
        let o = obj(ObjKind::Ref, &[Value::Unit]);
        assert_eq!(o.try_pin(5), PinOutcome::NewlyPinned);
        assert!(o.header().is_pinned());
        assert!(o.header().in_entangled_space());
        assert_eq!(o.header().pin_level(), 5);
        assert_eq!(o.try_pin(7), PinOutcome::AlreadyPinned { lowered: false });
        assert_eq!(o.header().pin_level(), 5);
        assert_eq!(o.try_pin(2), PinOutcome::AlreadyPinned { lowered: true });
        assert_eq!(o.header().pin_level(), 2);
    }

    #[test]
    fn unpin_at_join_respects_level() {
        let o = obj(ObjKind::Ref, &[Value::Unit]);
        o.try_pin(3);
        assert!(!o.try_unpin_at_join(4), "level 3 < join depth 4: keep pin");
        assert!(o.try_unpin_at_join(3), "level 3 >= join depth 3: unpin");
        assert!(!o.header().is_pinned());
        assert!(!o.try_unpin_at_join(0), "already unpinned");
    }

    #[test]
    fn forwarding_excludes_pinned() {
        let o = obj(ObjKind::Tuple, &[Value::Unit]);
        o.try_pin(1);
        let err = o.try_forward(ObjRef::new(1, 1)).unwrap_err();
        assert!(err.is_pinned());
        assert_eq!(o.forward_ref(), None);
    }

    #[test]
    fn forwarding_roundtrip_and_pin_redirect() {
        let o = obj(ObjKind::Tuple, &[Value::Unit]);
        let dst = ObjRef::new(2, 7);
        o.try_forward(dst).unwrap();
        assert_eq!(o.forward_ref(), Some(dst));
        assert!(o.try_forward(ObjRef::new(3, 3)).is_err());
        assert_eq!(o.try_pin(0), PinOutcome::Forwarded(dst));
    }

    #[test]
    fn mark_cycle() {
        let o = obj(ObjKind::Tuple, &[]);
        assert!(o.try_mark());
        assert!(!o.try_mark());
        o.clear_mark();
        assert!(o.try_mark());
    }

    #[test]
    fn size_accounting() {
        let o = obj(ObjKind::MutArr, &[Value::Unit; 4]);
        assert_eq!(o.size_bytes(), OBJECT_OVERHEAD_BYTES + 32);
    }

    #[test]
    fn dead_flag_sticks() {
        let o = obj(ObjKind::Tuple, &[]);
        o.set_dead();
        o.set_dead();
        assert!(o.header().is_dead());
    }

    #[test]
    fn field_words_iterates_snapshot() {
        let o = obj(
            ObjKind::Tuple,
            &[Value::Int(1), Value::Obj(ObjRef::new(0, 0))],
        );
        let ws: Vec<_> = o.field_words().collect();
        assert_eq!(ws.len(), 2);
        assert!(!ws[0].is_pointer());
        assert!(ws[1].is_pointer());
    }
}
